"""Unit tests for the leaf checksum helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.checksum import CHECKSUM_BYTES, leaf_checksum, verify


@given(st.binary(min_size=0, max_size=256))
def test_checksum_roundtrip(payload):
    assert verify(payload, leaf_checksum(payload))


@given(st.binary(min_size=1, max_size=256), st.integers(0, 255))
def test_single_byte_corruption_detected(payload, position):
    position %= len(payload)
    mutated = bytearray(payload)
    mutated[position] ^= 0xFF
    if bytes(mutated) != payload:
        assert leaf_checksum(bytes(mutated)) != leaf_checksum(payload)


def test_checksum_fits_four_bytes():
    assert CHECKSUM_BYTES == 4
    assert 0 <= leaf_checksum(b"anything") < (1 << 32)


def test_verify_masks_to_32_bits():
    c = leaf_checksum(b"x")
    assert verify(b"x", c | (1 << 40))  # high bits ignored
