"""Unit + model-based tests for the one-sided extendible hash table."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.layout import HashEntry
from repro.dm import Cluster, ClusterConfig
from repro.errors import HashTableError
from repro.race import (
    RaceClient,
    TableParams,
    allocate_segment,
    create_table,
    fp2_of,
    group_index,
    key_hash,
    segment_index,
    table_bytes,
)


def make_table(cluster, mn=0, **kwargs):
    params = TableParams(seed=77, **kwargs)
    info = create_table(cluster, mn, params)
    client = RaceClient(info,
                        lambda depth: allocate_segment(cluster, mn, params,
                                                       depth))
    return info, client


def entry_for(client, key, addr, node_type=1):
    h = key_hash(key, client.params.seed)
    return HashEntry(addr=addr, fp2=fp2_of(h), node_type=node_type,
                     occupied=True)


@pytest.fixture
def table(single_mn_cluster):
    info, client = make_table(single_mn_cluster, groups_per_segment=8,
                              slots_per_group=4, initial_depth=1)
    return single_mn_cluster, info, client


def test_layout_params():
    p = TableParams(seed=1, groups_per_segment=8, slots_per_group=4)
    assert p.group_size == 8 + 4 * 8
    assert p.segment_size == 8 * p.group_size
    assert p.directory_slots == 1 << p.max_depth
    with pytest.raises(ValueError):
        TableParams(seed=1, max_depth=13)
    with pytest.raises(ValueError):
        TableParams(seed=1, initial_depth=13)


def test_fp2_carries_low_hash_bits():
    h = key_hash(b"prefix", 7)
    assert fp2_of(h) == h & 0xFFF
    # segment index bits are a subset of fp2 bits: splits need no keys.
    for depth in range(1, 13):
        assert segment_index(h, depth) == fp2_of(h) & ((1 << depth) - 1)


def test_group_index_disjoint_from_segment_bits():
    h = key_hash(b"x", 3)
    assert group_index(h, 64) == (h >> 48) % 64


def test_insert_lookup_roundtrip(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    e = entry_for(client, b"k1", 0x40)
    ex.run(client.insert(b"k1", e))
    matches = ex.run(client.lookup(b"k1"))
    assert any(found.addr == 0x40 for _slot, found in matches)


def test_lookup_missing_returns_empty(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    assert ex.run(client.lookup(b"missing")) == []


def test_insert_rejects_inconsistent_fp2(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    bad = HashEntry(addr=0x40, fp2=0x123, node_type=1, occupied=True)
    h = key_hash(b"k1", client.params.seed)
    if fp2_of(h) == 0x123:  # pragma: no cover - astronomically unlikely
        bad = HashEntry(addr=0x40, fp2=0x124, node_type=1, occupied=True)
    with pytest.raises(HashTableError):
        ex.run(client.insert(b"k1", bad))


def test_delete_removes_only_matching_addr(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    ex.run(client.insert(b"k1", entry_for(client, b"k1", 0x40)))
    assert not ex.run(client.delete(b"k1", 0x9999))
    assert ex.run(client.delete(b"k1", 0x40))
    assert ex.run(client.lookup(b"k1")) == []


def test_cas_entry_type_switch(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    old = entry_for(client, b"k1", 0x40, node_type=1)
    slot = ex.run(client.insert(b"k1", old))
    new = entry_for(client, b"k1", 0x80, node_type=2)
    assert ex.run(client.cas_entry(slot, old, new))
    matches = ex.run(client.lookup(b"k1"))
    assert matches[0][1].addr == 0x80
    # Second CAS with the stale old entry fails.
    assert not ex.run(client.cas_entry(slot, old, new))


def test_splits_preserve_all_entries(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    keys = [f"key-{i}".encode() for i in range(800)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, entry_for(client, key, 0x40 + i * 8)))
    assert client.splits > 0
    for i, key in enumerate(keys):
        matches = ex.run(client.lookup(key))
        assert any(e.addr == 0x40 + i * 8 for _s, e in matches), key


def test_split_updates_depths(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    for i in range(800):
        key = f"d-{i}".encode()
        ex.run(client.insert(key, entry_for(client, key, 0x40 + i * 8)))
    depths = {e.local_depth for e in client._dir_cache.values()}
    assert max(depths) > client.params.initial_depth


def test_stale_directory_cache_heals(table):
    """A second client with a stale cache still finds migrated entries."""
    cluster, info, client = table
    other = RaceClient(info, client._allocate_segment)
    ex = cluster.direct_executor()
    # Warm other's cache before any splits.
    probe = b"warm"
    ex.run(other.insert(probe, entry_for(other, probe, 0x48)))
    # Drive splits through the first client.
    keys = [f"s-{i}".encode() for i in range(800)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, entry_for(client, key, 0x1000 + i * 8)))
    assert client.splits > 0
    # The stale client must heal and find everything.
    for i, key in enumerate(keys):
        matches = ex.run(other.lookup(key))
        assert any(e.addr == 0x1000 + i * 8 for _s, e in matches)
    assert other.stale_refreshes > 0


def test_table_bytes_accounted(single_mn_cluster):
    info, client = make_table(single_mn_cluster)
    assert table_bytes(single_mn_cluster, 0) > 0


def test_max_depth_overflow_raises(single_mn_cluster):
    params = TableParams(seed=3, groups_per_segment=1, slots_per_group=1,
                         initial_depth=0, max_depth=2)
    info = create_table(single_mn_cluster, 0, params)
    client = RaceClient(info, lambda d: allocate_segment(
        single_mn_cluster, 0, params, d))
    ex = single_mn_cluster.direct_executor()
    with pytest.raises(HashTableError):
        for i in range(64):
            key = f"of-{i}".encode()
            ex.run(client.insert(key, entry_for(client, key, 0x40 + 8 * i)))


@given(st.sets(st.binary(min_size=1, max_size=12), min_size=1, max_size=250))
@settings(max_examples=20, deadline=None)
def test_model_based_insert_lookup_delete(keys):
    cluster = Cluster(ClusterConfig(num_mns=1, num_cns=1,
                                    mn_capacity_bytes=32 << 20))
    info, client = make_table(cluster, groups_per_segment=4,
                              slots_per_group=4, initial_depth=1)
    ex = cluster.direct_executor()
    model = {}
    for i, key in enumerate(sorted(keys)):
        addr = 0x40 + i * 8
        ex.run(client.insert(key, entry_for(client, key, addr)))
        model[key] = addr
    for key, addr in model.items():
        matches = ex.run(client.lookup(key))
        assert any(e.addr == addr for _s, e in matches)
    # Delete half, verify the rest intact.
    doomed = sorted(model)[::2]
    for key in doomed:
        assert ex.run(client.delete(key, model.pop(key)))
    for key, addr in model.items():
        matches = ex.run(client.lookup(key))
        assert any(e.addr == addr for _s, e in matches)


def test_probe_prepare_parse_matches_lookup(table):
    cluster, info, client = table
    ex = cluster.direct_executor()
    key = b"probe-me"
    ex.run(client.insert(key, entry_for(client, key, 0x40)))
    group_addr, h, depth = ex.run(client.probe_prepare(key))
    data = ex.run(one_read(client, group_addr))
    matches = client.probe_parse(group_addr, data, h, depth)
    assert matches is not None
    direct = ex.run(client.lookup(key))
    assert [(s, e) for s, e in matches] == direct


def one_read(client, addr):
    data = yield client.probe_read_op(addr)
    return data
