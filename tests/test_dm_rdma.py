"""Unit tests for RDMA verbs and executors (timing + semantics)."""

import pytest

from repro.dm import (
    Batch,
    CasOp,
    Cluster,
    ClusterConfig,
    FaaOp,
    LocalCompute,
    NetworkConfig,
    OpStats,
    ReadOp,
    WriteOp,
)
from repro.errors import SimulationError


@pytest.fixture
def setup():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20))
    addr = cluster.alloc(0, 64)
    return cluster, addr


def test_direct_read_write(setup):
    cluster, addr = setup
    ex = cluster.direct_executor()

    def op():
        yield WriteOp(addr, b"abc")
        data = yield ReadOp(addr, 3)
        return data

    assert ex.run(op()) == b"abc"
    assert ex.stats.round_trips == 2
    assert ex.stats.bytes_written == 3
    assert ex.stats.bytes_read == 3


def test_direct_cas_faa(setup):
    cluster, addr = setup
    ex = cluster.direct_executor()

    def op():
        ok, old = yield CasOp(addr, 0, 41)
        before = yield FaaOp(addr, 1)
        value = yield ReadOp(addr, 8)
        return ok, old, before, int.from_bytes(value, "little")

    assert ex.run(op()) == (True, 0, 41, 42)


def test_batch_counts_one_round_trip(setup):
    cluster, addr = setup
    ex = cluster.direct_executor()

    def op():
        results = yield Batch([WriteOp(addr, b"x"), ReadOp(addr, 1)])
        return results

    results = ex.run(op())
    assert results[1] == b"x"
    assert ex.stats.round_trips == 1
    assert ex.stats.messages == 2
    assert ex.stats.batches == 1


def test_batch_rejects_nested():
    with pytest.raises(SimulationError):
        Batch([Batch([ReadOp(0, 1)])])
    with pytest.raises(SimulationError):
        Batch([LocalCompute(5)])


def test_sim_executor_same_results_as_direct(setup):
    cluster, addr = setup

    def op():
        yield WriteOp(addr, b"hello")
        ok, _ = yield CasOp(addr, int.from_bytes(b"hello" + bytes(3),
                                                 "little"), 7)
        data = yield ReadOp(addr, 8)
        return ok, data

    sx = cluster.sim_executor(0)
    p = cluster.engine.process(sx.run(op()))
    ok, data = cluster.engine.run_until_complete(p)
    assert ok and int.from_bytes(data, "little") == 7


def test_sim_verb_latency_matches_model():
    net = NetworkConfig()
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20, network=net))
    addr = cluster.alloc(0, 64)
    sx = cluster.sim_executor(0)

    def op():
        yield ReadOp(addr, 8)

    p = cluster.engine.process(sx.run(op()))
    cluster.engine.run_until_complete(p)
    assert cluster.engine.now == net.unloaded_rtt_ns(0, 8)


def test_sim_batch_is_one_rtt_not_n():
    net = NetworkConfig()
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20, network=net))
    addr = cluster.alloc(0, 256)
    sx = cluster.sim_executor(0)

    def op():
        yield Batch([ReadOp(addr + i * 8, 8) for i in range(8)])

    p = cluster.engine.process(sx.run(op()))
    cluster.engine.run_until_complete(p)
    one_rtt = net.unloaded_rtt_ns(0, 8)
    # Batched verbs pipeline: total time is far below 8 sequential RTTs,
    # but above a single verb (NIC serialization of 8 messages).
    assert one_rtt < cluster.engine.now < 3 * one_rtt


def test_sim_batch_same_mn_ordered(setup):
    """Verbs in a batch to one MN execute in posted order (the insert
    protocol of the RACE client depends on this)."""
    cluster, addr = setup
    sx = cluster.sim_executor(0)

    def op():
        results = yield Batch([
            CasOp(addr, 0, 99),
            ReadOp(addr, 8),
        ])
        return results

    p = cluster.engine.process(sx.run(op()))
    (ok, _), data = cluster.engine.run_until_complete(p)
    assert ok
    assert int.from_bytes(data, "little") == 99


def test_local_compute_advances_clock_only(setup):
    cluster, addr = setup
    sx = cluster.sim_executor(0)

    def op():
        yield LocalCompute(12_345)

    p = cluster.engine.process(sx.run(op()))
    cluster.engine.run_until_complete(p)
    assert cluster.engine.now == 12_345
    assert sx.stats.round_trips == 0


def test_nic_contention_creates_queueing():
    net = NetworkConfig()
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20, network=net))
    addr = cluster.alloc(0, 8)
    finish_times = []

    def client():
        sx = cluster.sim_executor(0)

        def op():
            yield ReadOp(addr, 8)
        yield from sx.run(op())
        finish_times.append(cluster.engine.now)

    for _ in range(20):
        cluster.engine.process(client())
    cluster.engine.run()
    # All clients share one CN NIC: completions must spread out.
    assert len(set(finish_times)) == 20


def test_op_stats_merge():
    a = OpStats(reads=1, round_trips=2)
    b = OpStats(reads=3, writes=1, round_trips=1)
    a.merge(b)
    assert a.reads == 4 and a.writes == 1 and a.round_trips == 3


def test_batch_rejects_empty():
    # An empty doorbell would silently charge a round trip for nothing.
    with pytest.raises(SimulationError, match="empty batch"):
        Batch([])
    with pytest.raises(SimulationError, match="empty batch"):
        Batch(())
