"""Multi-tenant serving tests (ISSUE 9): admission control, weighted-fair
scheduling, the tenant-aware runner's determinism, and - the contract the
whole tier hangs off - byte-identity of the plain runner path when
tenancy is detached.

The golden fixture ``tests/fixtures/tenancy_detached_golden.json`` was
captured from the pre-tenancy runner; ``run_workload(..., tenancy=None)``
must keep reproducing it bit for bit, including the full client-metric
counter map.
"""

import json
import os

import pytest

from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig, ClusterSpec
from repro.errors import ConfigError
from repro.tenancy import (
    UNITS_PER_TOKEN,
    TenancyConfig,
    TenancyController,
    TenantSpec,
    TokenBucket,
    WeightedFairScheduler,
    default_tenants,
    run_rack,
)
from repro.ycsb import bulk_load, make_dataset, run_workload, workload

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: The small rack every runner-level test here uses (seconds per run).
SMALL = ClusterSpec(num_cns=4, num_mns=8, group_size=4, num_shards=32,
                    clients=24, mn_capacity_bytes=32 << 20)


# ---------------------------------------------------------------------------
# Token bucket (exact integer arithmetic)
# ---------------------------------------------------------------------------

def test_token_bucket_starts_full_and_drains():
    bucket = TokenBucket(rate_ops_per_s=1000, burst_ops=3)
    for _ in range(3):
        assert bucket.ready_ns(0) == 0
        bucket.take(0)
    # Empty: one op at 1000 ops/s earns back in exactly 1e6 ns.
    assert bucket.ready_ns(0) == 1_000_000


def test_token_bucket_ceiling_division_is_exact():
    # 3 ops/s: one token = 1e9 units at 3 units/ns -> ceil(1e9/3) ns.
    bucket = TokenBucket(rate_ops_per_s=3, burst_ops=1)
    bucket.take(0)
    assert bucket.ready_ns(0) == (UNITS_PER_TOKEN + 2) // 3
    # And the bucket really is ready at that instant, not one ns later.
    at = bucket.ready_ns(0)
    assert bucket.ready_ns(at) == at
    bucket.take(at)


def test_token_bucket_refill_clamps_to_burst():
    bucket = TokenBucket(rate_ops_per_s=1_000_000, burst_ops=2)
    bucket.take(0)
    bucket.take(0)
    # A long idle period earns at most burst_ops tokens.
    far = 10_000_000_000
    bucket.take(far)
    bucket.take(far)
    assert bucket.ready_ns(far) > far


def test_token_bucket_take_before_ready_raises():
    bucket = TokenBucket(rate_ops_per_s=10, burst_ops=1)
    bucket.take(0)
    with pytest.raises(ConfigError):
        bucket.take(0)


def test_token_bucket_validates():
    with pytest.raises(ConfigError):
        TokenBucket(rate_ops_per_s=0)
    with pytest.raises(ConfigError):
        TokenBucket(rate_ops_per_s=10, burst_ops=0)


# ---------------------------------------------------------------------------
# Weighted-fair scheduler
# ---------------------------------------------------------------------------

def test_wfq_shares_proportional_to_weights():
    sched = WeightedFairScheduler([2, 1, 4, 1])
    picks = [0] * 4
    everyone = list(range(4))
    for _ in range(8000):
        picks[sched.pick(everyone)] += 1
    assert picks == [2000, 1000, 4000, 1000]


def test_wfq_tie_break_is_lowest_index():
    sched = WeightedFairScheduler([1, 1])
    assert sched.pick([0, 1]) == 0
    assert sched.pick([0, 1]) == 1


def test_wfq_idle_catch_up_prevents_credit_hoarding():
    """A tenant absent from the candidate set (throttled) must not bank
    unbounded virtual-time credit: once it returns, it gets its share of
    the remaining capacity, not a monopolizing backlog."""
    sched = WeightedFairScheduler([1, 1])
    for _ in range(1000):
        sched.pick([0])          # tenant 1 throttled away
    picks = [0, 0]
    for _ in range(1000):
        picks[sched.pick([0, 1])] += 1
    # Tenant 1 gets at most one catch-up pick beyond its fair half.
    assert abs(picks[0] - picks[1]) <= 1


# ---------------------------------------------------------------------------
# Controller: admission decisions, rosters, validation
# ---------------------------------------------------------------------------

def test_controller_uncapped_tenant_always_admitted():
    controller = TenancyController(TenancyConfig((
        TenantSpec("free"), TenantSpec("capped", rate_ops_per_s=1,
                                       burst_ops=1))))
    granted = [controller.acquire(0)[0] for _ in range(10)]
    assert -1 not in granted
    assert granted.count(1) == 1      # the capped tenant's single burst op


def test_controller_reports_wait_when_every_bucket_empty():
    controller = TenancyController(TenancyConfig((
        TenantSpec("a", rate_ops_per_s=1000, burst_ops=1),
        TenantSpec("b", rate_ops_per_s=2000, burst_ops=1))))
    assert controller.acquire(0) in ((0, 0), (1, 0))
    assert controller.acquire(0)[1] == 0
    tenant, wait = controller.acquire(0)
    assert tenant == -1
    # The earliest refill is b's (2000 ops/s -> 500us).
    assert wait == 500_000
    assert controller.throttle_waits == 1


def test_default_tenants_deterministic_and_throttled():
    a, b = default_tenants(16), default_tenants(16)
    assert a == b
    assert len(a) == 16
    capped = [t for t in a.tenants if t.rate_ops_per_s is not None]
    assert len(capped) == 2           # every 8th of 16
    assert len({t.workload for t in a.tenants}) == 4


def test_roster_validation():
    with pytest.raises(ConfigError):
        TenancyConfig(()).validate()
    with pytest.raises(ConfigError):
        TenancyConfig((TenantSpec("x"), TenantSpec("x"))).validate()
    with pytest.raises(ConfigError):
        TenantSpec("w", weight=0).validate()
    with pytest.raises(ConfigError):
        default_tenants(0)


# ---------------------------------------------------------------------------
# Detached path: byte-identical to the pre-tenancy runner
# ---------------------------------------------------------------------------

def _golden_row(scenario, seed):
    cluster = Cluster(ClusterConfig(
        mn_capacity_bytes=scenario["mn_capacity_bytes"]))
    index = SphinxIndex(cluster, SphinxConfig(
        filter_budget_bytes=scenario["filter_budget_bytes"]))
    dataset = make_dataset(scenario["dataset"], scenario["keys"],
                           insert_pool=scenario["insert_pool"])
    bulk_load(cluster, index, dataset)
    result = run_workload(cluster, index, workload(scenario["workload"]),
                          dataset, system="Sphinx",
                          workers=scenario["workers"], ops=scenario["ops"],
                          warmup_ops_per_cn=scenario["warmup_ops_per_cn"],
                          seed=seed)
    assert result.tenants is None     # no tenancy -> no tenant rows
    row = result.row()
    row["seed"] = seed
    row["sim_ns"] = result.sim_ns
    row["failed_ops"] = result.failed_ops
    row["crashed_workers"] = result.crashed_workers
    row["client_metrics"] = dict(
        sorted(result.client_metrics.as_dict().items()))
    return row


def test_tenancy_detached_matches_pre_tenancy_golden():
    """``run_workload`` without ``tenancy=`` must reproduce the fixture
    captured from the runner before this PR existed - every metric, every
    counter, bit for bit."""
    with open(os.path.join(FIXTURES, "tenancy_detached_golden.json")) as f:
        golden = json.load(f)
    for entry in golden["rows"]:
        row = _golden_row(golden["scenario"], entry["seed"])
        assert row == entry, (
            f"seed {entry['seed']}: detached runner drifted from the "
            f"pre-tenancy golden fixture")


# ---------------------------------------------------------------------------
# Tenant-aware runs: determinism and fairness
# ---------------------------------------------------------------------------

def test_rack_run_same_seed_bit_identical():
    kwargs = dict(tenants=8, num_keys=2000, insert_pool=400, ops=2500,
                  seed=5)
    a = run_rack(SMALL, **kwargs)
    b = run_rack(SMALL, **kwargs)
    assert json.dumps(a.rows(), sort_keys=True) \
        == json.dumps(b.rows(), sort_keys=True)
    assert a.fsck_exit == 0
    assert [t["ops"] for t in a.tenants] == [t["ops"] for t in b.tenants]


def test_rack_run_different_seed_differs():
    a = run_rack(SMALL, tenants=4, num_keys=1500, insert_pool=300,
                 ops=2000, seed=1)
    b = run_rack(SMALL, tenants=4, num_keys=1500, insert_pool=300,
                 ops=2000, seed=2)
    assert a.rows() != b.rows()


def test_saturated_tenants_share_by_weight():
    """Uncapped tenants hammering a saturated rack complete ops in exact
    proportion to their WFQ weights (closed-loop workers + integer WFQ
    make the shares deterministic, not just approximate)."""
    roster = TenancyConfig((
        TenantSpec("w2", workload="A", weight=2),
        TenantSpec("w1", workload="A", weight=1),
        TenantSpec("w4", workload="A", weight=4),
        TenantSpec("x1", workload="A", weight=1)))
    out = run_rack(SMALL, tenants=roster, num_keys=2000, insert_pool=400,
                   ops=4000, seed=3)
    ops = {t["tenant"]: t["ops"] for t in out.tenants}
    assert ops["w1"] > 0
    assert abs(ops["w2"] - 2 * ops["w1"]) <= 2
    assert abs(ops["w4"] - 4 * ops["w1"]) <= 4
    assert abs(ops["x1"] - ops["w1"]) <= 1
    total = sum(t["ops"] for t in out.tenants)
    assert total == out.result.ops


def test_admission_cap_throttles_below_fair_share():
    """A rate-capped tenant ends below an identically-weighted uncapped
    tenant, and the run reports the throttle waits it absorbed."""
    roster = TenancyConfig((
        TenantSpec("free", workload="A", weight=1),
        TenantSpec("slow", workload="A", weight=1,
                   rate_ops_per_s=20_000, burst_ops=4)))
    out = run_rack(SMALL, tenants=roster, num_keys=2000, insert_pool=400,
                   ops=3000, seed=7)
    ops = {t["tenant"]: t["ops"] for t in out.tenants}
    assert ops["slow"] < ops["free"]
    # The cap binds: admitted ops <= rate x elapsed time + bursts.
    seconds = out.result.sim_ns / 1e9
    assert ops["slow"] <= 20_000 * seconds + 4 * SMALL.clients + 1


def test_tenant_rows_reconcile_with_aggregate():
    out = run_rack(SMALL, tenants=6, num_keys=1500, insert_pool=300,
                   ops=2400, seed=9)
    assert len(out.tenants) == 6
    assert sum(t["ops"] for t in out.tenants) == out.result.ops
    for trow in out.tenants:
        assert trow["failed_ops"] == 0
        assert trow["goodput_mops"] > 0
        assert trow["p99_latency_us"] >= trow["avg_latency_us"] * 0.5
        if trow["ops"]:
            assert trow["round_trips_per_op"] > 0
    # Per-tenant verb totals folded into the aggregate OpStats.
    total_rt = sum(
        round(t["round_trips_per_op"] * t["ops"]) for t in out.tenants)
    agg_rt = out.result.verb_counters()["round_trips"]
    assert abs(total_rt - agg_rt) <= len(out.tenants)  # rounding slack
