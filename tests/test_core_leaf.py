"""Unit tests for leaf operations: checksum reads, in-place updates."""

import pytest

from repro.art.layout import (
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    decode_leaf,
    encode_leaf,
    leaf_status_word,
)
from repro.core.leaf import (
    in_place_update,
    invalidate_leaf,
    read_leaf,
    write_new_leaf,
)
from repro.dm.memory import addr_offset
from repro.errors import RetryLimitExceeded


@pytest.fixture
def leaf_setup(single_mn_cluster):
    cluster = single_mn_cluster
    addr = cluster.alloc(0, 128, "leaf")
    ex = cluster.direct_executor()
    ex.run(write_new_leaf(addr, b"the-key", b"the-value", units=2))
    return cluster, addr, ex


def test_write_then_read(leaf_setup):
    cluster, addr, ex = leaf_setup
    view = ex.run(read_leaf(addr, 2))
    assert view.key == b"the-key"
    assert view.value == b"the-value"
    assert view.checksum_ok
    assert view.status == STATUS_IDLE


def test_in_place_update_success(leaf_setup):
    cluster, addr, ex = leaf_setup
    view = ex.run(read_leaf(addr, 2))
    assert ex.run(in_place_update(addr, view, b"new-value!"))
    after = ex.run(read_leaf(addr, 2))
    assert after.value == b"new-value!"
    assert after.status == STATUS_IDLE
    assert after.checksum_ok
    assert after.version == view.version + 1


def test_in_place_update_lock_contention(leaf_setup):
    cluster, addr, ex = leaf_setup
    view = ex.run(read_leaf(addr, 2))
    # Simulate another writer holding the leaf lock.
    locked = leaf_status_word(STATUS_LOCKED, view.units, len(view.key),
                              len(view.value))
    cluster.memories[0].write_u64(addr_offset(addr), locked)
    assert not ex.run(in_place_update(addr, view, b"nope"))


def test_in_place_update_rejects_oversized(leaf_setup):
    cluster, addr, ex = leaf_setup
    view = ex.run(read_leaf(addr, 2))
    with pytest.raises(ValueError):
        ex.run(in_place_update(addr, view, b"v" * 4000))


def test_invalidate_leaf(leaf_setup):
    cluster, addr, ex = leaf_setup
    view = ex.run(read_leaf(addr, 2))
    assert ex.run(invalidate_leaf(addr, view))
    after = ex.run(read_leaf(addr, 2))
    assert after.status == STATUS_INVALID
    # A second invalidate fails (status no longer Idle).
    assert not ex.run(invalidate_leaf(addr, view))


def test_torn_read_retries_then_raises(single_mn_cluster):
    cluster = single_mn_cluster
    addr = cluster.alloc(0, 128, "leaf")
    image = bytearray(encode_leaf(b"k", b"v", units=2))
    image[16] ^= 0xFF  # permanently corrupt the key byte
    cluster.memories[0].write(addr_offset(addr), bytes(image))
    ex = cluster.direct_executor()
    with pytest.raises(RetryLimitExceeded):
        ex.run(read_leaf(addr, 2))


def test_torn_read_recovers_if_fixed_midway(single_mn_cluster):
    """A torn read that becomes consistent on retry succeeds (this is the
    normal read-racing-write case the checksum exists for)."""
    cluster = single_mn_cluster
    addr = cluster.alloc(0, 128, "leaf")
    good = encode_leaf(b"k", b"v", units=2)
    bad = bytearray(good)
    bad[16] ^= 0xFF
    cluster.memories[0].write(addr_offset(addr), bytes(bad))

    def fix_then_read():
        # First read sees the torn image; then the "writer" finishes.
        from repro.dm.rdma import LocalCompute, apply_verb
        gen = read_leaf(addr, 2)
        op = gen.send(None)
        result = apply_verb(cluster.memories, op)
        cluster.memories[0].write(addr_offset(addr), good)
        while True:
            try:
                op = gen.send(result)
            except StopIteration as stop:
                return stop.value
            result = None if isinstance(op, LocalCompute) \
                else apply_verb(cluster.memories, op)

    view = fix_then_read()
    assert view.checksum_ok and view.key == b"k"


def test_invalid_leaf_read_returns_immediately(single_mn_cluster):
    cluster = single_mn_cluster
    addr = cluster.alloc(0, 128, "leaf")
    image = encode_leaf(b"k", b"v", STATUS_INVALID, units=2)
    cluster.memories[0].write(addr_offset(addr), image)
    ex = cluster.direct_executor()
    view = ex.run(read_leaf(addr, 2))
    assert view.status == STATUS_INVALID
    assert ex.stats.reads == 1  # no retry loop for deleted leaves
