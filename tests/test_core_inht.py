"""Unit tests for the Inner Node Hash Table wrapper."""

import pytest

from repro.art.layout import NODE4, NODE16
from repro.core.inht import InhtClient, InnerNodeHashTable
from repro.race.layout import TableParams


@pytest.fixture
def inht(cluster):
    table = InnerNodeHashTable.create(
        cluster, TableParams(seed=5, groups_per_segment=8,
                             slots_per_group=4, initial_depth=1))
    return cluster, table, InhtClient(cluster, table)


def test_one_table_per_mn(inht):
    cluster, table, client = inht
    assert set(table.tables) == set(cluster.memories)
    # Per-MN seeds differ so bucket patterns are independent.
    seeds = {info.params.seed for info in table.tables.values()}
    assert len(seeds) == len(table.tables)


def test_entry_routed_to_placement_mn(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    prefix = b"LYR"
    ex.run(client.insert(prefix, 0x40, NODE4))
    owner = cluster.placement.mn_for_prefix(prefix)
    # The entry must be findable and it must live in the owner's table.
    matches = ex.run(client.lookup(prefix))
    assert any(e.addr == 0x40 for _s, e in matches)
    assert client._client_for(prefix) is client._clients[owner]


def test_lookup_empty(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    assert ex.run(client.lookup(b"missing")) == []


def test_update_for_type_switch(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    prefix = b"AB"
    ex.run(client.insert(prefix, 0x100, NODE4))
    assert ex.run(client.update_for_type_switch(prefix, 0x100, NODE4,
                                                0x200, NODE16))
    matches = ex.run(client.lookup(prefix))
    entries = [e for _s, e in matches]
    assert any(e.addr == 0x200 and e.node_type == NODE16 for e in entries)
    assert not any(e.addr == 0x100 for e in entries)


def test_update_for_type_switch_missing_entry_reinstalls(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    # No prior entry: the update falls back to a fresh insert.
    ok = ex.run(client.update_for_type_switch(b"XY", 0x300, NODE4,
                                              0x400, NODE16))
    assert not ok  # reports the CAS didn't happen...
    matches = ex.run(client.lookup(b"XY"))
    assert any(e.addr == 0x400 for _s, e in matches)  # ...but heals


def test_delete(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    ex.run(client.insert(b"DEL", 0x500, NODE4))
    assert ex.run(client.delete(b"DEL", 0x500))
    assert ex.run(client.lookup(b"DEL")) == []


def test_probe_all_matches_individual_lookups(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    prefixes = [f"p{i}".encode() for i in range(20)]
    for i, p in enumerate(prefixes):
        ex.run(client.insert(p, 0x40 + i * 8, NODE4))
    out = ex.run(client.probe_all(prefixes + [b"absent"]))
    for i, p in enumerate(prefixes):
        assert out[p] is not None
        assert any(e.addr == 0x40 + i * 8 for _s, e in out[p])
    assert out[b"absent"] == []


def test_probe_all_single_round_trip_when_warm(inht):
    cluster, table, client = inht
    prefixes = [f"w{i}".encode() for i in range(8)]
    ex = cluster.direct_executor()
    for i, p in enumerate(prefixes):
        ex.run(client.insert(p, 0x40 + i * 8, NODE4))
    # Warm run already cached directories; a fresh probe is 1 batch.
    from repro.dm.rdma import OpStats
    stats = OpStats()
    ex2 = cluster.direct_executor(stats)
    ex2.run(client.probe_all(prefixes))
    assert stats.round_trips == 1
    assert stats.messages == len(prefixes)


def test_directory_cache_and_bytes(inht):
    cluster, table, client = inht
    ex = cluster.direct_executor()
    assert client.directory_cache_bytes() == 0
    ex.run(client.insert(b"abc", 0x40, NODE4))
    assert client.directory_cache_bytes() > 0
    assert client.splits() == 0


def test_total_bytes(inht):
    cluster, table, client = inht
    assert table.total_bytes(cluster) > 0
