"""Fast-path equivalence suite (ISSUE 7).

The batched+pooled dispatch loop, the clean-verb trips, and the
vectorized NIC closed forms are *performance* features: the
``REPRO_SIM_SLOW=1`` heap-only engine remains the bit-identical
reference oracle, and ``REPRO_SIM_VECTOR=0`` (or a numpy-less install)
must not change a single simulated digit.  These tests diff complete
observable digests - benchmark rows, raw latency samples, the final
clock, NIC station counters, and the engine's logical
``events_processed`` - across every mode, over clean, chaos,
crash-recovery, and tracer-attached runs.
"""

import random

import pytest

import repro.dm.network as network_mod

from repro.bench import CellSpec, clear_setup_caches, run_cell
from repro.dm.cluster import Cluster, ClusterConfig
from repro.dm.rdma import Batch, CasOp, FaaOp, LocalCompute, ReadOp, WriteOp
from repro.errors import SimulationError
from repro.sim.engine import _POOL_CAP, Engine

TINY = dict(num_keys=900, ops=140, workers=6, warmup_ops_per_cn=60)

CLEAN = CellSpec(system="Sphinx", dataset="u64", workload="A", **TINY)
CHAOS = CellSpec(system="Sphinx", dataset="u64", workload="A",
                 chaos_seed=5, **TINY)
CRASH = CellSpec(system="Sphinx", dataset="u64", workload="A",
                 chaos_seed=9, chaos_crashes=True, **TINY)
TRACED = CellSpec(system="Sphinx", dataset="u64", workload="A",
                  profile=True, **TINY)
# Locator-family cells (ISSUE 8): the leaf-locator fast path and the
# Outback MPH baseline issue their own verb shapes (single raw leaf
# READ), so they get their own fast/slow/vector0 identity coverage.
LOC_CLEAN = CellSpec(system="Sphinx+Loc", dataset="u64", workload="A",
                     **TINY)
OUTBACK_CLEAN = CellSpec(system="Outback", dataset="u64", workload="A",
                         **TINY)


@pytest.fixture(autouse=True)
def _fresh_snapshots():
    # Snapshot caches hold clusters whose Engine pinned its dispatch path
    # at construction; every mode switch needs a cold start.
    clear_setup_caches()
    yield
    clear_setup_caches()


def _cell_digest(cell):
    r = run_cell(cell)
    return (r.row(), tuple(r.latency.samples), r.sim_ns,
            r.op_stats.round_trips, r.op_stats.messages,
            r.op_stats.batches, r.failed_ops, dict(r.faults))


def _slow_digest(cell, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SLOW", "1")
    clear_setup_caches()
    try:
        return _cell_digest(cell)
    finally:
        monkeypatch.delenv("REPRO_SIM_SLOW")
        clear_setup_caches()


# -- cell-level fast/slow identity ----------------------------------------

def test_clean_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(CLEAN) == _slow_digest(CLEAN, monkeypatch)


def test_chaos_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(CHAOS) == _slow_digest(CHAOS, monkeypatch)


def test_crash_recovery_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(CRASH) == _slow_digest(CRASH, monkeypatch)


def test_traced_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(TRACED) == _slow_digest(TRACED, monkeypatch)


def test_locator_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(LOC_CLEAN) == _slow_digest(LOC_CLEAN, monkeypatch)


def test_outback_cell_fast_matches_slow(monkeypatch):
    assert _cell_digest(OUTBACK_CLEAN) == _slow_digest(OUTBACK_CLEAN,
                                                       monkeypatch)


def test_vector_disabled_cell_matches(monkeypatch):
    fast = _cell_digest(CLEAN)
    monkeypatch.setenv("REPRO_SIM_VECTOR", "0")
    clear_setup_caches()
    assert _cell_digest(CLEAN) == fast


def test_locator_cell_vector_disabled_matches(monkeypatch):
    fast = _cell_digest(LOC_CLEAN)
    monkeypatch.setenv("REPRO_SIM_VECTOR", "0")
    clear_setup_caches()
    assert _cell_digest(LOC_CLEAN) == fast


def test_numpy_absent_cell_matches(monkeypatch):
    fast = _cell_digest(CLEAN)
    monkeypatch.setattr(network_mod, "_np", None)
    clear_setup_caches()
    assert _cell_digest(CLEAN) == fast


# -- engine-level digest including events_processed -----------------------

def _mixed_digest():
    """Mixed scalar/batch/local workload: a contended phase (several
    clients -> event-driven trips) then a solo phase (idle engine ->
    closed forms).  Returns every observable the equivalence contract
    covers, including the logical event count."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20))
    addrs = [cluster.alloc(i % 3, 8) for i in range(24)]
    engine = cluster.engine

    def client(sx, seed):
        rng = random.Random(seed)

        def op():
            results = []
            for _ in range(60):
                k = rng.random()
                a = rng.choice(addrs)
                if k < 0.35:
                    results.append(bytes((yield ReadOp(a, 8))))
                elif k < 0.6:
                    yield WriteOp(a, rng.getrandbits(64).to_bytes(8, "little"))
                elif k < 0.7:
                    results.append((yield CasOp(a, 0, rng.getrandbits(16)))[0])
                elif k < 0.78:
                    results.append((yield FaaOp(a, 3)))
                elif k < 0.9:
                    members = [ReadOp(rng.choice(addrs), 8)
                               for _ in range(rng.randint(2, 12))]
                    results.append([bytes(x) for x in (yield Batch(members))])
                else:
                    yield LocalCompute(rng.randint(10, 500))
            return results

        return engine.process(sx.run(op()), name=f"c{seed}")

    procs = [client(cluster.sim_executor(i % 3), 1000 + i) for i in range(3)]
    for p in procs:
        engine.run_until_complete(p)
    solo = engine.run_until_complete(
        client(cluster.sim_executor(0), 7))
    cn = cluster.cn_nics[0]
    mn = cluster.mn_nics[0]
    return (engine.now, engine.events_processed,
            repr([p.value for p in procs]) + repr(solo),
            (cn.messages, cn.payload_bytes, cn.server.busy_time,
             cn.server.jobs),
            (mn.messages, mn.payload_bytes, mn.server.busy_time,
             mn.server.jobs))


def test_mixed_workload_identical_across_all_modes(monkeypatch):
    fast = _mixed_digest()

    monkeypatch.setenv("REPRO_SIM_VECTOR", "0")
    no_vector = _mixed_digest()
    monkeypatch.delenv("REPRO_SIM_VECTOR")

    monkeypatch.setattr(network_mod, "_np", None)
    no_numpy = _mixed_digest()
    monkeypatch.undo()

    monkeypatch.setenv("REPRO_SIM_SLOW", "1")
    slow = _mixed_digest()
    monkeypatch.delenv("REPRO_SIM_SLOW")

    assert fast == no_vector
    assert fast == no_numpy
    assert fast == slow  # includes logical events_processed equality


# -- pooling safety --------------------------------------------------------

def test_client_held_timeout_never_recycled():
    """An event the client still references must not enter the pool (its
    value would be clobbered by reuse)."""
    engine = Engine(slow=False)
    held = []

    def proc():
        for i in range(50):
            t = engine.timeout(1, value=i)
            held.append(t)
            yield t

    engine.run_until_complete(engine.process(proc()))
    for i, t in enumerate(held):
        assert t.value == i
    for t in held:
        assert all(t is not p for p in engine._pool)


def test_pool_recycles_and_respects_cap():
    engine = Engine(slow=False)

    def ping():
        for _ in range(200):
            yield engine.timeout(1)

    engine.run_until_complete(engine.process(ping()))
    assert engine._pool, "steady-state timeouts should be recycled"
    assert len(engine._pool) <= _POOL_CAP
    # A recycled event is actually reused by the allocator.
    top = engine._pool[-1]
    assert engine.timeout(1) is top


# -- misbehaving generators ------------------------------------------------

@pytest.mark.parametrize("slow", [False, True])
def test_non_event_yield_raises_and_closes_generator(slow):
    engine = Engine(slow=slow)
    closed = []

    def bad():
        try:
            yield engine.timeout(1)
            yield 42
        finally:
            closed.append(True)

    proc = engine.process(bad(), name="bad")
    with pytest.raises(SimulationError, match="yielded int"):
        engine.run_until_complete(proc)
    assert closed == [True]
