"""Unit tests for hashing primitives and the consistent-hash ring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import (
    ConsistentHashRing,
    fingerprint,
    hash64,
    hash_pair,
    prefix_hash42,
)


def test_hash64_deterministic():
    assert hash64(b"hello") == hash64(b"hello")
    assert hash64(b"hello", 1) != hash64(b"hello", 2)


def test_hash64_sensitivity():
    # Single-byte perturbations must change the hash.
    base = hash64(b"abcdefgh")
    for i in range(8):
        mutated = bytearray(b"abcdefgh")
        mutated[i] ^= 1
        assert hash64(bytes(mutated)) != base


@given(st.binary(min_size=0, max_size=64))
def test_hash64_range(data):
    assert 0 <= hash64(data) < (1 << 64)


def test_hash_pair_independent():
    h1, h2 = hash_pair(b"key")
    assert h1 != h2


@given(st.binary(min_size=1, max_size=40),
       st.integers(min_value=1, max_value=62))
def test_fingerprint_nonzero_and_in_range(data, bits):
    fp = fingerprint(data, bits)
    assert 1 <= fp < (1 << bits)


def test_fingerprint_rejects_bad_width():
    with pytest.raises(ValueError):
        fingerprint(b"x", 0)
    with pytest.raises(ValueError):
        fingerprint(b"x", 63)


def test_fingerprint_distribution():
    # 12-bit fingerprints over many keys should cover most of the space.
    values = {fingerprint(f"k{i}".encode(), 12) for i in range(20_000)}
    assert len(values) > 3_500


@given(st.binary(min_size=0, max_size=64))
def test_prefix_hash42_range(data):
    assert 0 <= prefix_hash42(data) < (1 << 42)


def test_ring_lookup_stable():
    ring = ConsistentHashRing([0, 1, 2])
    assert ring.lookup(b"abc") == ring.lookup(b"abc")


def test_ring_covers_all_members():
    ring = ConsistentHashRing([0, 1, 2], vnodes=64)
    owners = {ring.lookup(f"key{i}".encode()) for i in range(5_000)}
    assert owners == {0, 1, 2}


def test_ring_balance():
    ring = ConsistentHashRing([0, 1, 2], vnodes=128)
    counts = {0: 0, 1: 0, 2: 0}
    n = 30_000
    for i in range(n):
        counts[ring.lookup(f"key{i}".encode())] += 1
    for owner, count in counts.items():
        assert 0.15 < count / n < 0.55, (owner, count)


def test_ring_requires_members():
    with pytest.raises(ValueError):
        ConsistentHashRing([])


def test_ring_lookup_int():
    ring = ConsistentHashRing([0, 1, 2])
    assert ring.lookup_int(42) in (0, 1, 2)
