"""Error-path coverage for the chaos substrate (ISSUE 3 satellite).

``RetryLimitExceeded`` must arrive carrying enough forensic context to
debug a chaos failure (client, OpStats snapshot, recent fault trace);
the ``op_timeout_ns`` deadline must fire with its own message; garbage
addresses must NAK like a real NIC instead of raising a Python
``KeyError``; DMSan must stay quiet while the injector is active (the
two monitors watch the same verbs and must not confuse each other); and
the fault kinds deliberately *excluded* from the chaos mix (``stale_cas``)
must still be containable by a correctly written client when targeted
explicitly.
"""

import pytest

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats, ReadOp
from repro.errors import InjectedFault, RetryLimitExceeded
from repro.fault import FaultPlan, RetryPolicy, drop, stale_cas


def _fresh(plan, retry=None):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    config = SphinxConfig(filter_budget_bytes=1 << 14,
                          **({"retry": retry} if retry else {}))
    index = SphinxIndex(cluster, config)
    client = index.client(0)
    ex = cluster.direct_executor()
    for i in range(8):
        ex.run(client.insert(encode_str(f"e/{i}"), f"v{i}".encode()))
    cluster.attach_faults(plan)
    return cluster, client


def _one(verb):
    def gen():
        result = yield verb
        return result
    return gen()


def test_retry_limit_carries_context_and_fault_trace():
    plan = FaultPlan(seed=3, rules=(drop(1.0, ("read",)),))
    cluster, client = _fresh(plan, RetryPolicy(max_retries=4,
                                               backoff_ns=200))
    executor = cluster.direct_executor()
    with pytest.raises(RetryLimitExceeded) as info:
        executor.run(client.search(encode_str("e/3")))
    exc = info.value
    assert exc.client == executor.client_id
    assert exc.stats is not None and exc.stats.faults_injected > 0
    assert exc.fault_trace, "no fault trace attached"
    assert all(event.kind == "drop" for event in exc.fault_trace)
    rendered = str(exc)
    assert "exceeded" in rendered and "retries" in rendered
    assert "faults[n>=" in rendered and "drop" in rendered


def test_op_timeout_deadline_fires():
    plan = FaultPlan(seed=5, rules=(drop(1.0, ("read",)),))
    # A deadline shorter than one drop's completion timeout (12 us): the
    # second attempt must be refused with the timeout message, long
    # before the generous retry budget runs out.
    retry = RetryPolicy(max_retries=10_000, backoff_ns=100,
                        op_timeout_ns=10_000)
    cluster, client = _fresh(plan, retry)
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine
    with pytest.raises(RetryLimitExceeded, match="timed out after"):
        engine.run_until_complete(
            engine.process(executor.run(client.search(encode_str("e/3"))),
                           name="deadline"))


def test_unreachable_address_naks_like_a_nic():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 20))
    cluster.attach_faults(FaultPlan(seed=1))
    executor = cluster.direct_executor()
    # Far beyond the MN's capacity: a real NIC NAKs; a KeyError or a
    # silent empty read would both be bugs.
    bogus = (1 << 20) + 4096
    with pytest.raises(InjectedFault) as info:
        executor.run(_one(ReadOp(bogus, 8)))
    assert info.value.kind == "nak"
    assert cluster.injector.counters.get("nak") == 1


def test_dmsan_quiet_under_chaos():
    """The sanitizer models the protocol contract; injected drops and
    delays must not read as data races.  (CI runs the whole fault suite
    under REPRO_SAN=1; this test makes the interaction explicit and
    runs it unconditionally.)"""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    monitor = cluster.attach_sanitizer()
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"q/{i:02d}") for i in range(16)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    cluster.attach_faults(FaultPlan.chaos(9, intensity=5.0))
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine

    def mix():
        for step, key in enumerate(keys * 4):
            try:
                if step % 2:
                    yield from executor.run(client.search(key))
                else:
                    yield from executor.run(
                        client.update(key, f"u{step}".encode()))
            except RetryLimitExceeded:
                pass

    engine.run_until_complete(engine.process(mix(), name="san"))
    assert stats.faults_injected > 0, "chaos plan never fired"
    report = monitor.report
    assert report.clean, report.summary() + "\n" + \
        "\n".join(report.render_violations())


def test_stale_cas_is_contained_when_targeted():
    """``stale_cas`` (CAS applied, success reply forged into a failure)
    is excluded from FaultPlan.chaos because an applied-but-denied CAS
    can strand locks without lease recovery - but a client retrying a
    *lock acquisition* must survive it: the retry observes its own lock
    word and the operation either completes or fails cleanly, never
    corrupts."""
    plan = FaultPlan(seed=21, rules=(stale_cas(0.25),))
    cluster, client = _fresh(plan, RetryPolicy(max_retries=32,
                                               backoff_ns=500))
    executor = cluster.direct_executor()
    survived = 0
    for i in range(12):
        key = encode_str(f"sc/{i:02d}")
        try:
            executor.run(client.insert(key, f"s{i}".encode()))
        except RetryLimitExceeded:
            continue  # clean failure is acceptable containment
        survived += 1
        # Ground truth through a fault-free path: the committed insert
        # must be visible and exact.
        injector = cluster.injector
        cluster.injector = None
        try:
            got = cluster.direct_executor().run(client.search(key))
        finally:
            cluster.injector = injector
        assert got == f"s{i}".encode(), \
            f"stale_cas corrupted {key!r}: {got!r}"
    assert cluster.injector.counters.get("stale_cas", 0) > 0
    assert survived > 0, "every insert failed - containment untestable"
