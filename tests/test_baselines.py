"""Tests for the SMART and ART-on-DM baselines, including cross-system
equivalence: all three indexes must compute identical results."""

import random

import pytest

from repro.art import LocalART, encode_str, encode_u64
from repro.art.layout import NODE256, node_size
from repro.baselines import (
    ArtDmIndex,
    NodeCache,
    SmartConfig,
    SmartIndex,
)
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig, OpStats


def fresh_cluster():
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


def keyset(n, seed=0):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < n:
        if rng.random() < 0.5:
            keys.add(encode_u64(rng.getrandbits(64)))
        else:
            keys.add(encode_str(f"user{rng.randrange(10**6)}@ex{rng.randrange(7)}.com"))
    return sorted(keys)


SYSTEMS = {
    "art": lambda c: ArtDmIndex(c),
    "smart": lambda c: SmartIndex(c, SmartConfig(cache_budget_bytes=1 << 17)),
    "smart_nocache": lambda c: SmartIndex(c, SmartConfig(cache_budget_bytes=0)),
    "sphinx": lambda c: SphinxIndex(c, SphinxConfig(
        filter_budget_bytes=1 << 15)),
}


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_system_matches_local_oracle(system):
    cluster = fresh_cluster()
    index = SYSTEMS[system](cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    oracle = LocalART()
    rng = random.Random(3)
    pool = keyset(300, seed=1)
    for step in range(2_000):
        key = rng.choice(pool)
        roll = rng.random()
        if roll < 0.45:
            value = f"v{step}".encode()
            assert ex.run(client.insert(key, value)) == \
                oracle.insert(key, value)
        elif roll < 0.6:
            assert ex.run(client.delete(key)) == oracle.delete(key)
        elif roll < 0.8:
            assert ex.run(client.search(key)) == oracle.search(key)
        else:
            value = f"u{step}".encode()
            found = oracle.search(key) is not None
            assert ex.run(client.update(key, value)) == found
            if found:
                oracle.insert(key, value)
    for key in pool:
        assert ex.run(client.search(key)) == oracle.search(key)
    start = pool[10]
    assert ex.run(client.scan_count(start, 50)) == \
        oracle.scan_count(start, 50)


def test_smart_preallocates_node256():
    cluster = fresh_cluster()
    index = SmartIndex(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    for key in keyset(500, seed=2):
        ex.run(client.insert(key, b"v"))
    inner = cluster.mn_bytes_by_category()["inner"]
    # Every inner node costs node_size(NODE256); never any smaller type.
    assert inner % node_size(NODE256) == 0
    assert client.metrics.type_switches == 0


def test_smart_memory_overhead_vs_art():
    keys = keyset(2_000, seed=4)

    def load(make):
        cluster = fresh_cluster()
        index = make(cluster)
        client = index.client(0)
        ex = cluster.direct_executor()
        for key in keys:
            ex.run(client.insert(key, b"v" * 64))
        cats = cluster.mn_bytes_by_category()
        return cats["inner"] + cats["leaf"]

    art_bytes = load(lambda c: ArtDmIndex(c))
    smart_bytes = load(lambda c: SmartIndex(c))
    assert smart_bytes > 1.5 * art_bytes  # paper: 2.1-3.0x


def test_smart_cache_reduces_round_trips():
    cluster = fresh_cluster()
    index = SmartIndex(cluster, SmartConfig(cache_budget_bytes=4 << 20))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = keyset(2_000, seed=5)
    for key in keys:
        ex.run(client.insert(key, b"v"))
    # Warm pass.
    for key in keys[:400]:
        ex.run(client.search(key))
    warm = OpStats()
    exw = cluster.direct_executor(warm)
    for key in keys[:400]:
        exw.run(client.search(key))
    # Cold client on another CN for comparison.
    cold_client = index.client(1)
    cold = OpStats()
    exc = cluster.direct_executor(cold)
    for key in keys[:400]:
        exc.run(cold_client.search(key))
    assert warm.round_trips < cold.round_trips


def test_smart_zero_cache_still_correct():
    cluster = fresh_cluster()
    index = SmartIndex(cluster, SmartConfig(cache_budget_bytes=0))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = keyset(300, seed=6)
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    for i, key in enumerate(keys):
        assert ex.run(client.search(key)) == f"v{i}".encode()
    assert client.cn_cache_bytes() == 0


def test_art_dm_sequential_scan_costs_more_round_trips():
    keys = keyset(1_000, seed=7)

    def scan_rtts(make):
        cluster = fresh_cluster()
        index = make(cluster)
        client = index.client(0)
        ex = cluster.direct_executor()
        for key in keys:
            ex.run(client.insert(key, b"v"))
        stats = OpStats()
        ex2 = cluster.direct_executor(stats)
        out = ex2.run(client.scan_count(keys[5], 80))
        return stats.round_trips, out

    art_rtts, art_out = scan_rtts(lambda c: ArtDmIndex(c))
    sphinx_rtts, sphinx_out = scan_rtts(
        lambda c: SphinxIndex(c, SphinxConfig(filter_budget_bytes=1 << 15)))
    assert art_out == sphinx_out
    assert art_rtts > 1.5 * sphinx_rtts  # doorbell batching wins


def test_node_cache_lru_budget():
    from repro.art.layout import Header, NodeView, NODE4
    cache = NodeCache(3 * node_size(NODE4))
    views = {}
    for i in range(5):
        view = NodeView(Header(0, NODE4, 1, i, 0), (0, 0, 0, 0))
        views[i] = view
        cache.put(i, view)
    assert cache.bytes <= cache.budget_bytes
    assert len(cache) == 3
    assert cache.get(0) is None  # evicted (LRU)
    assert cache.get(4) is views[4]
    cache.drop(4)
    assert cache.get(4) is None
    assert cache.evictions == 2
    stats = cache.stats()
    assert stats["entries"] == 2


def test_node_cache_oversized_item_skipped():
    from repro.art.layout import Header, NodeView, NODE256
    cache = NodeCache(100)
    view = NodeView(Header(0, NODE256, 1, 0, 0), tuple([0] * 256))
    cache.put(1, view)
    assert len(cache) == 0


def test_art_dm_no_cn_cache():
    cluster = fresh_cluster()
    index = ArtDmIndex(cluster)
    assert index.client(0).cn_cache_bytes() == 0
