"""Unit tests for crash recovery (ISSUE 5).

Covers the lease protocol's edges (expiry exactly at the deadline,
reclaim racing the owner's own late unlock, a crash that orphans no
locks), the ``crash_cn``/``crash_mn`` executor semantics, the
RetryPolicy op-deadline clamp, the fsck CLI exit codes, and the YCSB
runner's crash accounting.  The end-to-end recovery oracle lives in
``test_recovery_properties.py``.
"""

import io
import contextlib

import pytest

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.memory import make_addr
from repro.dm.rdma import CasOp, OpStats, ReadOp, WriteOp
from repro.errors import ClientCrash, InjectedFault, MNUnavailable, \
    RetryLimitExceeded
from repro.fault import FaultPlan, RetryPolicy, crash_cn, crash_mn, drop
from repro.recover import RecoveryConfig, RecoveryManager
from repro.tools import fsck
from repro.util.bits import u64_from_bytes, u64_to_bytes
from repro.ycsb import WorkloadSpec, bulk_load, make_dataset, run_workload

# An arbitrary-but-valid node lock word pair: status bits 0-1 go
# Idle(0) -> Locked(1); everything above survives the transition.
_IDLE_WORD = 0xABCD_EF12_3456_7800
_LOCKED_WORD = _IDLE_WORD | 0x1


def _small_sphinx(num_keys=24):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"r/{i:03d}") for i in range(num_keys)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return cluster, index, client, keys


def _acquire(executor, addr):
    """Install the idle word, then take the lock via a lease-tagged CAS
    (the same shape ``try_lock_node`` issues)."""
    def ops():
        yield WriteOp(addr, u64_to_bytes(_IDLE_WORD))
        swapped, _old = yield CasOp(addr, _IDLE_WORD, _LOCKED_WORD,
                                    lease=("node",))
        assert swapped
    executor.run(ops())


def _word(executor, addr):
    def ops():
        data = yield ReadOp(addr, 8)
        return u64_from_bytes(data)
    return executor.run(ops())


# ---------------------------------------------------------------------------
# Lease table and expiry edges
# ---------------------------------------------------------------------------

def test_lock_verbs_feed_the_lease_table_and_drain_it():
    cluster, _index, client, _keys = _small_sphinx(8)
    manager = cluster.attach_recovery()
    ex = cluster.direct_executor()  # built after attach: carries the hook
    for i in range(16):
        ex.run(client.insert(encode_str(f"fresh/{i:03d}"), f"w{i}".encode()))
    assert manager.lease_table.acquired > 0, "no lock CAS was lease-tagged"
    assert len(manager.lease_table) == 0, \
        "a healthy run must release every lease it acquires"


def test_lease_expires_exactly_at_deadline_not_one_tick_before():
    cluster = Cluster(ClusterConfig())
    manager = cluster.attach_recovery()
    lease_ns = manager.config.lease_ns
    verb = CasOp(0x1234, _IDLE_WORD, _LOCKED_WORD, lease=("node",))
    manager.lease_table.on_verb("cn0", verb, (True, _IDLE_WORD), now=1_000)
    assert manager.expired_leases(now=1_000 + lease_ns - 1) == []
    expired = manager.expired_leases(now=1_000 + lease_ns)
    assert [lease.addr for lease in expired] == [0x1234]


def test_losing_acquire_cas_records_no_lease():
    cluster = Cluster(ClusterConfig())
    manager = cluster.attach_recovery()
    verb = CasOp(0x1234, _IDLE_WORD, _LOCKED_WORD, lease=("node",))
    manager.lease_table.on_verb("cn0", verb, (False, _LOCKED_WORD), now=5)
    assert len(manager.lease_table) == 0


def test_reclaim_wins_race_then_owner_late_unlock_cas_loses():
    """Recovery reclaims first; the owner's own (late) unlock CAS must
    then fail - the CAS-expected discipline lets exactly one win."""
    cluster = Cluster(ClusterConfig())
    manager = cluster.attach_recovery()
    ex = cluster.direct_executor()
    addr = cluster.alloc(0, 64)
    _acquire(ex, addr)
    (lease,) = manager.lease_table.records()
    manager.declare_dead(lease.owner)
    report = manager.recover()
    assert report.reclaimed == 1
    assert _word(ex, addr) == _IDLE_WORD
    assert len(manager.lease_table) == 0

    def late_unlock():
        swapped, old = yield CasOp(addr, _LOCKED_WORD, _IDLE_WORD,
                                   lease=("release",))
        return swapped, old
    swapped, old = ex.run(late_unlock())
    assert not swapped and old == _IDLE_WORD


def test_owner_unlock_wins_race_then_reclaim_stands_down():
    """The owner's unlock lands first (but its lease notification was
    lost with the crash): recovery re-reads, sees the word moved, and
    drops the lease without writing anything."""
    cluster = Cluster(ClusterConfig())
    manager = cluster.attach_recovery()
    ex = cluster.direct_executor()
    addr = cluster.alloc(0, 64)
    _acquire(ex, addr)
    (lease,) = manager.lease_table.records()

    def untracked_unlock():  # no lease tag: the release the table missed
        swapped, _old = yield CasOp(addr, _LOCKED_WORD, _IDLE_WORD)
        assert swapped
    ex.run(untracked_unlock())
    manager.declare_dead(lease.owner)
    report = manager.recover()
    assert report.reclaimed == 0 and report.released == 1
    assert _word(ex, addr) == _IDLE_WORD
    assert len(manager.lease_table) == 0


def test_crash_cn_holding_zero_locks_needs_no_reclamation():
    cluster, index, client, keys = _small_sphinx()
    manager = cluster.attach_recovery()
    # Searches take no locks; the victim dies holding nothing.
    cluster.attach_faults(FaultPlan(rules=(crash_cn(5),), seed=1))
    victim = cluster.direct_executor()
    with pytest.raises(ClientCrash):
        for key in keys:
            victim.run(client.search(key))
    assert len(manager.lease_table) == 0
    report = manager.recover(index=index)
    assert report.reclaimed == 0 and report.raced == 0
    assert report.fsck is not None and report.fsck.clean
    survivor = cluster.direct_executor()
    for i, key in enumerate(keys):
        assert survivor.run(client.search(key)) == f"v{i}".encode()


# ---------------------------------------------------------------------------
# crash_cn / crash_mn executor semantics
# ---------------------------------------------------------------------------

def test_crash_cn_latches_the_executor():
    cluster, _index, client, keys = _small_sphinx(4)
    cluster.attach_faults(FaultPlan(rules=(crash_cn(0),), seed=2))
    ex = cluster.direct_executor()
    with pytest.raises(ClientCrash):
        ex.run(client.search(keys[0]))
    seq_after = cluster.injector.verb_seq
    with pytest.raises(ClientCrash):
        ex.run(client.search(keys[1]))
    assert cluster.injector.verb_seq == seq_after, \
        "a crashed executor must issue no further verbs"
    assert ex.client_id in cluster.injector.crashed_clients


def test_crash_mn_fails_fast_with_typed_error():
    cluster = Cluster(ClusterConfig())
    cluster.attach_faults(FaultPlan(rules=(crash_mn(1, at_verb=0),), seed=3))
    ex = cluster.direct_executor()

    def read(addr):
        yield ReadOp(addr, 8)
    # The verb that trips the scheduled rule still completes (the crash
    # lands between verbs); every later verb to MN 1 fails fast.
    ex.run(read(make_addr(0, 128)))
    with pytest.raises(MNUnavailable) as exc_info:
        ex.run(read(make_addr(1, 128)))
    assert exc_info.value.mn == 1
    assert not isinstance(exc_info.value, InjectedFault), \
        "MNUnavailable must not look retryable"
    assert cluster.injector.counters.get("mn_unavailable") == 1


def test_ycsb_crash_accounting():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    dataset = make_dataset("u64", 400, seed=1, insert_pool=40)
    bulk_load(cluster, index, dataset)
    cluster.attach_recovery()
    cluster.attach_faults(FaultPlan(rules=(crash_cn(40),), seed=4))
    spec = WorkloadSpec("mix", read=0.5, update=0.5)
    result = run_workload(cluster, index, spec, dataset, system="Sphinx",
                          workers=6, ops=300, seed=0)
    assert result.crashed_workers == 1
    # The victim's unfinished ops are charged against goodput.
    assert result.failed_ops > 0
    assert result.goodput_mops < result.throughput_mops
    assert "crashed_workers" not in result.row(), \
        "row() must stay byte-compatible with pre-recovery baselines"


# ---------------------------------------------------------------------------
# RetryPolicy deadline clamp (satellite 1)
# ---------------------------------------------------------------------------

def test_op_timeout_deadline_clamps_final_backoff():
    """With a backoff far larger than the op deadline, a timing-out op
    must fail *at* the deadline - not one full (unclamped) backoff past
    it."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    retry = RetryPolicy(max_retries=64, backoff_ns=1_000_000,
                        op_timeout_ns=50_000)
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14,
                                              retry=retry))
    client = index.client(0)
    loader = cluster.direct_executor()
    key = encode_str("clamp/key")
    loader.run(client.insert(key, b"val"))
    cluster.attach_faults(FaultPlan(rules=(drop(1.0, ("read",)),), seed=5))
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine
    start = engine.now

    def op():
        try:
            yield from executor.run(client.search(key))
        except RetryLimitExceeded:
            return engine.now
        raise AssertionError("search under total read loss must time out")

    finished = engine.run_until_complete(
        engine.process(op(), name="clamp"), limit=start + 60_000_000_000)
    elapsed = finished - start
    assert elapsed >= retry.op_timeout_ns
    # An unclamped jittered backoff would sleep >= backoff_ns/2 = 500 us
    # past the deadline; the clamp keeps the overshoot to at most one
    # in-flight attempt (~tens of us).
    assert elapsed <= retry.op_timeout_ns + 100_000, \
        f"timed out {elapsed - retry.op_timeout_ns} ns past the deadline"


# ---------------------------------------------------------------------------
# fsck CLI exit codes (satellite 2)
# ---------------------------------------------------------------------------

def _fsck_main(args):
    with contextlib.redirect_stdout(io.StringIO()):
        return fsck.main(args)


def test_fsck_cli_exit_clean():
    assert _fsck_main(["--keys", "200"]) == fsck.EXIT_CLEAN


def test_fsck_cli_exit_unrepairable_without_recovery():
    # seed 7 / verb 350: the victim dies holding a node lock.  Without
    # --recover the orphan lock is beyond fsck's power: exit 2.
    args = ["--keys", "300", "--seed", "7", "--crash-verb", "350"]
    assert _fsck_main(args) == fsck.EXIT_UNREPAIRABLE
    assert _fsck_main(args + ["--dry-run"]) == fsck.EXIT_UNREPAIRABLE


def test_fsck_cli_exit_repaired_with_recovery():
    args = ["--keys", "300", "--seed", "7", "--crash-verb", "350",
            "--recover", "--repair"]
    assert _fsck_main(args) == fsck.EXIT_REPAIRED


# ---------------------------------------------------------------------------
# Config validation and counters
# ---------------------------------------------------------------------------

def test_recovery_config_validates():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        RecoveryManager(Cluster(ClusterConfig()),
                        RecoveryConfig(lease_ns=-1))


def test_recovery_counters_shape():
    cluster = Cluster(ClusterConfig())
    manager = cluster.attach_recovery()
    verb = CasOp(0x88, _IDLE_WORD, _LOCKED_WORD, lease=("node",))
    manager.lease_table.on_verb("cn0", verb, (True, _IDLE_WORD), now=0)
    counters = manager.counters()
    assert counters["leases_live"] == 1
    assert counters["leases_acquired"] == 1
    assert counters["recoveries"] == 0
