"""Model-based correctness tests for the Sphinx index (both locate modes,
filter-pressure and false-positive paths included)."""

import random

import pytest

from repro.art import LocalART, encode_str, encode_u64
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig


def fresh(config=None):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, config or SphinxConfig(
        filter_budget_bytes=1 << 15, table_initial_depth=1))
    return cluster, index


def u64_keys(n, seed=0):
    rng = random.Random(seed)
    return [encode_u64(rng.getrandbits(64)) for _ in range(n)]


def email_keys(n, seed=0):
    rng = random.Random(seed)
    out = set()
    while len(out) < n:
        out.add(f"user{rng.randrange(4 * n)}@d{rng.randrange(9)}.com")
    return [encode_str(e) for e in out]


@pytest.mark.parametrize("use_filter", [True, False])
@pytest.mark.parametrize("keyset", ["u64", "email"])
def test_insert_search_model(use_filter, keyset):
    cluster, index = fresh(SphinxConfig(filter_budget_bytes=1 << 15,
                                        use_filter=use_filter))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = u64_keys(1_500) if keyset == "u64" else email_keys(1_500)
    model = {}
    for i, key in enumerate(keys):
        value = f"v{i}".encode()
        assert ex.run(client.insert(key, value)) == (key not in model)
        model[key] = value
    for key, value in model.items():
        assert ex.run(client.search(key)) == value
    rng = random.Random(1)
    for _ in range(300):
        probe = encode_u64(rng.getrandbits(64)) if keyset == "u64" \
            else encode_str(f"nouser{rng.randrange(10**6)}@x.org")
        if probe not in model:
            assert ex.run(client.search(probe)) is None


def test_mixed_ops_against_local_art_model():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    oracle = LocalART()
    rng = random.Random(7)
    pool = u64_keys(400, seed=2)
    for step in range(3_000):
        key = rng.choice(pool)
        op = rng.random()
        if op < 0.4:
            value = f"s{step}".encode()
            remote_new = ex.run(client.insert(key, value))
            local_new = oracle.insert(key, value)
            assert remote_new == local_new, step
        elif op < 0.6:
            value = f"u{step}".encode()
            assert ex.run(client.update(key, value)) == \
                (oracle.search(key) is not None)
            if key in oracle:
                oracle.insert(key, value)
        elif op < 0.8:
            assert ex.run(client.delete(key)) == oracle.delete(key)
        else:
            assert ex.run(client.search(key)) == oracle.search(key)
    # Full sweep at the end.
    for key in pool:
        assert ex.run(client.search(key)) == oracle.search(key)


def test_scan_matches_model():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    oracle = LocalART()
    for i, key in enumerate(email_keys(1_200, seed=3)):
        ex.run(client.insert(key, f"v{i}".encode()))
        oracle.insert(key, f"v{i}".encode())
    rng = random.Random(4)
    starts = [k for k, _ in oracle.items()][:: max(1, len(oracle) // 20)]
    for start in starts:
        count = rng.randint(1, 80)
        got = ex.run(client.scan_count(start, count))
        assert got == oracle.scan_count(start, count)
    # Range scans too.
    keys_sorted = [k for k, _ in oracle.items()]
    lo, hi = keys_sorted[5], keys_sorted[400]
    assert ex.run(client.scan_range(lo, hi)) == oracle.scan(lo, hi)


def test_tiny_filter_under_eviction_pressure_still_correct():
    config = SphinxConfig(filter_budget_bytes=64)  # pathologically small
    cluster, index = fresh(config)
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = email_keys(800, seed=5)
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    assert client.filter.evictions > 0
    for i, key in enumerate(keys):
        assert ex.run(client.search(key)) == f"v{i}".encode()


def test_search_round_trips_three_in_common_case():
    cluster, index = fresh(SphinxConfig(filter_budget_bytes=1 << 18))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = u64_keys(4_000, seed=6)
    for i, key in enumerate(keys):
        ex.run(client.insert(key, b"x" * 64))
    from repro.dm.rdma import OpStats
    stats = OpStats()
    ex2 = cluster.direct_executor(stats)
    for key in keys[:500]:
        ex2.run(client.search(key))
    per_op = stats.round_trips / 500
    assert per_op < 3.5, per_op  # paper: 3 RTTs in most cases


def test_second_cn_filter_heals_through_traversal():
    """A CN that never inserted anything starts with an empty filter; the
    freshness rule must populate it as it searches."""
    cluster, index = fresh()
    writer = index.client(0)
    reader = index.client(1)
    ex = cluster.direct_executor()
    keys = email_keys(600, seed=8)
    for i, key in enumerate(keys):
        ex.run(writer.insert(key, f"v{i}".encode()))
    assert reader.filter.count == 0
    for i, key in enumerate(keys):
        assert ex.run(reader.search(key)) == f"v{i}".encode()
    assert reader.filter.count > 0
    assert reader.metrics.stale_filter_fills > 0
    # Second pass is now cheaper (filter warm): count round trips.
    from repro.dm.rdma import OpStats
    s1 = OpStats()
    ex1 = cluster.direct_executor(s1)
    for key in keys[:200]:
        ex1.run(reader.search(key))
    assert s1.round_trips / 200 < 4.0


def test_values_of_various_sizes_roundtrip():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    rng = random.Random(11)
    model = {}
    for i in range(200):
        key = encode_u64(rng.getrandbits(64))
        value = bytes(rng.randrange(256) for _ in range(rng.choice(
            [0, 1, 8, 64, 200, 1000])))
        ex.run(client.insert(key, value))
        model[key] = value
    for key, value in model.items():
        assert ex.run(client.search(key)) == value


def test_update_grows_value_out_of_place():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    key = encode_u64(42)
    ex.run(client.insert(key, b"small"))
    big = b"B" * 500  # exceeds the original leaf's units
    assert ex.run(client.update(key, big))
    assert ex.run(client.search(key)) == big
    # And back down, in place.
    assert ex.run(client.update(key, b"tiny"))
    assert ex.run(client.search(key)) == b"tiny"


def test_update_absent_returns_false():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    ex.run(client.insert(encode_u64(1), b"v"))
    assert not ex.run(client.update(encode_u64(2), b"w"))


def test_delete_then_reinsert():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = u64_keys(300, seed=12)
    for key in keys:
        ex.run(client.insert(key, b"1"))
    for key in keys:
        assert ex.run(client.delete(key))
        assert not ex.run(client.delete(key))
    for key in keys:
        assert ex.run(client.search(key)) is None
    for key in keys:
        assert ex.run(client.insert(key, b"2"))
        assert ex.run(client.search(key)) == b"2"


def test_inht_bytes_small_relative_to_tree():
    cluster, index = fresh()
    client = index.client(0)
    ex = cluster.direct_executor()
    for i, key in enumerate(u64_keys(5_000, seed=13)):
        ex.run(client.insert(key, b"v" * 64))
    by_cat = cluster.mn_bytes_by_category()
    tree_bytes = by_cat["inner"] + by_cat["leaf"]
    # Hash table is small (paper: 3.3-4.9%); directory preallocation
    # dominates at this scale, so allow a loose bound.
    assert index.inht_bytes() < 0.5 * tree_bytes


def test_cn_cache_budget_respected():
    config = SphinxConfig(filter_budget_bytes=1 << 14)
    cluster, index = fresh(config)
    client = index.client(0)
    ex = cluster.direct_executor()
    for i, key in enumerate(u64_keys(2_000, seed=14)):
        ex.run(client.insert(key, b"v"))
    assert client.filter.size_bytes() <= config.filter_budget_bytes
    # Directory caches stay a small add-on (paper: 2-5% of the filter).
    assert client.inht.directory_cache_bytes() < \
        0.25 * config.filter_budget_bytes
