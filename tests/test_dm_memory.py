"""Unit tests for MN memory: addressing, allocation, atomic ops."""

import pytest

from repro.dm.memory import (
    NULL_ADDR,
    Memory,
    addr_mn,
    addr_offset,
    format_addr,
    make_addr,
)
from repro.errors import BadAddress, OutOfMemory


def test_addr_pack_roundtrip():
    addr = make_addr(5, 0x12345)
    assert addr_mn(addr) == 5
    assert addr_offset(addr) == 0x12345


def test_addr_null_is_zero():
    assert make_addr(0, 0) == NULL_ADDR


def test_addr_bounds_checked():
    with pytest.raises(BadAddress):
        make_addr(256, 0)
    with pytest.raises(BadAddress):
        make_addr(0, 1 << 40)
    with pytest.raises(BadAddress):
        make_addr(-1, 0)


def test_format_addr():
    assert format_addr(NULL_ADDR) == "NULL"
    assert format_addr(make_addr(2, 0x40)) == "mn2+0x40"


def test_alloc_reserves_null_page():
    mem = Memory(0, 1 << 16)
    assert mem.alloc(8) >= 64


def test_alloc_free_reuses_block():
    mem = Memory(0, 1 << 16)
    a = mem.alloc(128, "x")
    mem.write(a, b"junk" + bytes(124))
    mem.free(a, 128, "x")
    b = mem.alloc(128, "x")
    assert b == a
    assert mem.read(b, 4) == bytes(4)  # zeroed on reuse


def test_alloc_category_accounting():
    mem = Memory(0, 1 << 16)
    mem.alloc(100, "leaf")
    mem.alloc(50, "inner")
    a = mem.alloc(30, "leaf")
    mem.free(a, 30, "leaf")
    assert mem.allocated_by_category["leaf"] == 100
    assert mem.allocated_by_category["inner"] == 50
    assert mem.allocated_bytes() == 150
    assert mem.footprint_bytes() >= 150 + 64


def test_out_of_memory():
    mem = Memory(0, 1 << 10)
    with pytest.raises(OutOfMemory):
        mem.alloc(1 << 11)


def test_alloc_rejects_nonpositive():
    mem = Memory(0, 1 << 10)
    with pytest.raises(ValueError):
        mem.alloc(0)


def test_read_write_roundtrip():
    mem = Memory(0, 1 << 12)
    off = mem.alloc(64)
    mem.write(off, b"hello world")
    assert mem.read(off, 11) == b"hello world"


def test_bounds_checks():
    mem = Memory(0, 1 << 12)
    with pytest.raises(BadAddress):
        mem.read(0, 8)  # reserved NULL page
    with pytest.raises(BadAddress):
        mem.read(1 << 12, 8)
    with pytest.raises(BadAddress):
        mem.write((1 << 12) - 4, b"too long")


def test_u64_roundtrip():
    mem = Memory(0, 1 << 12)
    off = mem.alloc(8)
    mem.write_u64(off, 0xDEADBEEFCAFEBABE)
    assert mem.read_u64(off) == 0xDEADBEEFCAFEBABE


def test_cas_success_and_failure():
    mem = Memory(0, 1 << 12)
    off = mem.alloc(8)
    mem.write_u64(off, 10)
    ok, old = mem.cas_u64(off, 10, 20)
    assert ok and old == 10
    assert mem.read_u64(off) == 20
    ok, old = mem.cas_u64(off, 10, 30)
    assert not ok and old == 20
    assert mem.read_u64(off) == 20


def test_faa_wraps_and_returns_old():
    mem = Memory(0, 1 << 12)
    off = mem.alloc(8)
    mem.write_u64(off, (1 << 64) - 1)
    old = mem.faa_u64(off, 2)
    assert old == (1 << 64) - 1
    assert mem.read_u64(off) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        Memory(0, 64)


# -- freed-region registry (double free / use-after-free) -----------------

def test_double_free_raises():
    from repro.errors import DoubleFree
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.free(offset, 64)
    with pytest.raises(DoubleFree, match="already-freed"):
        memory.free(offset, 64)


def test_overlapping_free_raises():
    from repro.errors import DoubleFree
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.free(offset, 64)
    with pytest.raises(DoubleFree):
        memory.free(offset + 8, 16)   # inside the freed block


def test_free_after_retire_raises():
    from repro.errors import DoubleFree
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.retire(offset, 64)
    with pytest.raises(DoubleFree, match="retired"):
        memory.free(offset, 64)


def test_uaf_flag_policy_counts_hits():
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.free(offset, 64)
    assert memory.uaf_hits == 0
    memory.read(offset, 8)
    memory.write(offset + 8, b"x" * 8)
    assert memory.uaf_hits == 2
    assert any("freed block" in s for s in memory.uaf_samples)


def test_uaf_raise_policy():
    from repro.errors import UseAfterFree
    memory = Memory(0, 1 << 20)
    memory.uaf_policy = "raise"
    offset = memory.alloc(64)
    memory.free(offset, 64)
    with pytest.raises(UseAfterFree, match="freed block"):
        memory.read_u64(offset)


def test_uaf_cleared_by_realloc():
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.free(offset, 64)
    again = memory.alloc(64)
    assert again == offset            # recycled
    memory.read(again, 64)            # fresh block: no flag
    assert memory.uaf_hits == 0


def test_retired_block_stays_readable():
    # Retire models epoch-based reclamation: stale readers stay safe.
    memory = Memory(0, 1 << 20)
    offset = memory.alloc(64)
    memory.write(offset, b"a" * 64)
    memory.retire(offset, 64)
    assert memory.read(offset, 64) == b"a" * 64
    assert memory.uaf_hits == 0
