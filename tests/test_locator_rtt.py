"""RTT accounting for the locator fast path and the Outback directory
(ISSUE 8 acceptance).

The whole point of the locator tier is the round-trip count, so these
tests pin it down instead of trusting throughput numbers:

* a locator hit answers a point read in exactly ONE round trip (one
  READ verb, visible both in :class:`OpStats` and in the attached
  tracer's per-op spans/VerbEvents);
* an Outback directory hit is likewise exactly one READ; a directory
  miss is zero round trips (the CN-resident directory is authoritative
  for absence);
* a stale locator entry costs extra round trips but still returns the
  correct value (the fallback ladder: fence-check fail -> drop ->
  INHT path);
* attaching a tracer to a locator-enabled run changes nothing simulated
  (bit-identical results, op stats, and final clock).
"""

import random

from repro.art import encode_str
from repro.baselines import OutbackIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats

N_KEYS = 64


def _load_sphinx_loc():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(
        filter_budget_bytes=1 << 14, use_locator=True,
        locator_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"k/{i:03d}") for i in range(N_KEYS)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return cluster, index, client, keys


def _load_outback():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = OutbackIndex(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"k/{i:03d}") for i in range(N_KEYS)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return cluster, index, client, keys


# ---------------------------------------------------------------------------
# Exactly one round trip on a hit
# ---------------------------------------------------------------------------

def test_locator_hit_is_exactly_one_round_trip():
    """Inserts note the leaf, so every loaded key is already a locator
    hit: each search must cost exactly one round trip."""
    cluster, _index, client, keys = _load_sphinx_loc()
    stats = OpStats()
    ex = cluster.direct_executor(stats)
    hits_before = client.locator.stats()["locator_hits"]
    for i, key in enumerate(keys):
        before = stats.round_trips
        assert ex.run(client.search(key)) == f"v{i}".encode()
        assert stats.round_trips - before == 1, (
            f"locator hit on {key!r} took "
            f"{stats.round_trips - before} RTTs")
    assert client.locator.stats()["locator_hits"] - hits_before == N_KEYS
    assert client.locator_fallbacks == 0


def test_outback_hit_is_one_rtt_and_miss_is_zero():
    cluster, _index, client, keys = _load_outback()
    stats = OpStats()
    ex = cluster.direct_executor(stats)
    for i, key in enumerate(keys):
        before = stats.round_trips
        assert ex.run(client.search(key)) == f"v{i}".encode()
        assert stats.round_trips - before == 1
    # Directory miss: the CN-resident directory answers absence locally.
    before = stats.round_trips
    assert ex.run(client.search(b"zz/absent")) is None
    assert stats.round_trips == before


def test_locator_spans_show_single_read_verb():
    """The attached tracer sees the same thing OpStats counts: one span
    per search, one READ VerbEvent inside it."""
    cluster, _index, client, keys = _load_sphinx_loc()
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0)
    engine = cluster.engine

    def driver():
        for i, key in enumerate(keys[:16]):
            got = yield from executor.run(client.search(key))
            assert got == f"v{i}".encode()

    engine.run_until_complete(engine.process(driver(), name="drv"))
    spans = [s for s in tracer.spans if s.name == "search"]
    assert len(spans) == 16
    for span in spans:
        assert span.round_trips == 1, span
        assert [v.kind for v in span.verbs] == ["read"], span.verbs
        assert span.status == "ok"


def test_outback_spans_show_single_read_verb():
    cluster, _index, client, keys = _load_outback()
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0)
    engine = cluster.engine

    def driver():
        for i, key in enumerate(keys[:16]):
            got = yield from executor.run(client.search(key))
            assert got == f"v{i}".encode()

    engine.run_until_complete(engine.process(driver(), name="drv"))
    spans = [s for s in tracer.spans if s.name == "search"]
    assert len(spans) == 16
    for span in spans:
        assert span.round_trips == 1, span
        assert [v.kind for v in span.verbs] == ["read"], span.verbs


# ---------------------------------------------------------------------------
# Fallback ladder: stale entries cost extra RTTs, never wrong answers
# ---------------------------------------------------------------------------

def test_stale_locator_entry_falls_back_with_extra_rtts():
    """Poison key 0's locator entry with key 1's leaf ref: the fence
    check (key mismatch on a checksum-clean leaf) must drop the entry
    and fall back to the INHT - correct answer, more round trips."""
    cluster, _index, client, keys = _load_sphinx_loc()
    wrong = client.locator.get(keys[1])
    assert wrong is not None
    client.locator.put(keys[0], *wrong)
    stats = OpStats()
    ex = cluster.direct_executor(stats)
    before = stats.round_trips
    assert ex.run(client.search(keys[0])) == b"v0"
    extra = stats.round_trips - before
    assert extra > 1, f"fallback path recorded only {extra} RTTs"
    assert client.locator_fallbacks == 1
    # The provably-stale ref was dropped and re-noted by the fallback
    # search's INHT hit, so the next search is a 1-RTT hit again.
    fixed = client.locator.get(keys[0])
    assert fixed is not None and fixed != wrong
    before = stats.round_trips
    assert ex.run(client.search(keys[0])) == b"v0"
    assert stats.round_trips - before == 1


def test_deleted_key_does_not_linger_in_locator():
    cluster, _index, client, keys = _load_sphinx_loc()
    ex = cluster.direct_executor()
    assert ex.run(client.delete(keys[3]))
    assert client.locator.get(keys[3]) is None
    assert ex.run(client.search(keys[3])) is None


# ---------------------------------------------------------------------------
# Attached tracer stays schedule-invariant with the locator on
# ---------------------------------------------------------------------------

def _sim_run(attach_tracer):
    cluster, _index, client, keys = _load_sphinx_loc()
    if attach_tracer:
        cluster.attach_tracer()
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine
    rng = random.Random(90210)
    results = []

    def mix():
        for step in range(120):
            key = keys[rng.randrange(len(keys))]
            dice = rng.random()
            if dice < 0.55:
                got = yield from executor.run(client.search(key))
            elif dice < 0.80:
                got = yield from executor.run(
                    client.update(key, f"w{step}".encode()))
            else:
                got = yield from executor.run(client.delete(key))
            results.append(got)

    engine.run_until_complete(engine.process(mix(), name="drv"))
    return results, stats, engine.now


def test_tracer_attach_is_schedule_invariant_with_locator():
    """DESIGN.md §8's contract extended to the locator fast path: the
    tracer observes, never participates - results, op stats, and the
    simulated clock are bit-identical with and without it."""
    detached = _sim_run(attach_tracer=False)
    attached = _sim_run(attach_tracer=True)
    assert attached[0] == detached[0], "results diverged under tracing"
    assert attached[1] == detached[1], "op stats diverged under tracing"
    assert attached[2] == detached[2], "clocks diverged under tracing"
