"""Determinism and fast/slow-path equivalence of the benchmark grid.

The engine's zero-delay FIFO fast path and the harness's snapshot-restore
grid are performance features: they must not change a single simulated
digit.  These tests pin that down:

* identical ``RunResult.row()`` (and raw latency samples) across repeated
  runs of one cell at a fixed seed;
* identical rows between the fast engine and the reference heap-only
  engine (``REPRO_SIM_SLOW=1``);
* identical rows between a serial grid and a forked parallel grid;
* validated ``REPRO_BENCH_*`` environment overrides (ConfigError naming
  the variable, never a bare ValueError).
"""

import json
import os
import subprocess
import sys

import pytest

import repro

from repro.bench import CellSpec, clear_setup_caches, run_cell, run_grid
from repro.bench.harness import _env_int
from repro.bench.perftrack import PerfTracker, compare
from repro.errors import ConfigError

TINY = dict(num_keys=900, ops=120, workers=6, warmup_ops_per_cn=60)

CELLS = [
    CellSpec(system="Sphinx", dataset="u64", workload="LOAD", **TINY),
    CellSpec(system="Sphinx", dataset="u64", workload="A", **TINY),
    CellSpec(system="ART", dataset="u64", workload="C", **TINY),
]


@pytest.fixture(autouse=True)
def _fresh_snapshots():
    clear_setup_caches()
    yield
    clear_setup_caches()


# -- determinism -----------------------------------------------------------

def test_run_cell_bit_identical_across_repeats():
    first = run_cell(CELLS[1])
    second = run_cell(CELLS[1])
    assert first.row() == second.row()
    assert first.sim_ns == second.sim_ns
    assert first.latency.samples == second.latency.samples
    assert first.op_stats.round_trips == second.op_stats.round_trips
    assert first.op_stats.messages == second.op_stats.messages


def test_run_cell_independent_of_prior_cells():
    """A cell's result must not depend on which cells ran before it."""
    alone = run_cell(CELLS[2])
    clear_setup_caches()
    for cell in CELLS[:2]:
        run_cell(cell)
    after_others = run_cell(CELLS[2])
    assert alone.row() == after_others.row()
    assert alone.latency.samples == after_others.latency.samples


def test_seed_changes_results():
    base = run_cell(CELLS[1])
    reseeded = run_cell(CellSpec(system="Sphinx", dataset="u64",
                                 workload="A", seed=7, **TINY))
    assert base.latency.samples != reseeded.latency.samples


# -- fast engine vs reference heap engine ---------------------------------

def test_fast_engine_matches_slow_reference(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SLOW", raising=False)
    fast = [r.row() for r in run_grid(CELLS)]
    fast_samples = None
    clear_setup_caches()
    monkeypatch.setenv("REPRO_SIM_SLOW", "1")
    slow_results = run_grid(CELLS)
    slow = [r.row() for r in slow_results]
    assert fast == slow
    # Spot-check beyond the row summary: the full latency distribution.
    clear_setup_caches()
    monkeypatch.delenv("REPRO_SIM_SLOW")
    fast_samples = run_cell(CELLS[0]).latency.samples
    clear_setup_caches()
    monkeypatch.setenv("REPRO_SIM_SLOW", "1")
    assert run_cell(CELLS[0]).latency.samples == fast_samples


# -- serial vs parallel grid ----------------------------------------------

def test_serial_and_parallel_grids_identical():
    serial = run_grid(CELLS, parallel=0)
    parallel = run_grid(CELLS, parallel=2)
    assert [r.row() for r in serial] == [r.row() for r in parallel]
    for s, p in zip(serial, parallel):
        assert s.latency.samples == p.latency.samples
        assert s.perf is not None and p.perf is not None


def test_datasets_identical_across_processes():
    """Dataset construction must not depend on PYTHONHASHSEED.

    ``make_email_dataset`` collects unique keys in a str set; iterating
    that set follows the per-process hash seed, so without the explicit
    sort every process would build a differently-ordered dataset (and
    thus different trees and different measured numbers).  Run the same
    tiny build under three hash seeds and demand one unique digest.
    """
    script = (
        "import hashlib\n"
        "from repro.ycsb.datasets import make_dataset\n"
        "for name in ('u64', 'email'):\n"
        "    d = make_dataset(name, 400, seed=2, insert_pool=100)\n"
        "    h = hashlib.sha256(b''.join(d.keys + d.insert_pool))\n"
        "    print(name, h.hexdigest())\n"
    )
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = set()
    for hash_seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src_dir)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        outputs.add(proc.stdout)
    assert len(outputs) == 1, f"hash-seed-dependent datasets: {outputs}"


# -- environment override validation --------------------------------------

def test_env_int_accepts_valid_values(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_KEYS", "15000")
    assert _env_int("REPRO_BENCH_KEYS", 60_000) == 15_000
    monkeypatch.delenv("REPRO_BENCH_KEYS")
    assert _env_int("REPRO_BENCH_KEYS", 60_000) == 60_000
    monkeypatch.setenv("REPRO_BENCH_KEYS", "  ")
    assert _env_int("REPRO_BENCH_KEYS", 60_000) == 60_000


@pytest.mark.parametrize("name", ["REPRO_BENCH_KEYS", "REPRO_BENCH_OPS",
                                  "REPRO_BENCH_WORKERS"])
def test_env_int_rejects_garbage(monkeypatch, name):
    monkeypatch.setenv(name, "lots")
    with pytest.raises(ConfigError, match=name):
        _env_int(name, 100)


def test_env_int_rejects_out_of_range(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
    with pytest.raises(ConfigError, match="REPRO_BENCH_WORKERS"):
        _env_int("REPRO_BENCH_WORKERS", 192)
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "-2")
    with pytest.raises(ConfigError, match="REPRO_BENCH_PARALLEL"):
        _env_int("REPRO_BENCH_PARALLEL", 0, minimum=0)


# -- perftrack -------------------------------------------------------------

def test_perf_records_and_report(tmp_path):
    tracker = PerfTracker()
    result = run_cell(CELLS[1])
    tracker.add(result)
    report = tracker.report()
    assert report["schema"] == "BENCH_2"
    assert len(report["cells"]) == 1
    cell = report["cells"][0]
    assert cell["system"] == "Sphinx" and cell["workload"] == "A"
    assert cell["wall_s"] > 0 and cell["events"] > 0
    assert cell["sim_ns"] == result.sim_ns
    path = tmp_path / "BENCH_2.json"
    tracker.write(str(path))
    assert json.loads(path.read_text())["total_wall_s"] == \
        report["total_wall_s"]


def _report(wall_by_cell):
    cells = [{"system": s, "dataset": "u64", "workload": w, "workers": 6,
              "ops": 120, "wall_s": wall, "events": 1000}
             for (s, w), wall in wall_by_cell.items()]
    return {"schema": "BENCH_2",
            "total_wall_s": round(sum(c["wall_s"] for c in cells), 3),
            "cells": cells}


def test_compare_flags_total_regression():
    base = _report({("Sphinx", "A"): 1.0, ("ART", "C"): 1.0})
    same = _report({("Sphinx", "A"): 1.05, ("ART", "C"): 1.0})
    messages, failed = compare(same, base, threshold=0.2)
    assert not failed
    regressed = _report({("Sphinx", "A"): 2.0, ("ART", "C"): 1.0})
    messages, failed = compare(regressed, base, threshold=0.2)
    assert failed
    assert any("Sphinx/u64/A" in m for m in messages)


def test_compare_tolerates_new_cells():
    base = _report({("Sphinx", "A"): 1.0})
    cur = _report({("Sphinx", "A"): 1.0, ("ART", "C"): 9.0})
    # New cells have no baseline: reported in the total, never per-cell.
    messages, failed = compare(cur, base, threshold=0.2)
    assert failed  # total did balloon
    assert not any("ART" in m for m in messages if "cell" in m)
