"""Shared fixtures for the test suite."""

import os
import random

import pytest

from repro.dm import Cluster, ClusterConfig


@pytest.fixture(autouse=True)
def _dmsan(monkeypatch):
    """Opt-in sanitizer harness: ``REPRO_SAN=1 pytest ...`` attaches a DMSan
    monitor to every Cluster the test builds and asserts a clean report at
    teardown.  CI runs the concurrency and failure-injection suites this
    way; any other suite can be spot-checked with the same switch."""
    if os.environ.get("REPRO_SAN") != "1":
        yield
        return
    monitors = []
    original_init = Cluster.__init__

    def sanitized_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        monitors.append((self, self.attach_sanitizer()))

    monkeypatch.setattr(Cluster, "__init__", sanitized_init)
    yield
    for _, monitor in monitors:
        report = monitor.report
        assert report.clean, \
            report.summary() + "\n" + "\n".join(report.render_violations())


@pytest.fixture
def cluster():
    """A default 3-CN / 3-MN cluster with a modest memory budget."""
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


@pytest.fixture
def single_mn_cluster():
    return Cluster(ClusterConfig(num_mns=1, num_cns=1,
                                 mn_capacity_bytes=64 << 20))


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
