"""Shared fixtures for the test suite."""

import random

import pytest

from repro.dm import Cluster, ClusterConfig


@pytest.fixture
def cluster():
    """A default 3-CN / 3-MN cluster with a modest memory budget."""
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


@pytest.fixture
def single_mn_cluster():
    return Cluster(ClusterConfig(num_mns=1, num_cns=1,
                                 mn_capacity_bytes=64 << 20))


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
