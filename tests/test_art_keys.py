"""Unit tests for binary-comparable key codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.art.keys import (
    check_prefix_free,
    common_prefix_len,
    decode_str,
    decode_u64,
    encode_bytes_terminated,
    encode_str,
    encode_u64,
)
from repro.errors import KeyCodecError


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_u64_roundtrip(value):
    assert decode_u64(encode_u64(value)) == value


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_u64_order_preserving(a, b):
    assert (a < b) == (encode_u64(a) < encode_u64(b))


def test_u64_rejects_out_of_range():
    with pytest.raises(KeyCodecError):
        encode_u64(-1)
    with pytest.raises(KeyCodecError):
        encode_u64(1 << 64)
    with pytest.raises(KeyCodecError):
        decode_u64(b"short")


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               min_size=1, max_size=40))
def test_str_roundtrip(text):
    assert decode_str(encode_str(text)) == text


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               min_size=1, max_size=40),
       st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               min_size=1, max_size=40))
def test_str_encoding_prefix_free(a, b):
    ka, kb = encode_str(a), encode_str(b)
    if a != b:
        assert not ka.startswith(kb) or len(ka) == len(kb)
        check_prefix_free([ka, kb])


def test_str_rejects_nul():
    with pytest.raises(KeyCodecError):
        encode_str("a\x00b")


def test_rejects_empty_and_oversized():
    with pytest.raises(KeyCodecError):
        encode_bytes_terminated(b"")
    with pytest.raises(KeyCodecError):
        encode_bytes_terminated(b"x" * 300)


def test_decode_str_requires_terminator():
    with pytest.raises(KeyCodecError):
        decode_str(b"abc")


@given(st.binary(min_size=0, max_size=20), st.binary(min_size=0, max_size=20))
def test_common_prefix_len_properties(a, b):
    n = common_prefix_len(a, b)
    assert a[:n] == b[:n]
    if n < min(len(a), len(b)):
        assert a[n] != b[n]


def test_check_prefix_free_detects_violation():
    with pytest.raises(KeyCodecError):
        check_prefix_free([b"ab", b"abc"])
    check_prefix_free([b"ab", b"ac", b"b"])  # no exception
