"""Unit tests for the Fig-3 byte layouts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.art.layout import (
    HEADER_SIZE,
    NODE4,
    NODE16,
    NODE48,
    NODE256,
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    HashEntry,
    Header,
    Slot,
    decode_leaf,
    decode_node,
    encode_leaf,
    encode_node,
    leaf_size_for,
    leaf_status_word,
    leaf_units_for,
    next_node_type,
    node_size,
    smallest_type_for,
)
from repro.errors import ReproError


def test_node_sizes_match_paper_range():
    # The paper quotes ART inner nodes at 40-2056 bytes.
    assert node_size(NODE4) == 40
    assert node_size(NODE16) == 136
    assert node_size(NODE48) == 392
    assert node_size(NODE256) == 2056


def test_next_node_type_chain():
    assert next_node_type(NODE4) == NODE16
    assert next_node_type(NODE48) == NODE256
    with pytest.raises(ReproError):
        next_node_type(NODE256)


def test_smallest_type_for():
    assert smallest_type_for(1) == NODE4
    assert smallest_type_for(4) == NODE4
    assert smallest_type_for(5) == NODE16
    assert smallest_type_for(48) == NODE48
    assert smallest_type_for(49) == NODE256
    assert smallest_type_for(256) == NODE256
    with pytest.raises(ReproError):
        smallest_type_for(257)


@given(st.integers(0, 2), st.sampled_from([NODE4, NODE16, NODE48, NODE256]),
       st.integers(0, 255), st.integers(0, (1 << 42) - 1),
       st.integers(0, 256))
def test_header_roundtrip(status, node_type, depth, phash, count):
    h = Header(status, node_type, depth, phash, count)
    assert Header.unpack(h.pack()) == h


@given(st.integers(0, (1 << 48) - 1), st.integers(0, 255),
       st.integers(0, 63), st.booleans(), st.booleans())
def test_slot_roundtrip(addr, partial, size_class, is_leaf, occupied):
    s = Slot(addr, partial, size_class, is_leaf, occupied)
    assert Slot.unpack(s.pack()) == s


@given(st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 12) - 1),
       st.integers(0, 7), st.booleans())
def test_hash_entry_roundtrip(addr, fp2, node_type, occupied):
    e = HashEntry(addr, fp2, node_type, occupied)
    assert HashEntry.unpack(e.pack()) == e


def test_slot_helpers():
    leaf = Slot(100, 1, 2, True, True)
    assert leaf.leaf_size() == 128
    with pytest.raises(ReproError):
        leaf.child_node_size()
    inner = Slot(100, 1, NODE16, False, True)
    assert inner.child_node_size() == 136
    with pytest.raises(ReproError):
        inner.leaf_size()


def test_encode_decode_node_roundtrip():
    header = Header(STATUS_IDLE, NODE16, 3, 12345, 2)
    slots = [None] * 16
    slots[0] = Slot(0x1000, ord("a"), 2, True, True)
    slots[5] = Slot(0x2000, ord("b"), NODE4, False, True)
    blob = encode_node(header, slots)
    assert len(blob) == node_size(NODE16)
    view = decode_node(blob)
    assert view.header == header
    assert view.find_child(ord("a")).addr == 0x1000
    assert view.find_child(ord("b")).addr == 0x2000
    assert view.find_child(ord("c")) is None
    assert len(view.occupied_slots()) == 2
    assert view.occupied_count() == 2
    assert view.find_index_by_addr(0x2000) == 5
    assert view.find_index_by_addr(0x9999) is None


def test_node256_direct_indexing():
    header = Header(STATUS_IDLE, NODE256, 1, 7, 1)
    slots = [None] * 256
    slots[200] = Slot(0x3000, 200, 1, True, True)
    view = decode_node(encode_node(header, slots))
    assert view.find_child(200).addr == 0x3000
    assert view.find_child(201) is None
    with pytest.raises(ReproError):
        view.first_free_index()


def test_first_free_index_small_node():
    header = Header(STATUS_IDLE, NODE4, 1, 7, 2)
    slots = [Slot(1, 0, 1, True, True), None,
             Slot(2, 1, 1, True, True), None]
    view = decode_node(encode_node(header, slots))
    assert view.first_free_index() == 1


def test_encode_node_capacity_checked():
    header = Header(STATUS_IDLE, NODE4, 1, 7, 0)
    with pytest.raises(ReproError):
        encode_node(header, [None] * 5)


def test_decode_node_rejects_garbage():
    with pytest.raises(ReproError):
        decode_node(bytes(8))  # node type 0
    header = Header(STATUS_IDLE, NODE16, 0, 0, 0)
    blob = encode_node(header, [None] * 16)
    with pytest.raises(ReproError):
        decode_node(blob[:40])  # short read


@given(st.binary(min_size=1, max_size=60), st.binary(min_size=0, max_size=200))
def test_leaf_roundtrip(key, value):
    blob = encode_leaf(key, value)
    assert len(blob) % 64 == 0
    assert len(blob) == leaf_size_for(len(key), len(value))
    view = decode_leaf(blob)
    assert view.checksum_ok
    assert view.key == key
    assert view.value == value
    assert view.status == STATUS_IDLE


def test_leaf_overprovisioned_units():
    blob = encode_leaf(b"k", b"v", units=4)
    view = decode_leaf(blob)
    assert view.units == 4 and len(blob) == 256
    with pytest.raises(ReproError):
        encode_leaf(b"k", b"v" * 300, units=1)


def test_leaf_torn_read_detected():
    blob = bytearray(encode_leaf(b"key1", b"value1"))
    blob[20] ^= 0xFF  # corrupt a payload byte
    view = decode_leaf(bytes(blob))
    assert not view.checksum_ok


def test_leaf_status_change_detected_by_word():
    idle = leaf_status_word(STATUS_IDLE, 2, 4, 6)
    locked = leaf_status_word(STATUS_LOCKED, 2, 4, 6)
    invalid = leaf_status_word(STATUS_INVALID, 2, 4, 6)
    assert len({idle, locked, invalid}) == 3
    blob = encode_leaf(b"key1", b"value1", units=2)
    assert int.from_bytes(blob[:8], "little") == leaf_status_word(
        STATUS_IDLE, 2, 4, 6)


def test_leaf_units_limits():
    assert leaf_units_for(8, 64) == 2  # 16 + 8 + 64 = 88 -> 128 B
    with pytest.raises(ReproError):
        leaf_units_for(100, 5000)


def test_decode_leaf_short_raises():
    with pytest.raises(ReproError):
        decode_leaf(bytes(4))


def test_decode_leaf_truncated_payload_flagged():
    blob = bytearray(encode_leaf(b"abcd", b"efgh"))
    blob[2:4] = (5000).to_bytes(2, "little")  # absurd key_len
    view = decode_leaf(bytes(blob))
    assert not view.checksum_ok


def test_header_size_is_8_bytes():
    assert HEADER_SIZE == 8
    assert len(encode_node(Header(0, NODE4, 0, 0, 0), [None] * 4)) == 40
