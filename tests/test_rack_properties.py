"""Seeded property sweeps over rebalancing rack clusters (ISSUE 9).

Three families, all driving :func:`repro.tenancy.run_rack` end to end
with an online MN-group join *and* a group drain/leave interleaved with
multi-tenant traffic:

* **read-only oracle**: under YCSB C (no writes) every bulk-loaded key
  must read back exactly its loaded value after the topology churn, and
  live in exactly one cell - migrations move data, never mutate it;
* **mixed-workload oracle**: under YCSB A the rack's shard registry must
  stay the truth - every registered key readable from its owner cell,
  absent from every other live cell, all cells fsck-clean;
* **chaos convergence**: with the widened chaos plan injecting faults
  into tenants *and* migration sweeps alike, runs must still converge
  (no in-flight migrations at exit), stay deterministic (same seed, same
  digest), and leave every cell fsck-clean-or-repairable.

The sweep widths scale with ``REPRO_PROPERTY_SEEDS`` (50 = the stock 4
seeds per family; the nightly workflow doubles them).
"""

import json
import os

import pytest

from repro.dm import ClusterSpec, TopologyEvent
from repro.tenancy import TenancyConfig, TenantSpec, run_rack
from repro.ycsb import make_dataset
from repro.ycsb.runner import _value

pytestmark = pytest.mark.property

N_SEEDS = int(os.environ.get("REPRO_PROPERTY_SEEDS", "50"))
SEEDS = range(max(1, round(4 * N_SEEDS / 50)))

SPEC = ClusterSpec(num_cns=3, num_mns=6, group_size=2, num_shards=24,
                   clients=12, mn_capacity_bytes=16 << 20)
EVENTS = (TopologyEvent(at_ns=40_000, kind="mn_join"),
          TopologyEvent(at_ns=150_000, kind="mn_leave", group=0))
NUM_KEYS = 600
OPS = 1200


def _reader(out):
    return out.rack.cluster.direct_executor(), out.rack.client(0)


def _assert_registry_is_truth(out, tag):
    """Every registered key: readable via the router, present in its
    owner cell, absent from every other live cell."""
    rack = out.rack
    ex, client = _reader(out)
    live = rack.live_groups()
    checked = 0
    for shard, keys in enumerate(rack.registry):
        owner = rack.shards.assignment[shard]
        assert owner in live, f"{tag}: shard {shard} owned by dead group"
        for key in sorted(keys)[:8]:     # bounded per-shard spot check
            assert ex.run(client.search(key)) is not None, (
                f"{tag}: registered key {key!r} unreadable")
            for gid in live:
                got = ex.run(rack.group_index(gid).client(0).search(key))
                where = ("missing from owner" if gid == owner
                         else f"leaked into group {gid}")
                assert (got is not None) == (gid == owner), (
                    f"{tag}: {key!r} {where}")
            checked += 1
    assert checked > 0


#: All-C roster: the *tenant* mixes drive the ops, so a read-only oracle
#: needs every tenant on C, not just the aggregate workload label.
READERS = TenancyConfig(tuple(
    TenantSpec(f"r{i}", workload="C", weight=i + 1) for i in range(4)))


@pytest.mark.parametrize("seed", SEEDS)
def test_rebalance_readonly_preserves_exact_values(seed):
    out = run_rack(SPEC, tenants=READERS, workload_name="C",
                   num_keys=NUM_KEYS,
                   insert_pool=100, ops=OPS, seed=seed, events=EVENTS)
    tag = f"seed={seed}"
    assert out.fsck_exit == 0, f"{tag}: fsck {out.fsck_exit} after churn"
    assert not out.rack.migrations, f"{tag}: migration left in flight"
    assert len(out.topology) == 2
    assert 0 in out.rack.retired_groups
    assert out.rack.keys_by_group()[0] == 0, f"{tag}: group 0 not drained"
    # YCSB C never writes: every key still holds its bulk-loaded value.
    dataset = make_dataset("u64", NUM_KEYS, seed=1, insert_pool=100)
    ex, client = _reader(out)
    for i, key in enumerate(dataset.keys):
        assert ex.run(client.search(key)) == _value(i, 64), (
            f"{tag}: {key!r} corrupted by rebalancing")
    _assert_registry_is_truth(out, tag)


@pytest.mark.parametrize("seed", SEEDS)
def test_rebalance_mixed_workload_registry_oracle(seed):
    out = run_rack(SPEC, tenants=4, workload_name="A", num_keys=NUM_KEYS,
                   insert_pool=200, ops=OPS, seed=seed, events=EVENTS)
    tag = f"seed={seed}"
    assert out.fsck_exit == 0, f"{tag}: fsck {out.fsck_exit} after churn"
    assert not out.rack.migrations
    assert out.rack.total_keys() >= NUM_KEYS  # A inserts, never deletes
    _assert_registry_is_truth(out, tag)
    # Same seed, same digest - churn and all.
    again = run_rack(SPEC, tenants=4, workload_name="A",
                     num_keys=NUM_KEYS, insert_pool=200, ops=OPS,
                     seed=seed, events=EVENTS)
    assert json.dumps(out.rows(), sort_keys=True) \
        == json.dumps(again.rows(), sort_keys=True), (
        f"{tag}: rack run not bit-identical across repeats")


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_rebalance_converges_and_stays_deterministic(seed):
    runs = [run_rack(SPEC, tenants=4, workload_name="A",
                     num_keys=NUM_KEYS, insert_pool=200, ops=OPS,
                     seed=seed, events=EVENTS, chaos_seed=seed + 1)
            for _ in range(2)]
    out = runs[0]
    tag = f"seed={seed}"
    injector = out.rack.cluster.injector
    assert injector is not None and injector.faults_total() > 0, (
        f"{tag}: the chaos plan never fired")
    assert not out.rack.migrations, f"{tag}: chaos wedged a migration"
    assert 0 in out.rack.retired_groups
    # Chaos may leave litter, but only of the documented kinds: invalid
    # leaves / INHT debris (fsck-repairable) and at-rest locks (lease
    # reclaim's job, deliberately not fsck's).  Anything else - torn
    # structure, cross-linked nodes - means the migration corrupted a
    # cell rather than degrading cleanly.
    allowed = {"invalid_leaf", "inht_missing", "inht_orphan", "orphan_lock"}
    for gid, report in out.fsck_reports:
        kinds = {f.kind for f in report.findings}
        assert kinds <= allowed, (
            f"{tag}: group {gid} has undocumented damage {kinds - allowed}")
    assert json.dumps(runs[0].rows(), sort_keys=True) \
        == json.dumps(runs[1].rows(), sort_keys=True), (
        f"{tag}: chaos rack run not bit-identical across repeats")
