"""Failure injection: abandoned locks, corrupted memory, stuck buckets.

The properties asserted here are *containment*: failures surface as
bounded retries or degraded paths, never as wrong answers or unbounded
hangs, and lock-free readers keep working through abandoned writer
locks.  Containment is the floor recovery builds on - actual crash
*recovery* (lease-based lock reclamation, ``crash_cn``/``crash_mn``
tolerance, fsck-driven repair) lives in ``repro.recover`` and is
exercised by ``test_recovery.py`` / ``test_recovery_properties.py``.

Faults are expressed as :class:`repro.fault.FaultPlan` rules (scheduled
``poke``/``flip`` environment corruption) rather than hand-poking memory
bytes, so the same machinery the chaos suite uses is exercised here.
"""

import pytest

from repro.art import encode_str
from repro.art.layout import (
    NODE256,
    STATUS_LOCKED,
    decode_leaf,
    decode_node,
    leaf_status_word,
    node_size,
)
from repro.core import SphinxConfig, SphinxIndex
from repro.core.lock import locked_header
from repro.dm import Cluster, ClusterConfig
from repro.dm.memory import addr_mn, addr_offset
from repro.errors import RetryLimitExceeded
from repro.fault import FaultPlan, RetryPolicy, flip, poke
from repro.race.layout import GROUP_HEADER
from repro.util.bits import u64_to_bytes


def read_node(cluster, addr, node_type):
    memory = cluster.memories[addr_mn(addr)]
    return decode_node(memory.read(addr_offset(addr), node_size(node_type)))


def walk_to_leaf(cluster, index, key):
    """(path of (addr, view), leaf_slot) for ``key`` via raw reads."""
    addr, view = index.root_addr, read_node(cluster, index.root_addr,
                                            NODE256)
    path = [(addr, view)]
    while True:
        slot = view.find_child(key[view.header.depth])
        assert slot is not None, "key must exist"
        if slot.is_leaf:
            return path, slot
        addr, view = slot.addr, read_node(cluster, slot.addr,
                                          slot.size_class)
        path.append((addr, view))


def inject(cluster, *rules):
    """Attach a plan of scheduled rules and hand back a fresh executor
    (executors built before ``attach_faults`` bypass the injector)."""
    cluster.attach_faults(FaultPlan(seed=7, rules=tuple(rules)))
    return cluster.direct_executor()


@pytest.fixture
def loaded():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(
        filter_budget_bytes=1 << 14,
        retry=RetryPolicy(max_retries=12, backoff_ns=500)))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"node/{i:03d}") for i in range(40)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return cluster, index, client, ex, keys


def _abandon_lock_on_leaf_parent(cluster, index, key):
    """Simulate a crashed writer: leave the leaf's parent Locked forever
    (a scheduled ``poke`` rule, fired before the next verb)."""
    path, _leaf_slot = walk_to_leaf(cluster, index, key)
    node_addr, view = path[-1]
    ex = inject(cluster, poke(
        node_addr, u64_to_bytes(locked_header(view.header).pack())))
    return node_addr, view, ex


def test_readers_pass_through_abandoned_node_lock(loaded):
    cluster, index, client, _ex, keys = loaded
    _addr, _view, ex = _abandon_lock_on_leaf_parent(cluster, index, keys[0])
    # Reads are lock-free (paper Sec. III-C): they still succeed.
    for i, key in enumerate(keys[:10]):
        assert ex.run(client.search(key)) == f"v{i}".encode()
    assert cluster.injector.counters.get("poke") == 1


def test_writers_bounded_by_retry_budget_on_abandoned_lock(loaded):
    cluster, index, client, _ex, keys = loaded
    _addr, view, ex = _abandon_lock_on_leaf_parent(cluster, index, keys[0])
    # A key that must be installed *inside* the dead-locked node: same
    # prefix as keys[0] up to the node's depth, fresh next byte.
    depth = view.header.depth
    sibling = keys[0][:depth] + b"Z" + b"x\x00"
    with pytest.raises(RetryLimitExceeded):
        ex.run(client.insert(sibling, b"new"))
    # Unrelated writes elsewhere still work.
    assert ex.run(client.insert(encode_str("other/abc"), b"x"))


def test_update_bounded_on_abandoned_leaf_lock(loaded):
    cluster, index, client, ex, keys = loaded
    _path, leaf_slot = walk_to_leaf(cluster, index, keys[0])
    leaf_mem = cluster.memories[addr_mn(leaf_slot.addr)]
    leaf = decode_leaf(leaf_mem.read(addr_offset(leaf_slot.addr),
                                     leaf_slot.size_class * 64))
    assert leaf.key == keys[0]
    ex = inject(cluster, poke(
        leaf_slot.addr,
        u64_to_bytes(leaf_status_word(STATUS_LOCKED, leaf.units,
                                      len(leaf.key), len(leaf.value)))))
    with pytest.raises(RetryLimitExceeded):
        ex.run(client.update(keys[0], b"nope"))
    # Other keys are unaffected.
    assert ex.run(client.update(keys[1], b"fine"))
    assert ex.run(client.search(keys[1])) == b"fine"


def test_search_degrades_when_inht_bucket_stuck(loaded):
    cluster, index, client, _ex, keys = loaded
    # Jam the hash-table bucket of the *deepest* inner prefix on the
    # key's path behind a fake (abandoned) segment-split lock.
    path, _leaf_slot = walk_to_leaf(cluster, index, keys[0])
    _deepest_addr, deepest_view = path[-1]
    prefix = keys[0][:deepest_view.header.depth]
    race = client.inht._client_for(prefix)
    location = race.cached_group_location(prefix)
    assert location is not None  # warmed during the load
    group_addr, _h, local_depth = location
    ex = inject(cluster, poke(
        group_addr,
        u64_to_bytes(GROUP_HEADER.pack(local_depth=local_depth, locked=1,
                                       version=999))))
    # Searches fall back to root traversal and still answer correctly.
    before = client.inht_fallbacks
    assert ex.run(client.search(keys[0])) == b"v0"
    assert client.inht_fallbacks > before


def test_corrupted_leaf_is_detected_not_returned(loaded):
    cluster, index, client, _ex, keys = loaded
    _path, leaf_slot = walk_to_leaf(cluster, index, keys[0])
    # Flip every bit of one key/payload byte (xor 0xFF at offset +17).
    ex = inject(cluster, flip(addr=leaf_slot.addr + 17, xor=0xFF,
                              at_verb=0))
    # The checksum turns silent corruption into a bounded, loud failure.
    with pytest.raises(RetryLimitExceeded):
        ex.run(client.search(keys[0]))
    # Other keys unaffected.
    assert ex.run(client.search(keys[1])) == b"v1"
