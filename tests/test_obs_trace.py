"""Tests for the tracer span model and exporters (repro.obs).

Covers the span/verb/fault data model under both executors, passive
resource sampling, the export formats (JSONL, Chrome ``trace_event``,
``--profile`` summary), and the attach/detach lifecycle on the cluster.
"""

import json
import pickle

import pytest

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.memory import addr_mn
from repro.dm.rdma import OpStats, ReadOp
from repro.errors import RetryLimitExceeded
from repro.fault import FaultPlan
from repro.obs import (
    chrome_trace,
    iter_jsonl,
    profile_summary,
    render_profile,
    to_jsonl,
    Tracer,
    TraceConfig,
)


def _cluster():
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


def _loaded_index(cluster, n=24, prefix="t"):
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"{prefix}/{i:03d}") for i in range(n)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return client, keys


# ---------------------------------------------------------------------------
# Span model - direct executor
# ---------------------------------------------------------------------------

def test_direct_executor_records_named_spans():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    ex = cluster.direct_executor()
    assert ex.run(client.search(keys[0])) == b"v0"
    ex.run(client.update(keys[1], b"u"))
    assert [s.name for s in tracer.spans] == ["search", "update"]
    span = tracer.spans[0]
    assert span.status == "ok"
    assert span.client.startswith("direct#")
    assert span.round_trips > 0
    assert span.messages == len(span.verbs)
    assert span.retries == 0 and span.faults == []


def test_verb_events_nest_with_addresses_and_bytes():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    ex = cluster.direct_executor()
    ex.run(client.search(keys[2]))
    span = tracer.spans[0]
    assert span.verbs, "search must execute verbs"
    for verb in span.verbs:
        assert verb.kind in ("read", "write", "cas", "faa")
        assert verb.mn == addr_mn(verb.addr)
        assert verb.t_start <= verb.t_end
        assert verb.retry == 0 and verb.fault is None
    assert span.bytes_read == sum(v.resp_bytes for v in span.verbs
                                  if v.kind == "read")
    assert span.bytes_written == sum(v.req_bytes for v in span.verbs
                                     if v.kind == "write")


def test_sim_executor_spans_advance_simulated_time():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine

    def ops():
        for key in keys[:6]:
            yield from executor.run(client.search(key))

    engine.run_until_complete(engine.process(ops(), name="trace"))
    assert len(tracer.spans) == 6
    for span in tracer.spans:
        assert span.client.startswith("cn0#")
        assert span.t_end > span.t_start, "sim ops take simulated time"
        assert span.duration_ns == span.t_end - span.t_start
        for verb in span.verbs:
            assert span.t_start <= verb.t_start <= verb.t_end <= span.t_end
    # spans are sequenced in completion order with unique seq numbers
    assert [s.seq for s in tracer.spans] == sorted(
        s.seq for s in tracer.spans)


# ---------------------------------------------------------------------------
# Attach/detach lifecycle
# ---------------------------------------------------------------------------

def test_executor_created_before_attach_is_untraced():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    ex = cluster.direct_executor()          # created pre-attach
    tracer = cluster.attach_tracer()
    ex.run(client.search(keys[0]))
    assert tracer.spans == []


def test_detach_stops_new_executors_from_tracing():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    assert cluster.detach_tracer() is tracer
    ex = cluster.direct_executor()
    ex.run(client.search(keys[0]))
    assert tracer.spans == []
    assert cluster.tracer is None


def test_attach_accepts_custom_tracer_and_config():
    cluster = _cluster()
    mine = Tracer(TraceConfig(record_verbs=False))
    assert cluster.attach_tracer(mine) is mine
    cluster.detach_tracer()
    made = cluster.attach_tracer(config=TraceConfig(max_spans=7))
    assert made.config.max_spans == 7


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------

def test_max_spans_caps_export_but_not_totals():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer(config=TraceConfig(max_spans=3))
    ex = cluster.direct_executor()
    for key in keys[:10]:
        ex.run(client.search(key))
    assert len(tracer.spans) == 3
    assert tracer.dropped_spans == 7
    assert tracer.op_totals["search"]["count"] == 10
    assert profile_summary(tracer)["search"]["count"] == 10


def test_record_verbs_off_keeps_aggregates():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer(config=TraceConfig(record_verbs=False))
    ex = cluster.direct_executor()
    ex.run(client.search(keys[0]))
    span = tracer.spans[0]
    assert span.verbs == []
    assert span.messages > 0 and span.bytes_read > 0


def test_orphan_verbs_collected_outside_spans():
    tracer = Tracer()
    tracer.on_verb("loose", ReadOp(0x10, 8), 5, 9)
    assert tracer.spans == []
    assert len(tracer.orphan_verbs) == 1
    assert tracer.orphan_verbs[0].kind == "read"


# ---------------------------------------------------------------------------
# Resource sampling
# ---------------------------------------------------------------------------

def test_resource_samples_from_sim_run():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine

    def ops():
        for key in keys * 4:
            yield from executor.run(client.search(key))

    engine.run_until_complete(engine.process(ops(), name="rs"))
    tracer.finish()
    assert tracer.samples, "a long sim run must produce samples"
    times = [s.t for s in tracer.samples]
    assert times == sorted(times)
    gauges = tracer.samples[-1].gauges
    assert any(k.endswith(".busy_frac") for k in gauges)
    assert any(k.endswith(".queue_ns") for k in gauges)
    assert any(k.endswith(".gbps") for k in gauges)
    # busy fractions are normalized
    for key, value in gauges.items():
        if key.endswith(".busy_frac"):
            assert 0.0 <= value <= 1.0


def test_sampling_disabled_by_zero_interval():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer(config=TraceConfig(sample_every_ns=0))
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine

    def ops():
        for key in keys[:8]:
            yield from executor.run(client.search(key))

    engine.run_until_complete(engine.process(ops(), name="ns"))
    assert tracer.samples == []


# ---------------------------------------------------------------------------
# Faults nest into spans
# ---------------------------------------------------------------------------

def test_spans_record_injected_faults_and_retries():
    cluster = _cluster()
    client, keys = _loaded_index(cluster, prefix="f")
    cluster.attach_faults(FaultPlan.chaos(11, intensity=4.0))
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine

    def ops():
        for step, key in enumerate(keys * 3):
            try:
                if step % 2:
                    yield from executor.run(client.search(key))
                else:
                    yield from executor.run(
                        client.update(key, f"u{step}".encode()))
            except RetryLimitExceeded:
                pass

    engine.run_until_complete(engine.process(ops(), name="chaos"))
    assert sum(cluster.injector.counters.values()) > 0, \
        "plan must actually fire for this test to mean anything"
    faulted = [s for s in tracer.spans if s.faults]
    assert faulted, "chaos at intensity 4.0 must touch some span"
    tagged = [f for s in faulted for f in s.faults]
    assert all(f.kind for f in tagged)
    # a delivered fault both tags the span and bumps its retry round
    for span in (s for s in tracer.spans if s.retries > 0):
        assert span.retries <= len(span.faults)
    # every span still closed with a status
    assert all(s.status in ("ok", "failed", "error") for s in tracer.spans)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

def _traced_run():
    cluster = _cluster()
    client, keys = _loaded_index(cluster)
    tracer = cluster.attach_tracer()
    executor = cluster.sim_executor(0, OpStats())
    engine = cluster.engine

    def ops():
        for step, key in enumerate(keys):
            if step % 2:
                yield from executor.run(client.search(key))
            else:
                yield from executor.run(client.update(key, b"u"))

    engine.run_until_complete(engine.process(ops(), name="exp"))
    return tracer.finish()


def test_jsonl_lines_parse_and_carry_cell_tag():
    tracer = _traced_run()
    lines = list(iter_jsonl(tracer, cell="u64:Sphinx/A"))
    assert lines
    records = [json.loads(line) for line in lines]
    spans = [r for r in records if r["type"] == "span"]
    samples = [r for r in records if r["type"] == "sample"]
    assert len(spans) == len(tracer.spans)
    assert len(samples) == len(tracer.samples)
    assert all(r["cell"] == "u64:Sphinx/A" for r in records)
    rec = spans[0]
    assert {"seq", "client", "name", "t_start", "t_end", "status",
            "round_trips", "messages", "verbs"} <= set(rec)
    assert rec["verbs"][0]["kind"] in ("read", "write", "cas", "faa")
    # keys are sorted -> byte-stable formatting
    assert lines[0] == json.dumps(json.loads(lines[0]),
                                  sort_keys=True,
                                  separators=(",", ":"))


def test_to_jsonl_roundtrips_without_cell():
    tracer = _traced_run()
    text = to_jsonl(tracer)
    assert text.endswith("\n")
    first = json.loads(text.splitlines()[0])
    assert "cell" not in first


def test_chrome_trace_is_valid_trace_event_json():
    tracer = _traced_run()
    doc = chrome_trace([tracer], labels=["u64:Sphinx/A"])
    # must survive a JSON round-trip (what chrome://tracing loads)
    doc = json.loads(json.dumps(doc))
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert phases <= {"M", "X", "C"}
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name"
               and e["args"]["name"] == "u64:Sphinx/A" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    for e in events:
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["cat"] in ("op", "verb")
        elif e["ph"] == "C":
            assert "value" in e["args"]
    ops = [e for e in events if e.get("cat") == "op"]
    verbs = [e for e in events if e.get("cat") == "verb"]
    assert len(ops) == len(tracer.spans)
    assert len(verbs) == sum(len(s.verbs) for s in tracer.spans)


def test_chrome_trace_multiple_cells_get_distinct_pids():
    a, b = _traced_run(), _traced_run()
    doc = chrome_trace([a, b], labels=["cell-a", "cell-b"])
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}


def test_profile_summary_and_render():
    tracer = _traced_run()
    prof = profile_summary(tracer)
    assert set(prof) == {"search", "update"}
    for row in prof.values():
        assert row["count"] > 0
        assert row["round_trips"] > 0
        assert row["avg_us"] > 0
    table = render_profile({"u64:Sphinx/A": prof})
    assert "rtt/op" in table and "u64:Sphinx/A" in table
    assert "search" in table and "update" in table


def test_tracer_pickles_after_finish():
    tracer = _traced_run()
    clone = pickle.loads(pickle.dumps(tracer))
    assert len(clone.spans) == len(tracer.spans)
    assert clone.op_totals == tracer.op_totals
    assert [s.t for s in clone.samples] == [s.t for s in tracer.samples]


def test_unfinished_span_marked_open():
    tracer = Tracer()
    span = tracer.op_begin("c", "stuck", 100)
    assert span.status == "open" and span.t_end == -1
    assert span.duration_ns == 0
    # op_end is idempotent once closed
    tracer.op_end(span, 200, "ok")
    tracer.op_end(span, 999, "error")
    assert span.t_end == 200 and span.status == "ok"
    with pytest.raises(KeyError):
        tracer.op_totals["missing"]
