"""Cross-cutting integration tests."""

import random

import pytest

from repro.art import LocalART, encode_str, encode_u64
from repro.art.layout import HashEntry
from repro.baselines import ArtDmIndex, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.race import RaceClient, TableParams, allocate_segment, create_table
from repro.race.layout import fp2_of, key_hash


def fresh():
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


def test_filter_and_nofilter_modes_agree():
    """The succinct filter cache is a performance layer: with and without
    it, Sphinx must compute identical results for identical op streams."""
    rng = random.Random(1)
    stream = []
    pool = [encode_u64(rng.getrandbits(64)) for _ in range(250)]
    for step in range(1_500):
        stream.append((rng.choice(["i", "s", "d", "u"]),
                       rng.choice(pool), f"v{step}".encode()))

    def run(use_filter):
        cluster = fresh()
        index = SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=1 << 14, use_filter=use_filter))
        client = index.client(0)
        ex = cluster.direct_executor()
        out = []
        for op, key, value in stream:
            if op == "i":
                out.append(ex.run(client.insert(key, value)))
            elif op == "s":
                out.append(ex.run(client.search(key)))
            elif op == "u":
                out.append(ex.run(client.update(key, value)))
            else:
                out.append(ex.run(client.delete(key)))
        return out

    assert run(True) == run(False)


def test_nofilter_mode_reads_theta_l_entries():
    """Sec. III-A: without the filter, locating costs Theta(L) messages."""
    from repro.dm.rdma import OpStats
    keys = [encode_str(f"some/long/path/{i:05d}") for i in range(2_000)]

    def messages(use_filter):
        cluster = fresh()
        index = SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=1 << 15, use_filter=use_filter))
        client = index.client(0)
        ex = cluster.direct_executor()
        for i, key in enumerate(keys):
            ex.run(client.insert(key, b"v"))
        for key in keys[:200]:
            ex.run(client.search(key))  # warm
        stats = OpStats()
        counted = cluster.direct_executor(stats)
        for key in keys[:200]:
            counted.run(client.search(key))
        return stats.messages / 200

    with_filter = messages(True)
    without = messages(False)
    assert without > 2.0 * with_filter


def test_concurrent_race_table_clients():
    """Two clients hammer one hash table (forcing segment splits) under
    the simulated clock; no entry may be lost."""
    cluster = Cluster(ClusterConfig(num_mns=1, num_cns=2,
                                    mn_capacity_bytes=32 << 20))
    params = TableParams(seed=9, groups_per_segment=4, slots_per_group=4,
                         initial_depth=1)
    info = create_table(cluster, 0, params)
    clients = [RaceClient(info, lambda d: allocate_segment(
        cluster, 0, params, d)) for _ in range(2)]
    keys = [f"entry-{i}".encode() for i in range(600)]

    def worker(wid):
        executor = cluster.sim_executor(wid)
        client = clients[wid]
        for i, key in enumerate(keys[wid::2]):
            h = key_hash(key, params.seed)
            entry = HashEntry(addr=0x40 + (wid * 1000 + i) * 8,
                              fp2=fp2_of(h), node_type=1, occupied=True)
            yield from executor.run(client.insert(key, entry))

    procs = [cluster.engine.process(worker(w)) for w in range(2)]
    for p in procs:
        cluster.engine.run_until_complete(p,
                                          limit=cluster.engine.now + 10**11)
    assert clients[0].splits + clients[1].splits > 0
    ex = cluster.direct_executor()
    for key in keys:
        matches = ex.run(clients[0].lookup(key))
        assert matches, key


@pytest.mark.parametrize("make", [
    lambda c: SphinxIndex(c, SphinxConfig(filter_budget_bytes=1 << 14)),
    lambda c: SmartIndex(c),
    lambda c: ArtDmIndex(c),
])
def test_memory_accounting_balances(make):
    """Every allocation is matched by accounting; inserting then deleting
    everything leaves only structural residue (inner nodes + retired
    blocks are kept, leaves are reclaimed)."""
    cluster = fresh()
    index = make(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_u64(i * 977) for i in range(2_000)]
    for key in keys:
        ex.run(client.insert(key, b"x" * 64))
    loaded = cluster.mn_bytes_by_category()
    assert loaded["leaf"] == sum(
        128 for _ in keys)  # 16 B header + 8 B key + 64 B value -> 2 units
    for key in keys:
        assert ex.run(client.delete(key))
    after = cluster.mn_bytes_by_category()
    assert after["leaf"] == 0
    assert after["inner"] <= loaded["inner"]


def test_scan_range_equivalence_across_systems():
    rng = random.Random(3)
    keys = sorted({encode_u64(rng.getrandbits(48)) for _ in range(1_500)})
    oracle = LocalART()
    outputs = []
    for make in (lambda c: SphinxIndex(c, SphinxConfig(
            filter_budget_bytes=1 << 14)),
            lambda c: SmartIndex(c), lambda c: ArtDmIndex(c)):
        cluster = fresh()
        index = make(cluster)
        client = index.client(0)
        ex = cluster.direct_executor()
        for i, key in enumerate(keys):
            ex.run(client.insert(key, f"v{i}".encode()))
        lo, hi = keys[100], keys[700]
        outputs.append(ex.run(client.scan_range(lo, hi)))
    for i, key in enumerate(keys):
        oracle.insert(key, f"v{i}".encode())
    expected = oracle.scan(keys[100], keys[700])
    for out in outputs:
        assert out == expected


def test_retired_nodes_not_recycled():
    """Type-switch victims must never be handed back to the allocator
    (epoch-reclamation stand-in): their memory stays Invalid."""
    cluster = fresh()
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    # 40 keys under one prefix: forces N4 -> N16 -> N48 switches.
    for i in range(40):
        ex.run(client.insert(encode_str(f"prefix/{i:02d}"), b"v"))
    assert client.metrics.type_switches >= 2
    # Retired bytes are subtracted from the accounting (Fig 6 counts live
    # data) but the blocks are never recycled: a fresh allocation of the
    # same size must come from new space, not a retired node's address.
    memory = cluster.memories[0]
    off2 = memory.alloc(64, "probe")
    memory.retire(off2, 64, "probe")
    off3 = memory.alloc(64, "probe")
    assert off3 != off2  # retired block not reused
    memory.free(off3, 64, "probe")
    off4 = memory.alloc(64, "probe")
    assert off4 == off3  # freed block IS reused
