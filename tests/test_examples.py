"""Smoke tests: every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "search LYRICS" in proc.stdout
    assert "round trips" in proc.stdout


def test_email_directory_small():
    proc = run_example("email_directory.py", "--users", "2000",
                       "--ops", "300", "--workers", "12")
    assert proc.returncode == 0, proc.stderr
    assert "Sphinx" in proc.stdout and "ART" in proc.stdout


def test_multi_client_coherence():
    proc = run_example("multi_client_coherence.py")
    assert proc.returncode == 0, proc.stderr
    assert "incorrect results  : 0" in proc.stdout


def test_consistency_check():
    proc = run_example("consistency_check.py")
    assert proc.returncode == 0, proc.stderr
    assert "CLEAN" in proc.stdout


@pytest.mark.slow
def test_range_scan_analytics():
    proc = run_example("range_scan_analytics.py", timeout=360)
    assert proc.returncode == 0, proc.stderr
    assert "identical results" in proc.stdout
