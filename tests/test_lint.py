"""Tests for the repo-invariant lint (repro.tools.lint)."""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.tools.lint import default_target, lint_file, lint_paths, \
    lint_tracked_pyc, main


def lint_source(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path)


def rules(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# The repo itself is clean (the CI contract)
# ---------------------------------------------------------------------------

def test_repo_is_clean():
    findings = lint_paths([default_target()])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exit_zero_on_repo(capsys):
    assert main([]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.tools.lint"],
        capture_output=True, text=True,
        cwd=str(Path(__file__).resolve().parent.parent),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lint: clean" in result.stdout


# ---------------------------------------------------------------------------
# Each rule fires on a synthetic violation
# ---------------------------------------------------------------------------

def test_l001_direct_memory_access(tmp_path):
    findings = lint_source(tmp_path, """
        def sneaky(cluster, addr):
            return cluster.memories[0].read(addr, 8)
    """)
    assert rules(findings) == ["L001"]
    assert "bypasses the executors" in findings[0].message


def test_l001_all_data_plane_methods(tmp_path):
    findings = lint_source(tmp_path, """
        def sneaky(memory):
            memory.write(0, b"x")
            memory.write_u64(0, 1)
            memory.cas_u64(0, 0, 1)
            memory.faa_u64(0, 1)
    """)
    assert rules(findings) == ["L001"] * 4


def test_l001_ignores_unrelated_receivers(tmp_path):
    findings = lint_source(tmp_path, """
        def fine(file, socket):
            file.read(8)
            socket.write(b"x")
    """)
    assert findings == []


def test_l001_exempt_inside_dm(tmp_path):
    package = tmp_path / "repro" / "dm"
    package.mkdir(parents=True)
    path = package / "impl.py"
    path.write_text("def f(memory):\n    return memory.read(0, 8)\n")
    assert lint_file(path, tmp_path) == []


def test_l002_discarded_cas(tmp_path):
    findings = lint_source(tmp_path, """
        def proto(addr):
            yield CasOp(addr, 0, 1)
    """)
    assert rules(findings) == ["L002"]
    assert "swapped flag" in findings[0].message


def test_l002_consumed_cas_is_clean(tmp_path):
    findings = lint_source(tmp_path, """
        def proto(addr):
            swapped, _ = yield CasOp(addr, 0, 1)
            return swapped
    """)
    assert findings == []


def test_l003_empty_batch(tmp_path):
    findings = lint_source(tmp_path, """
        def proto():
            yield Batch([])
    """)
    assert rules(findings) == ["L003"]


def test_l003_nonempty_batch_clean(tmp_path):
    findings = lint_source(tmp_path, """
        def proto(ops):
            yield Batch(ops)
            yield Batch([ReadOp(0, 8)])
    """)
    assert findings == []


def test_l004_builtin_raise(tmp_path):
    findings = lint_source(tmp_path, """
        def f(x):
            if x < 0:
                raise ValueError("negative")
            raise KeyError(x)
    """)
    assert rules(findings) == ["L004", "L004"]


def test_l004_repro_errors_clean(tmp_path):
    findings = lint_source(tmp_path, """
        from repro.errors import InvalidArgument

        def f(x):
            if x < 0:
                raise InvalidArgument("negative")
            raise NotImplementedError  # conventional, allowed
    """)
    assert findings == []


def test_bare_reraise_is_clean(tmp_path):
    findings = lint_source(tmp_path, """
        def f():
            try:
                g()
            except Exception:
                raise
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# Suppressions and the CLI contract
# ---------------------------------------------------------------------------

def test_line_pragma_suppresses(tmp_path):
    findings = lint_source(tmp_path, """
        def control_plane(memory):
            memory.write(0, b"x")  # lint: disable=L001
    """)
    assert findings == []


def test_file_pragma_suppresses(tmp_path):
    findings = lint_source(tmp_path, """
        # lint: disable-file=L001
        def control_plane(memory):
            memory.write(0, b"x")
            memory.write_u64(8, 1)
    """)
    assert findings == []


def test_pragma_only_silences_named_rule(tmp_path):
    findings = lint_source(tmp_path, """
        def f(memory):
            memory.write(0, b"x")  # lint: disable=L004
    """)
    assert rules(findings) == ["L001"]


def test_cli_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    raise ValueError('x')\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "L004" in out
    assert "1 finding(s)" in out


def test_missing_path_reports_cleanly(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_syntax_error_reported_not_crashed(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = lint_file(bad)
    assert rules(findings) == ["L000"]


# ---------------------------------------------------------------------------
# L005: tracked bytecode
# ---------------------------------------------------------------------------

def test_l005_repo_has_no_tracked_pyc():
    assert lint_tracked_pyc() == []


def test_l005_fires_on_tracked_pyc(tmp_path):
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    pycache = tmp_path / "pkg" / "__pycache__"
    pycache.mkdir(parents=True)
    (pycache / "m.cpython-312.pyc").write_bytes(b"\x00")
    (tmp_path / "pkg" / "m.py").write_text("x = 1\n")
    subprocess.run(["git", "-C", str(tmp_path), "add", "-f", "."],
                   check=True)
    findings = lint_tracked_pyc(tmp_path)
    assert rules(findings) == ["L005"]
    assert "bytecode is build output" in findings[0].message
    assert findings[0].path.endswith(".pyc")


def test_l005_silent_outside_a_git_checkout(tmp_path):
    # An exported tree (sdist, plain copy) has nothing to check.
    assert lint_tracked_pyc(tmp_path) == []
