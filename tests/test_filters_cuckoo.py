"""Unit + property tests for the cuckoo filter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FilterError
from repro.filters import CuckooFilter


def test_basic_insert_contains_delete():
    f = CuckooFilter(100)
    assert f.insert(b"hello")
    assert f.contains(b"hello")
    assert f.delete(b"hello")
    assert not f.delete(b"hello")
    assert f.count == 0


@given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_no_false_negatives(items):
    f = CuckooFilter(2 * len(items) + 8)
    inserted = [i for i in items if f.insert(i)]
    assert len(inserted) == len(items)  # sized generously: all fit
    for item in inserted:
        assert f.contains(item)


def test_false_positive_rate_below_one_percent():
    # Paper Sec. III-B: >=10-bit fingerprints keep FP < 1 %.
    f = CuckooFilter(20_000, fp_bits=12)
    for i in range(18_000):
        f.insert(f"member{i}".encode())
    fps = sum(f.contains(f"outsider{i}".encode()) for i in range(50_000))
    assert fps / 50_000 < 0.01
    assert f.expected_fp_rate() < 0.01


def test_fp_rate_grows_with_smaller_fingerprints():
    small = CuckooFilter(5_000, fp_bits=4)
    large = CuckooFilter(5_000, fp_bits=16)
    for i in range(4_000):
        small.insert(f"m{i}".encode())
        large.insert(f"m{i}".encode())
    probes = [f"x{i}".encode() for i in range(30_000)]
    fp_small = sum(small.contains(p) for p in probes)
    fp_large = sum(large.contains(p) for p in probes)
    assert fp_small > fp_large


def test_delete_only_removes_one_copy():
    f = CuckooFilter(100)
    f.insert(b"dup")
    f.insert(b"dup")
    assert f.delete(b"dup")
    assert f.contains(b"dup")  # one copy remains
    assert f.delete(b"dup")
    assert not f.contains(b"dup")


def test_insert_fails_when_overfull():
    f = CuckooFilter(16, bucket_slots=2, max_kicks=16)
    rng = random.Random(9)
    failed = False
    for i in range(10_000):
        if not f.insert(f"k{i}-{rng.random()}".encode()):
            failed = True
            break
    assert failed
    assert f.load_factor() > 0.8  # failure only near saturation


def test_load_factor_and_size():
    f = CuckooFilter(1000, fp_bits=12, bucket_slots=4)
    assert f.load_factor() == 0.0
    for i in range(500):
        f.insert(f"i{i}".encode())
    assert 0 < f.load_factor() <= 1
    assert f.size_bytes() == f.num_buckets * 4 * 12 // 8


def test_validates_parameters():
    with pytest.raises(FilterError):
        CuckooFilter(0)
    with pytest.raises(FilterError):
        CuckooFilter(10, fp_bits=1)
    with pytest.raises(FilterError):
        CuckooFilter(10, fp_bits=40)


def test_alt_index_is_involution():
    f = CuckooFilter(1000)
    for i in range(200):
        item = f"item{i}".encode()
        fp, i1, i2 = f._candidates(item)
        assert f._alt_index(i2, fp) == i1
        assert f._alt_index(i1, fp) == i2
