"""DMSan tests: each analysis must flag a seeded violation of its class,
and the shipped protocols must run clean under the monitor."""

import random

import pytest

from repro.art import encode_u64
from repro.baselines import ArtDmIndex, SmartConfig, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import Batch, CasOp, FaaOp, ReadOp, WriteOp
from repro.errors import RetryLimitExceeded, SanViolation
from repro.san import ABA, ATOMIC_MIX, STALE_READ, TORN_READ, \
    UNLOCKED_WRITE, USE_AFTER_FREE, WRITE_AFTER_FREE, SanConfig


def fresh(monitor_config=None):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    monitor = cluster.attach_sanitizer(monitor_config)
    return cluster, monitor


def one(*verbs):
    """A generator protocol issuing the given verbs in order."""
    def gen():
        out = []
        for verb in verbs:
            out.append((yield verb))
        return out
    return gen()


def kinds(report):
    return [v.kind for v in report.violations]


# ---------------------------------------------------------------------------
# Lockset / ownership
# ---------------------------------------------------------------------------

class TestLockset:
    def test_unlocked_write_to_published_object_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "inner")
        writer = cluster.direct_executor()
        writer.run(one(WriteOp(addr, bytes(64))))          # creator
        other = cluster.direct_executor()
        other.run(one(ReadOp(addr, 64)))                   # published
        other.run(one(WriteOp(addr + 16, b"\xab" * 8)))    # no lock held!
        assert kinds(monitor.report) == [UNLOCKED_WRITE]
        violation = monitor.report.violations[0]
        assert "mn0+0x" in violation.render()
        assert violation.client == other.client_id

    def test_cas_locked_write_is_clean(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "inner")
        writer = cluster.direct_executor()
        writer.run(one(WriteOp(addr, bytes(64))))
        other = cluster.direct_executor()
        other.run(one(ReadOp(addr, 64)))
        # Acquire the object's header word, mutate, release (unlock writes
        # a different value than the CAS installed).
        other.run(one(CasOp(addr, 0, 1),
                      WriteOp(addr + 16, b"\xab" * 8),
                      WriteOp(addr, bytes(8))))
        assert monitor.report.clean, monitor.report.render_violations()

    def test_write_after_unlock_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "inner")
        cluster.direct_executor().run(one(WriteOp(addr, bytes(64))))
        other = cluster.direct_executor()
        other.run(one(ReadOp(addr, 64),
                      CasOp(addr, 0, 1),          # lock
                      WriteOp(addr, bytes(8)),    # unlock releases ownership
                      WriteOp(addr + 8, b"x" * 8)))  # late write: flagged
        assert kinds(monitor.report) == [UNLOCKED_WRITE]

    def test_creator_initialization_never_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 128, "inner")
        creator = cluster.direct_executor()
        creator.run(one(WriteOp(addr, bytes(128)),
                        WriteOp(addr + 8, b"y" * 16)))
        assert monitor.report.clean

    def test_external_sync_category_escape(self):
        cluster, monitor = fresh()
        seg = cluster.alloc(0, 64, "hash_table")       # holds the lock word
        directory = cluster.alloc(0, 64, "hash_table")  # written lock-free
        cluster.direct_executor().run(one(WriteOp(directory, bytes(64))))
        other = cluster.direct_executor()
        other.run(one(ReadOp(directory, 64)))
        # Holding a group lock in the *segment* legitimizes the directory
        # repoint (RACE split, Phase 4) ...
        other.run(one(CasOp(seg, 0, 1),
                      WriteOp(directory + 8, b"p" * 8)))
        assert monitor.report.clean
        # ... but holding nothing at all is still flagged.
        third = cluster.direct_executor()
        third.run(one(WriteOp(directory + 8, b"q" * 8)))
        assert kinds(monitor.report) == [UNLOCKED_WRITE]


# ---------------------------------------------------------------------------
# Torn reads
# ---------------------------------------------------------------------------

def run_concurrent(cluster, ops_by_worker):
    processes = []
    for wid, gens in enumerate(ops_by_worker):
        def worker(wid=wid, gens=gens):
            executor = cluster.sim_executor(wid % cluster.config.num_cns)
            for gen in gens:
                yield from executor.run(gen)
        processes.append(cluster.engine.process(worker()))
    for process in processes:
        cluster.engine.run_until_complete(
            process, limit=cluster.engine.now + 60_000_000_000)


class TestTornRead:
    def test_overlapping_read_write_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        run_concurrent(cluster, [
            [one(ReadOp(addr, 24))],
            [one(WriteOp(addr, b"w" * 24))],
        ])
        assert TORN_READ in kinds(monitor.report)
        violation = monitor.report.violations[0]
        assert "overlaps write" in violation.detail

    def test_single_word_overlap_is_nic_atomic(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        run_concurrent(cluster, [
            [one(ReadOp(addr, 24))],
            [one(WriteOp(addr + 16, b"w" * 8))],   # one aligned word
        ])
        assert monitor.report.clean

    def test_tear_tolerant_category_counted_not_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "leaf")        # checksummed: tolerated
        run_concurrent(cluster, [
            [one(ReadOp(addr, 24))],
            [one(WriteOp(addr, b"w" * 24))],
        ])
        assert monitor.report.clean
        assert monitor.report.torn_tolerated >= 1

    def test_sequential_access_never_torn(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, b"w" * 24)))
        cluster.direct_executor().run(one(ReadOp(addr, 24)))
        assert monitor.report.clean


# ---------------------------------------------------------------------------
# Atomic-word hygiene + ABA
# ---------------------------------------------------------------------------

class TestAtomicHygiene:
    def test_plain_write_partially_covering_cas_word(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(CasOp(addr, 0, 1)))
        executor.run(one(WriteOp(addr + 4, b"zz")))   # straddles the word
        assert ATOMIC_MIX in kinds(monitor.report)

    def test_plain_read_partially_covering_cas_word(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(CasOp(addr, 0, 1)))
        executor.run(one(ReadOp(addr + 2, 4)))
        assert ATOMIC_MIX in kinds(monitor.report)

    def test_unaligned_cas_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        cluster.direct_executor().run(one(CasOp(addr + 4, 0, 1)))
        assert kinds(monitor.report) == [ATOMIC_MIX]

    def test_full_word_write_is_legitimate_unlock(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(CasOp(addr, 0, 1), WriteOp(addr, bytes(8))))
        assert monitor.report.clean

    def test_aba_pattern_warned(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        a = cluster.direct_executor()
        b = cluster.direct_executor()
        b.run(one(CasOp(addr, 0, 7),                # registers the word
                  WriteOp(addr, bytes(8))))         # ... and releases it
        a.run(one(ReadOp(addr, 8)))                 # A observes value 0
        b.run(one(CasOp(addr, 0, 7),                # B: 0 -> 7
                  WriteOp(addr, bytes(8))))         # B: 7 -> 0 (A can't tell)
        a.run(one(CasOp(addr, 0, 9)))               # A's CAS succeeds: ABA
        assert monitor.report.clean                 # warning, not violation
        assert monitor.report.warning_count >= 1
        assert any(ABA in w for w in monitor.report.warnings)


# ---------------------------------------------------------------------------
# Use-after-free
# ---------------------------------------------------------------------------

class TestUseAfterFree:
    def test_read_of_freed_object_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "generic")
        executor.run(one(ReadOp(addr, 64)))
        assert kinds(monitor.report) == [USE_AFTER_FREE]

    def test_write_to_freed_object_flagged(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "generic")
        executor.run(one(WriteOp(addr, b"z" * 8)))
        assert kinds(monitor.report) == [WRITE_AFTER_FREE]

    def test_freed_leaf_read_is_stale_warning(self):
        # Shipped protocols free leaves that stale pointers still reach;
        # readers validate checksum + key, so DMSan only warns.
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "leaf")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "leaf")
        executor.run(one(ReadOp(addr, 64)))
        assert monitor.report.clean
        assert monitor.report.stale_reads == 1
        assert any(STALE_READ in w for w in monitor.report.warnings)

    def test_realloc_resets_tracking(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "generic")
        addr2 = cluster.alloc(0, 64, "generic")   # recycles the block
        assert addr2 == addr
        executor.run(one(ReadOp(addr2, 64)))      # fresh object: clean
        assert monitor.report.clean


# ---------------------------------------------------------------------------
# Policy / report plumbing
# ---------------------------------------------------------------------------

class TestPolicy:
    def test_on_violation_raise(self):
        cluster, monitor = fresh(SanConfig(on_violation="raise"))
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "generic")
        with pytest.raises(SanViolation, match="use-after-free"):
            executor.run(one(ReadOp(addr, 64)))

    def test_check_clean_raises_with_rendered_violations(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(64))))
        cluster.free(addr, 64, "generic")
        executor.run(one(ReadOp(addr, 64)))
        with pytest.raises(SanViolation, match="VIOLATIONS"):
            monitor.check_clean()

    def test_summary_counts_events(self):
        cluster, monitor = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()
        executor.run(one(WriteOp(addr, bytes(8)), ReadOp(addr, 8),
                         FaaOp(addr + 8, 1)))
        summary = monitor.report.summary()
        assert "CLEAN" in summary
        assert "3 events" in summary
        assert monitor.report.reads == 1
        assert monitor.report.writes == 1
        assert monitor.report.atomics == 1

    def test_retry_limit_carries_client_and_stats(self):
        cluster, _ = fresh()
        addr = cluster.alloc(0, 64, "generic")
        executor = cluster.direct_executor()

        def hot_loop():
            yield ReadOp(addr, 8)
            raise RetryLimitExceeded("lock acquisition starved", addr=addr)

        with pytest.raises(RetryLimitExceeded) as exc_info:
            executor.run(hot_loop())
        rendered = str(exc_info.value)
        assert "addr=mn0+0x" in rendered
        assert f"client={executor.client_id}" in rendered
        assert "stats[rt=1" in rendered


# ---------------------------------------------------------------------------
# The shipped protocols run clean under the monitor
# ---------------------------------------------------------------------------

SYSTEMS = {
    "art": lambda c: ArtDmIndex(c),
    "smart": lambda c: SmartIndex(c, SmartConfig(cache_budget_bytes=1 << 16)),
    "sphinx": lambda c: SphinxIndex(c, SphinxConfig(
        filter_budget_bytes=1 << 14)),
}


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_shipped_protocols_run_clean(system):
    cluster, monitor = fresh()
    index = SYSTEMS[system](cluster)
    rng = random.Random(7)
    keys = [encode_u64(rng.getrandbits(64)) for _ in range(240)]
    shards = [keys[i::4] for i in range(4)]
    inserts = [[index.client(w % 3).insert(k, b"v-" + k[:4]) for k in shard]
               for w, shard in enumerate(shards)]
    run_concurrent(cluster, inserts)
    mixed = [[index.client(w % 3).update(k, b"u-" + k[:4])
              for k in shard[:20]] +
             [index.client(w % 3).delete(k) for k in shard[20:30]]
             for w, shard in enumerate(shards)]
    run_concurrent(cluster, mixed)
    report = monitor.report
    assert report.clean, report.summary() + "\n" + "\n".join(
        report.render_violations())
    assert report.events > 1000   # the monitor really saw the workload
    assert report.objects_tracked > 100
