"""Concurrency tests: clients interleave at RDMA-verb granularity under
the simulation clock, exercising the paper's Sec. III-C mechanisms
(node locks, invalid marking, leaf checksums, INHT CAS propagation)."""

import random

import pytest

from repro.art import encode_str, encode_u64
from repro.baselines import ArtDmIndex, SmartConfig, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.tools import check_index


def fresh():
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


SYSTEMS = {
    "art": lambda c: ArtDmIndex(c),
    "smart": lambda c: SmartIndex(c, SmartConfig(cache_budget_bytes=1 << 16)),
    "sphinx": lambda c: SphinxIndex(c, SphinxConfig(
        filter_budget_bytes=1 << 14)),
}


def run_concurrent(cluster, ops_by_worker):
    """Run one op-generator list per worker concurrently; returns results
    per worker in order."""
    results = [[] for _ in ops_by_worker]

    def worker(wid, gens):
        executor = cluster.sim_executor(wid % cluster.config.num_cns)
        for gen in gens:
            value = yield from executor.run(gen)
            results[wid].append(value)

    processes = [cluster.engine.process(worker(w, gens))
                 for w, gens in enumerate(ops_by_worker)]
    for p in processes:
        cluster.engine.run_until_complete(p, limit=cluster.engine.now
                                          + 60_000_000_000)
    return results


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_concurrent_disjoint_inserts_all_visible(system):
    cluster = fresh()
    index = SYSTEMS[system](cluster)
    rng = random.Random(1)
    keys = [encode_u64(rng.getrandbits(64)) for _ in range(600)]
    shards = [keys[i::6] for i in range(6)]
    ops = [[index.client(w % 3).insert(k, b"v-" + k[:4]) for k in shard]
           for w, shard in enumerate(shards)]
    run_concurrent(cluster, ops)
    ex = cluster.direct_executor()
    client = index.client(0)
    for key in keys:
        assert ex.run(client.search(key)) == b"v-" + key[:4]
    report = check_index(cluster, index)
    assert report.clean, report.errors[:5]


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_concurrent_inserts_same_hot_region(system):
    """Many workers inserting keys sharing prefixes: exercises node locks,
    type switches (sphinx/art) and slot CAS races."""
    cluster = fresh()
    index = SYSTEMS[system](cluster)
    rng = random.Random(2)
    keys = [encode_str(f"hot{rng.randrange(100)}x{i}") for i in range(480)]
    shards = [keys[i::8] for i in range(8)]
    ops = [[index.client(w % 3).insert(k, b"w") for k in shard]
           for w, shard in enumerate(shards)]
    run_concurrent(cluster, ops)
    ex = cluster.direct_executor()
    client = index.client(1)
    missing = [k for k in keys if ex.run(client.search(k)) != b"w"]
    assert missing == [], f"{len(missing)} keys lost"
    report = check_index(cluster, index)
    assert report.clean, report.errors[:5]


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_concurrent_updates_last_writer_wins_consistently(system):
    cluster = fresh()
    index = SYSTEMS[system](cluster)
    key = encode_u64(777)
    ex = cluster.direct_executor()
    ex.run(index.client(0).insert(key, b"init"))
    ops = [[index.client(w % 3).update(key, b"W%d-%02d" % (w, i))
            for i in range(10)] for w in range(6)]
    run_concurrent(cluster, ops)
    final = ex.run(index.client(0).search(key))
    # The final value must be one of the written values, intact.
    assert final is not None
    assert final == b"init" or (final.startswith(b"W") and len(final) == 5)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_readers_never_observe_torn_values(system):
    cluster = fresh()
    index = SYSTEMS[system](cluster)
    ex = cluster.direct_executor()
    rng = random.Random(4)
    keys = [encode_u64(i * 1000) for i in range(40)]
    valid_values = {b"A" * 32, b"B" * 32, b"C" * 32}
    for key in keys:
        ex.run(index.client(0).insert(key, b"A" * 32))

    writers = [[index.client(w % 3).update(rng.choice(keys),
                                           [b"B" * 32, b"C" * 32][i % 2])
                for i in range(25)] for w in range(3)]
    observed = []

    def reader(wid):
        executor = cluster.sim_executor(wid % 3)
        client = index.client(wid % 3)
        local_rng = random.Random(wid)
        for _ in range(40):
            value = yield from executor.run(
                client.search(local_rng.choice(keys)))
            observed.append(value)

    processes = [cluster.engine.process(reader(w)) for w in range(3)]
    for w, gens in enumerate(writers):
        def writer(gens=gens, w=w):
            executor = cluster.sim_executor(w)
            for gen in gens:
                yield from executor.run(gen)
        processes.append(cluster.engine.process(writer()))
    for p in processes:
        cluster.engine.run_until_complete(
            p, limit=cluster.engine.now + 60_000_000_000)
    for value in observed:
        assert value in valid_values, value


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_concurrent_insert_delete_mix_consistent(system):
    cluster = fresh()
    index = SYSTEMS[system](cluster)
    ex = cluster.direct_executor()
    rng = random.Random(5)
    stable = [encode_u64(rng.getrandbits(64)) for _ in range(200)]
    churn = [encode_u64(rng.getrandbits(64)) for _ in range(200)]
    for key in stable + churn:
        ex.run(index.client(0).insert(key, b"s"))
    ops = []
    for w in range(4):
        gens = []
        for key in churn[w::4]:
            gens.append(index.client(w % 3).delete(key))
            gens.append(index.client(w % 3).insert(key, b"r"))
            gens.append(index.client(w % 3).delete(key))
        ops.append(gens)
    run_concurrent(cluster, ops)
    client = index.client(2)
    for key in stable:
        assert ex.run(client.search(key)) == b"s"
    for key in churn:
        assert ex.run(client.search(key)) is None
    report = check_index(cluster, index)
    assert report.clean, report.errors[:5]


def test_sphinx_type_switch_propagates_to_other_cn():
    """CN1 keeps searching while CN0's inserts force node type switches;
    CN1's INHT reads must follow the switched nodes (Invalid + CAS)."""
    cluster = fresh()
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    ex = cluster.direct_executor()
    # A cluster of keys under one prefix so the prefix node grows 4->16->48.
    base = [encode_str(f"shared-prefix-{i:03d}") for i in range(120)]
    ex.run(index.client(1).insert(base[0], b"v"))
    ex.run(index.client(1).search(base[0]))  # warm CN1 filter

    def writer():
        executor = cluster.sim_executor(0)
        client = index.client(0)
        for key in base[1:]:
            yield from executor.run(client.insert(key, b"v"))

    search_results = []

    def searcher():
        executor = cluster.sim_executor(1)
        client = index.client(1)
        for _ in range(150):
            value = yield from executor.run(client.search(base[0]))
            search_results.append(value)

    p1 = cluster.engine.process(writer())
    p2 = cluster.engine.process(searcher())
    for p in (p1, p2):
        cluster.engine.run_until_complete(
            p, limit=cluster.engine.now + 60_000_000_000)
    assert all(v == b"v" for v in search_results)
    assert index.client(0).metrics.type_switches > 0
    # After the dust settles every key is reachable from CN1.
    client1 = index.client(1)
    for key in base:
        assert ex.run(client1.search(key)) == b"v"


def test_concurrent_scans_with_inserts_do_not_crash_and_see_stable_keys():
    cluster = fresh()
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    ex = cluster.direct_executor()
    stable = sorted(encode_u64(i * 37) for i in range(300))
    for key in stable:
        ex.run(index.client(0).insert(key, b"s"))
    scans = []

    def scanner():
        executor = cluster.sim_executor(1)
        client = index.client(1)
        for i in range(20):
            out = yield from executor.run(
                client.scan_count(stable[i * 3], 30))
            scans.append(out)

    def inserter():
        executor = cluster.sim_executor(0)
        client = index.client(0)
        rng = random.Random(9)
        for _ in range(150):
            yield from executor.run(
                client.insert(encode_u64(rng.getrandbits(64)), b"n"))

    p1 = cluster.engine.process(scanner())
    p2 = cluster.engine.process(inserter())
    for p in (p1, p2):
        cluster.engine.run_until_complete(
            p, limit=cluster.engine.now + 60_000_000_000)
    for out in scans:
        got_keys = [k for k, _ in out]
        assert got_keys == sorted(got_keys)  # ordered
        # Every stable key inside the scanned window must be present.
        if got_keys:
            lo, hi = got_keys[0], got_keys[-1]
            expect = {k for k in stable if lo <= k <= hi}
            assert expect <= set(got_keys)
