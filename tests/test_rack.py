"""Rack-scale topology tests (ISSUE 9 tentpole): shard maps, group-scoped
cluster views, the migration routing protocol, and online rebalancing
through the :class:`repro.recover.Rebalancer`.
"""

import pytest

from repro.core import SphinxConfig, SphinxIndex
from repro.dm import (
    Cluster,
    ClusterConfig,
    ClusterSpec,
    GroupCluster,
    Migration,
    Rack,
    ShardMap,
    TopologyEvent,
)
from repro.dm.memory import addr_mn
from repro.dm.rdma import OpStats
from repro.errors import ConfigError, InvalidArgument
from repro.recover import Rebalancer

SMALL = ClusterSpec(num_cns=2, num_mns=4, group_size=2, num_shards=16,
                    clients=8, mn_capacity_bytes=16 << 20)


def _keys(n, tag="k"):
    return [f"{tag}/{i:04d}".encode() for i in range(n)]


def _load(rack, keys, cn=0):
    client = rack.client(cn)
    ex = rack.cluster.direct_executor()
    for i, key in enumerate(keys):
        ex.run(client.insert(key, b"v%d" % i))
    return client, ex


# ---------------------------------------------------------------------------
# ClusterSpec / TopologyEvent validation
# ---------------------------------------------------------------------------

def test_cluster_spec_validates():
    assert ClusterSpec().num_groups == 8
    with pytest.raises(ConfigError):
        ClusterSpec(num_mns=6, group_size=4).validate()
    with pytest.raises(ConfigError):
        ClusterSpec(num_mns=8, group_size=4, num_shards=1).validate()
    with pytest.raises(ConfigError):
        ClusterSpec(clients=0).validate()
    with pytest.raises(ConfigError):
        TopologyEvent(at_ns=0, kind="mn_explode").validate()
    with pytest.raises(ConfigError):
        TopologyEvent(at_ns=-1, kind="mn_join").validate()


# ---------------------------------------------------------------------------
# ShardMap: consistent hashing with minimal movement
# ---------------------------------------------------------------------------

def test_shard_map_assignment_is_total_and_stable():
    shards = ShardMap(64, [0, 1, 2])
    assert len(shards.assignment) == 64
    assert set(shards.assignment) <= {0, 1, 2}
    again = ShardMap(64, [2, 1, 0])      # order must not matter
    assert shards.assignment == again.assignment
    key = b"hello"
    assert shards.shard_for_key(key) == shards.shard_for_key(key)
    assert shards.group_for_key(key) \
        == shards.assignment[shards.shard_for_key(key)]


def test_shard_map_join_moves_only_to_new_group():
    shards = ShardMap(128, [0, 1, 2])
    before = list(shards.assignment)
    moves = shards.plan_join(3)
    assert moves, "a joining group should attract some shards"
    assert all(dst == 3 for _s, _src, dst in moves)
    assert all(before[s] == src for s, src, _dst in moves)
    # Minimal movement: every shard not in the plan keeps its owner.
    fresh = ShardMap(128, [0, 1, 2, 3])
    moved = {s for s, _src, _dst in moves}
    for s in range(128):
        expect = 3 if s in moved else before[s]
        assert fresh.assignment[s] == expect


def test_shard_map_leave_drains_exactly_that_group():
    shards = ShardMap(128, [0, 1, 2, 3])
    owned = set(shards.shards_of(1))
    moves = shards.plan_leave(1)
    assert {s for s, _src, _dst in moves} == owned
    assert all(src == 1 and dst != 1 for _s, src, dst in moves)
    # The destinations are what a ring without group 1 picks.
    fresh = ShardMap(128, [0, 2, 3])
    for s, _src, dst in moves:
        assert fresh.assignment[s] == dst


def test_shard_map_membership_guards():
    shards = ShardMap(16, [0])
    with pytest.raises(ConfigError):
        shards.plan_join(0)
    with pytest.raises(ConfigError):
        shards.plan_leave(7)
    with pytest.raises(ConfigError):
        shards.plan_leave(0)             # cannot drain the last group
    with pytest.raises(InvalidArgument):
        ShardMap(0, [0])
    with pytest.raises(InvalidArgument):
        ShardMap(4, [])


# ---------------------------------------------------------------------------
# GroupCluster: allocation confined to the group's MNs
# ---------------------------------------------------------------------------

def test_group_cluster_confines_allocation():
    cluster = Cluster(ClusterConfig(num_mns=4, num_cns=1,
                                    mn_capacity_bytes=16 << 20))
    view = GroupCluster(cluster, [1, 2], seed=11)
    index = SphinxIndex(view, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    for i, key in enumerate(_keys(120)):
        ex.run(client.insert(key, b"v%d" % i))
        assert ex.run(client.search(key)) == b"v%d" % i
    assert cluster.memories[1].allocated_bytes() > 0
    assert cluster.memories[2].allocated_bytes() > 0
    for outsider in (0, 3):
        assert cluster.memories[outsider].allocated_bytes() == 0
    # The view's own allocators stamp group-MN addresses.
    assert addr_mn(view.alloc_for_leaf(b"some-key", 64)) in (1, 2)
    assert addr_mn(view.alloc_for_prefix(b"pre", 64)) in (1, 2)
    # Delegation: the view shares the rack cluster's engine and config.
    assert view.engine is cluster.engine
    assert view.config is cluster.config


# ---------------------------------------------------------------------------
# Rack: routing, registry, elasticity, fsck
# ---------------------------------------------------------------------------

def test_rack_routes_and_survives_round_trip():
    rack = Rack(SMALL)
    keys = _keys(300)
    client, ex = _load(rack, keys)
    assert rack.total_keys() == len(keys)
    by_group = rack.keys_by_group()
    assert sum(by_group.values()) == len(keys)
    assert all(count > 0 for count in by_group.values()), (
        "300 keys over 2 groups should land on both")
    for i, key in enumerate(keys):
        assert ex.run(client.search(key)) == b"v%d" % i
    assert ex.run(client.delete(keys[0])) is True
    assert ex.run(client.search(keys[0])) is None
    assert rack.total_keys() == len(keys) - 1
    assert all(code == 0 for code in _fsck_codes(rack))


def _fsck_codes(rack):
    return [0 if report.clean and not report.findings else 2
            for _gid, report in rack.fsck_all()]


def test_rack_key_lives_in_exactly_one_cell():
    rack = Rack(SMALL)
    keys = _keys(200)
    _client, ex = _load(rack, keys)
    for key in keys[:40]:
        owner = rack.group_of(key)
        for gid in rack.live_groups():
            got = ex.run(rack.group_index(gid).client(0).search(key))
            if gid == owner:
                assert got is not None
            else:
                assert got is None, (
                    f"{key!r} leaked into non-owner group {gid}")


def test_migration_routing_follows_copied_set():
    rack = Rack(SMALL)
    keys = _keys(50)
    client, ex = _load(rack, keys)
    key = keys[0]
    shard = rack.shard_of(key)
    src = rack.shards.assignment[shard]
    dst = next(g for g in rack.live_groups() if g != src)
    migration = Migration(shard=shard, src=src, dst=dst)
    rack.migrations[shard] = migration
    assert rack.group_of(key) == src
    migration.copied.add(key)
    assert rack.group_of(key) == dst
    # A brand-new insert into a migrating shard goes straight to dst.
    probe = next(cand for cand in
                 (b"brand-new/%d/%d" % (shard, i) for i in range(100_000))
                 if rack.shard_of(cand) == shard
                 and cand not in rack.registry[shard])
    ex.run(client.insert(probe, b"new"))
    assert probe in migration.copied
    assert ex.run(rack.group_index(dst).client(0).search(probe)) == b"new"
    # Deleting un-marks, so a re-insert routes through the source again.
    ex.run(client.delete(probe))
    assert probe not in migration.copied
    del rack.migrations[shard]


def test_add_group_provisions_live_nodes():
    rack = Rack(SMALL)
    mns_before = set(rack.cluster.memories)
    gid = rack.add_group()
    assert gid == SMALL.num_groups
    new_mns = set(rack.cluster.memories) - mns_before
    assert len(new_mns) == SMALL.group_size
    assert all(mn in rack.cluster.mn_nics for mn in new_mns)
    assert set(rack.group_view(gid).memories) == new_mns
    assert gid in rack.live_groups()


def _run_process(rack, gen, name):
    engine = rack.cluster.engine
    engine.run_until_complete(engine.process(gen, name=name),
                              limit=engine.now + 10_000_000_000_000)


def test_rebalancer_join_then_leave_preserves_every_key():
    rack = Rack(SMALL)
    keys = _keys(400)
    client, ex = _load(rack, keys)
    rebalancer = Rebalancer(rack)
    _run_process(rack, rebalancer.join(), "join")
    joined = SMALL.num_groups
    assert joined in rack.shards.groups
    assert rack.keys_by_group()[joined] > 0, "join attracted no keys"
    _run_process(rack, rebalancer.leave(0), "leave")
    assert 0 in rack.retired_groups
    assert 0 not in rack.live_groups()
    assert rack.keys_by_group()[0] == 0
    assert not rack.migrations, "all migrations must retire"
    assert rack.total_keys() == len(keys)
    for i, key in enumerate(keys):
        assert ex.run(client.search(key)) == b"v%d" % i, (
            f"{key!r} lost across join+leave")
    assert all(code == 0 for code in _fsck_codes(rack))
    # Migration traffic was timed: the rebalancer burned verbs.
    assert rebalancer.op_stats.reads + rebalancer.op_stats.writes > 0
    assert sum(m[3] for m in rebalancer.completed) > 0


def test_rebalancer_migration_is_online():
    """Keys stay readable mid-migration: interleave a reader process with
    the rebalancer on the same simulated clock."""
    rack = Rack(SMALL)
    keys = _keys(250)
    client, _ex = _load(rack, keys)
    rebalancer = Rebalancer(rack)
    engine = rack.cluster.engine
    stats = OpStats()
    executor = rack.cluster.sim_executor(1, stats)
    reads = {"ok": 0}

    def reader():
        while True:
            for i in (0, 97, 201):
                got = yield from executor.run(client.search(keys[i]))
                assert got == b"v%d" % i, (
                    f"{keys[i]!r} unreadable mid-migration")
                reads["ok"] += 1
            yield engine.timeout(2_000)

    engine.process(reader(), name="reader")
    _run_process(rack, rebalancer.join(), "join")
    assert reads["ok"] > 0, "the reader never overlapped the migration"
    assert all(code == 0 for code in _fsck_codes(rack))
