"""Differential/property suite for the leaf-locator tier and Outback
(ISSUE 8 satellites).

Two families of seeded workloads (104 cases total, u64 + email keys,
zipfian + uniform request streams, balanced + insert-heavy mixes):

* **Sphinx differential**: locator-enabled Sphinx must return
  byte-identical results, op by op, to locator-disabled Sphinx on the
  same script - the locator is a pure fast path, never a semantic
  change - and the final locator-enabled state must pass fsck clean.
  Scripts mix value sizes (8..120 B) so updates move leaves
  out-of-place and deletes free them, exercising the staleness /
  invalidation protocol (DESIGN.md §12), not just the hit path.

* **Outback vs B+ oracle**: the MPH-directory baseline must agree with
  a dict model on every answer, and with the B+ tree extension on every
  committed key.  :class:`BplusClient` has no delete, so keys that were
  ever deleted are excluded from the B+ mirror (the model still covers
  them).
"""

import os
import random

import pytest

from repro.baselines import (
    BplusConfig,
    BplusIndex,
    OutbackConfig,
    OutbackIndex,
)
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.tools.fsck import check_index
from repro.util.zipf import ScrambledZipfianGenerator, UniformGenerator
from repro.ycsb import make_dataset

# Seeded sweeps: tier-1 can deselect with -m "not property"; the nightly
# workflow widens both families proportionally via REPRO_PROPERTY_SEEDS
# (50 = the stock 56 + 48 cases).
pytestmark = pytest.mark.property

N_SEEDS = int(os.environ.get("REPRO_PROPERTY_SEEDS", "50"))
N_KEYS = 48
OPS = 220
ZIPF_THETA = 0.99

DIFF_CASES = [(kind, dist, mix, seed)
              for kind in ("u64", "email")
              for dist in ("zipfian", "uniform")
              for mix in ("balanced", "insert_heavy")
              for seed in range(max(1, round(7 * N_SEEDS / 50)))]

OUTBACK_CASES = [(kind, dist, seed)
                 for kind in ("u64", "email")
                 for dist in ("zipfian", "uniform")
                 for seed in range(max(1, round(12 * N_SEEDS / 50)))]


def _universe(kind, seed):
    """Loaded keys plus an insert pool, deterministic per (kind, seed)."""
    dataset = make_dataset(kind, N_KEYS, seed=seed % 3 + 1,
                           insert_pool=N_KEYS)
    return list(dataset.keys), list(dataset.keys) + list(dataset.insert_pool)


def _script(kind, dist, mix, seed, value_sizes):
    """One deterministic op script: [(op, key, value), ...]."""
    preload, keys = _universe(kind, seed)
    rng = random.Random(seed * 31337 + 11)
    if dist == "zipfian":
        chooser = ScrambledZipfianGenerator(len(keys), ZIPF_THETA, rng)
    else:
        chooser = UniformGenerator(len(keys), rng)
    if mix == "balanced":
        names = ("search", "insert", "update", "delete", "scan")
        weights = (0.40, 0.18, 0.22, 0.12, 0.08)
    else:                       # insert-heavy: churn the key population
        names = ("search", "insert", "update", "delete", "scan")
        weights = (0.22, 0.45, 0.15, 0.13, 0.05)
    ops = []
    for step in range(OPS):
        key = keys[chooser.next() % len(keys)]
        op = rng.choices(names, weights=weights, k=1)[0]
        size = rng.choice(value_sizes)
        stamp = f"{seed}.{step}.".encode()
        value = (stamp * (size // len(stamp) + 1))[:size]
        ops.append((op, key, value))
    return preload, ops


# ---------------------------------------------------------------------------
# Sphinx: locator on == locator off, byte for byte
# ---------------------------------------------------------------------------

def _run_sphinx(use_locator, preload, ops):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(
        filter_budget_bytes=1 << 14, use_locator=use_locator,
        locator_budget_bytes=1 << 12))
    client = index.client(0)
    ex = cluster.direct_executor()
    for i, key in enumerate(preload):
        ex.run(client.insert(key, f"seed{i}".encode()))
    log = []
    for op, key, value in ops:
        if op == "search":
            log.append(("s", ex.run(client.search(key))))
        elif op == "insert":
            log.append(("i", ex.run(client.insert(key, value))))
        elif op == "update":
            log.append(("u", ex.run(client.update(key, value))))
        elif op == "delete":
            log.append(("d", ex.run(client.delete(key))))
        else:
            log.append(("c", ex.run(client.scan_count(key, 6))))
    return cluster, index, client, log


@pytest.mark.parametrize("kind,dist,mix,seed", DIFF_CASES,
                         ids=[f"{k}-{d}-{m}-{s}"
                              for k, d, m, s in DIFF_CASES])
def test_locator_differential_identity(kind, dist, mix, seed):
    preload, ops = _script(kind, dist, mix, seed,
                           value_sizes=(8, 24, 56, 120))
    _c0, _i0, _cl0, plain = _run_sphinx(False, preload, ops)
    cluster, index, client, with_loc = _run_sphinx(True, preload, ops)
    assert with_loc == plain, (
        f"{kind}/{dist}/{mix} seed={seed}: locator changed a result")
    stats = client.cache_stats()
    # Every search consults the locator first, so the fast path ran.
    assert stats["locator_hits"] + stats["locator_misses"] > 0
    report = check_index(cluster, index)
    assert report.clean, (
        f"{kind}/{dist}/{mix} seed={seed}: fsck found "
        f"{report.findings!r} with the locator on")


def test_locator_counters_only_when_enabled():
    """Locator-disabled clients keep the exact pre-locator counter
    shape (BENCH baselines and dashboards depend on it)."""
    preload, ops = _script("u64", "uniform", "balanced", 0,
                           value_sizes=(8,))
    _c, _i, plain_client, _log = _run_sphinx(False, preload, ops[:20])
    _c, _i, loc_client, _log = _run_sphinx(True, preload, ops[:20])
    plain_keys = set(plain_client.counters().as_dict())
    loc_keys = set(loc_client.counters().as_dict())
    assert "locator_hits" not in plain_keys
    assert {"locator_hits", "locator_misses",
            "locator_fallbacks"} <= loc_keys


# ---------------------------------------------------------------------------
# Outback vs the B+ oracle (and a dict model)
# ---------------------------------------------------------------------------

def _build_outback():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    # Low rebuild threshold: at property-test scale the delta overflows
    # every few dozen inserts, so each run crosses several seeded MPH
    # rebuilds instead of living entirely in the delta map.
    index = OutbackIndex(cluster, OutbackConfig(rebuild_min=16))
    return cluster, index, index.client(0), cluster.direct_executor()


def _build_bplus(key_width):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = BplusIndex(cluster, BplusConfig(key_width=key_width))
    return cluster, index, index.client(0), cluster.direct_executor()


@pytest.mark.parametrize("kind,dist,seed", OUTBACK_CASES,
                         ids=[f"{k}-{d}-{s}" for k, d, s in OUTBACK_CASES])
def test_outback_agrees_with_bplus_oracle(kind, dist, seed):
    preload, ops = _script(kind, dist, "balanced", seed,
                           value_sizes=(8, 24, 56))
    _oc, oindex, oclient, oex = _build_outback()
    key_width = 8 if kind == "u64" else 32
    _bc, _bindex, bclient, bex = _build_bplus(key_width)
    model = {}
    ever_deleted = set()
    for i, key in enumerate(preload):
        val = f"seed{i}".encode()
        oex.run(oclient.insert(key, val))
        bex.run(bclient.insert(key, val))
        model[key] = val
    for step, (op, key, value) in enumerate(ops):
        tag = f"{kind}/{dist} seed={seed} step={step}"
        mirror = key not in ever_deleted
        if op == "search":
            got = oex.run(oclient.search(key))
            assert got == model.get(key), f"{tag}: search diverged"
            if mirror:
                assert bex.run(bclient.search(key)) == got, (
                    f"{tag}: outback and bplus disagree on search")
        elif op == "insert":
            was_new = oex.run(oclient.insert(key, value))
            assert was_new == (key not in model), f"{tag}: insert flag"
            if mirror:
                bex.run(bclient.insert(key, value))
            model[key] = value
        elif op == "update":
            found = oex.run(oclient.update(key, value))
            assert found == (key in model), f"{tag}: update flag"
            if mirror:
                assert bex.run(bclient.update(key, value)) == found, (
                    f"{tag}: outback and bplus disagree on update")
            if found:
                model[key] = value
        elif op == "delete":
            removed = oex.run(oclient.delete(key))
            assert removed == (key in model), f"{tag}: delete flag"
            model.pop(key, None)
            ever_deleted.add(key)       # bplus has no delete: stop mirror
        else:
            pairs = oex.run(oclient.scan_count(key, 6))
            expect = sorted(k for k in model if k >= key)[:6]
            assert [k for k, _v in pairs] == expect, f"{tag}: scan window"
            for k, v in pairs:
                assert v == model[k], f"{tag}: scan value"
    # Every committed never-deleted key: outback == bplus == model.
    for key, val in sorted(model.items()):
        got = oex.run(oclient.search(key))
        assert got == val, f"final: outback lost {key!r}"
        if key not in ever_deleted:
            assert bex.run(bclient.search(key)) == val, (
                f"final: bplus oracle disagrees on {key!r}")
    # Deleted keys stay deleted in outback (directory is authoritative).
    for key in sorted(ever_deleted - set(model)):
        assert oex.run(oclient.search(key)) is None, (
            f"final: outback resurrected {key!r}")
    # The mixed run exercised the incremental-rebuild machinery: the
    # directory exists and point lookups route through MPH slots.
    counters = oclient.counters().as_dict()
    assert counters["searches"] > 0
    assert oindex.rebuilds >= 1 and oindex.directory is not None
