"""Determinism of the chaos substrate (ISSUE 3 satellite).

The fault injector is part of the simulation, so it obeys the same
contract as the engine: one seed, one history.  These tests pin down

* bit-identical fault schedules, OpStats, and simulated clocks across
  two runs of the same seeded plan;
* bit-identical chaos benchmark cells across repeats and across the
  fork-pool grid path;
* the zero-overhead guarantee: an attached-but-empty plan, and a grid
  with ``chaos_seed=None``, are byte-identical to runs with no fault
  machinery at all (including the ``row()`` schema);
* (env-gated) the fault-free smoke grid still reproduces the committed
  BENCH_2 baseline digits exactly.
"""

import dataclasses
import json
import os

import pytest

from repro.art import encode_str
from repro.bench import CellSpec, clear_setup_caches, run_cell, run_grid
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats
from repro.errors import RetryLimitExceeded
from repro.fault import FaultPlan

TINY = dict(num_keys=900, ops=120, workers=6, warmup_ops_per_cn=60)

CHAOS_CELLS = [
    CellSpec(system="Sphinx", dataset="u64", workload="A", chaos_seed=5,
             **TINY),
    CellSpec(system="ART", dataset="u64", workload="C", chaos_seed=5,
             **TINY),
]


@pytest.fixture(autouse=True)
def _fresh_snapshots():
    clear_setup_caches()
    yield
    clear_setup_caches()


def _stats_tuple(stats: OpStats):
    return tuple(getattr(stats, f.name)
                 for f in dataclasses.fields(OpStats))


def _chaos_run(seed: int):
    """One fixed op sequence under FaultPlan.chaos(seed); returns every
    observable the determinism contract covers."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"d/{i:03d}") for i in range(24)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    cluster.attach_faults(FaultPlan.chaos(seed, intensity=4.0))
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine
    outcomes = []

    def mix():
        for step in range(60):
            key = keys[step % len(keys)]
            try:
                if step % 3 == 0:
                    got = yield from executor.run(client.search(key))
                    outcomes.append(("s", got))
                elif step % 3 == 1:
                    yield from executor.run(
                        client.update(key, f"u{step}".encode()))
                    outcomes.append(("u", True))
                else:
                    pairs = yield from executor.run(client.scan_count(key, 4))
                    outcomes.append(("c", len(pairs)))
            except RetryLimitExceeded:
                outcomes.append(("fail", step))

    engine.run_until_complete(engine.process(mix(), name="det"))
    return (cluster.injector.schedule(), dict(cluster.injector.counters),
            _stats_tuple(stats), engine.now, tuple(outcomes))


def test_same_seed_same_schedule_stats_and_clock():
    first = _chaos_run(11)
    second = _chaos_run(11)
    assert first[0] == second[0], "fault schedules diverged"
    assert first[1] == second[1], "fault counters diverged"
    assert first[2] == second[2], "OpStats diverged"
    assert first[3] == second[3], "simulated clocks diverged"
    assert first[4] == second[4], "op outcomes diverged"
    # And the schedule is non-trivial: the plan actually fired.
    assert len(first[0]) > 0


def test_different_seed_different_schedule():
    assert _chaos_run(11)[0] != _chaos_run(12)[0]


# -- chaos benchmark cells -------------------------------------------------

def test_chaos_cell_bit_identical_across_repeats():
    first = run_cell(CHAOS_CELLS[0])
    second = run_cell(CHAOS_CELLS[0])
    assert first.row() == second.row()
    assert first.sim_ns == second.sim_ns
    assert first.failed_ops == second.failed_ops
    assert first.faults == second.faults
    assert first.latency.samples == second.latency.samples
    # The plan really perturbed the run.
    assert sum(first.faults.values()) > 0


def test_chaos_grid_parallel_matches_serial():
    serial = run_grid(CHAOS_CELLS, parallel=0)
    parallel = run_grid(CHAOS_CELLS, parallel=2)
    assert [r.row() for r in serial] == [r.row() for r in parallel]
    for s, p in zip(serial, parallel):
        assert s.failed_ops == p.failed_ops
        assert s.faults == p.faults
        assert s.latency.samples == p.latency.samples


def test_chaos_does_not_pollute_fault_free_cells():
    """chaos_seed is excluded from the snapshot keys: a fault-free cell
    run after a chaos cell must match one run in a fresh process."""
    clean_cell = CellSpec(system="Sphinx", dataset="u64", workload="A",
                          **TINY)
    alone = run_cell(clean_cell)
    clear_setup_caches()
    run_cell(CHAOS_CELLS[0])
    after_chaos = run_cell(clean_cell)
    assert alone.row() == after_chaos.row()
    assert alone.latency.samples == after_chaos.latency.samples
    assert after_chaos.failed_ops == 0 and after_chaos.faults == {}


# -- zero overhead ---------------------------------------------------------

def test_empty_plan_is_zero_overhead():
    """Attaching a plan with no rules must not move a single simulated
    digit: the empty ruleset draws no RNG and injects nothing."""

    def run(attach_empty):
        cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
        index = SphinxIndex(cluster,
                            SphinxConfig(filter_budget_bytes=1 << 14))
        client = index.client(0)
        ex = cluster.direct_executor()
        keys = [encode_str(f"z/{i:03d}") for i in range(24)]
        for i, key in enumerate(keys):
            ex.run(client.insert(key, f"v{i}".encode()))
        if attach_empty:
            cluster.attach_faults(FaultPlan(seed=0, rules=()))
        stats = OpStats()
        executor = cluster.sim_executor(0, stats)
        engine = cluster.engine

        def mix():
            for step, key in enumerate(keys * 3):
                if step % 2:
                    yield from executor.run(client.search(key))
                else:
                    yield from executor.run(
                        client.update(key, f"u{step}".encode()))

        engine.run_until_complete(engine.process(mix(), name="zo"))
        return _stats_tuple(stats), engine.now

    assert run(False) == run(True)


def test_fault_free_row_schema_unchanged():
    """Fault-free RunResult.row() must not grow chaos columns - the
    committed figure tables and baseline comparisons parse it."""
    result = run_cell(CellSpec(system="Sphinx", dataset="u64",
                               workload="A", **TINY))
    assert set(result.row()) == {
        "system", "workload", "dataset", "workers", "ops",
        "throughput_mops", "avg_latency_us", "p99_latency_us",
        "round_trips_per_op", "messages_per_op"}
    assert result.failed_ops == 0 and result.faults == {}


BASELINE = os.path.join(os.path.dirname(__file__), "..",
                        "benchmarks", "results", "BENCH_2.baseline.json")


@pytest.mark.skipif(not os.environ.get("REPRO_BASELINE_CHECK"),
                    reason="full-scale baseline identity check is slow; "
                           "set REPRO_BASELINE_CHECK=1 (CI chaos job)")
def test_fault_free_smoke_cell_matches_bench2_baseline():
    """The committed BENCH_2 smoke baseline was produced before the fault
    substrate existed: with no plan attached, the same cell must still
    land on the identical simulated digits (true zero overhead)."""
    with open(BASELINE) as fh:
        cells = json.load(fh)["cells"]
    want = next(c for c in cells if (c["system"], c["dataset"],
                                     c["workload"]) == ("ART", "u64", "A"))
    got = run_cell(CellSpec(system="ART", dataset="u64", workload="A",
                            num_keys=15_000, ops=want["ops"],
                            workers=want["workers"]))
    assert got.sim_ns == want["sim_ns"]
    assert got.ops == want["ops"]
