"""Targeted tests of the remote-ART engine's structural operations."""

import random

import pytest

from repro.art import encode_str, encode_u64
from repro.art.layout import (
    NODE4,
    NODE16,
    NODE48,
    NODE256,
    NODE_CAPACITY,
    STATUS_INVALID,
    decode_node,
    node_size,
)
from repro.baselines import ArtDmIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.core.remote_art import EMPTY_SUBTREE, RETRY
from repro.dm import Cluster, ClusterConfig
from repro.dm.memory import addr_mn, addr_offset


def fresh_art():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = ArtDmIndex(cluster)
    return cluster, index, index.client(0), cluster.direct_executor()


def read_raw_node(cluster, addr, node_type):
    memory = cluster.memories[addr_mn(addr)]
    return decode_node(memory.read(addr_offset(addr), node_size(node_type)))


def test_type_switch_progression_4_16_48_256():
    cluster, index, client, ex = fresh_art()
    # 60 distinct bytes under one 3-byte prefix: N4 -> N16 -> N48 -> N256.
    keys = [encode_str("ab/" + chr(33 + i)) for i in range(60)]
    for key in keys:
        ex.run(client.insert(key, b"v"))
    assert client.metrics.type_switches >= 3
    for key in keys:
        assert ex.run(client.search(key)) == b"v"
    # The prefix node is now a Node-48 or bigger.
    root = read_raw_node(cluster, index.root_addr, NODE256)
    slot = root.find_child(ord("a"))
    assert not slot.is_leaf and slot.size_class >= NODE48


def test_count_is_append_cursor():
    cluster, index, client, ex = fresh_art()
    keys = [encode_str(f"zz/{c}") for c in "abc"]
    for key in keys:
        ex.run(client.insert(key, b"v"))
    root = read_raw_node(cluster, index.root_addr, NODE256)
    slot = root.find_child(ord("z"))
    node = read_raw_node(cluster, slot.addr, slot.size_class)
    # Created by a split with 2 children, one appended: cursor == 3.
    assert node.header.count == 3
    assert node.occupied_count() == 3
    # Deletes clear slots but never rewind the cursor.
    ex.run(client.delete(keys[0]))
    node = read_raw_node(cluster, slot.addr, slot.size_class)
    assert node.header.count == 3
    assert node.occupied_count() == 2


def test_hole_reuse_when_cursor_full():
    cluster, index, client, ex = fresh_art()
    keys = [encode_str(f"q/{c}") for c in "abcd"]
    for key in keys:
        ex.run(client.insert(key, b"v"))
    root = read_raw_node(cluster, index.root_addr, NODE256)
    slot = root.find_child(ord("q"))
    assert slot.size_class == NODE4
    node = read_raw_node(cluster, slot.addr, NODE4)
    assert node.header.count == NODE_CAPACITY[NODE4]
    # Delete one, insert another: the cursor is full, so the engine must
    # reuse the hole (no type switch).
    switches_before = client.metrics.type_switches
    ex.run(client.delete(keys[1]))
    ex.run(client.insert(encode_str("q/e"), b"v"))
    assert client.metrics.type_switches == switches_before
    node = read_raw_node(cluster, slot.addr, NODE4)
    assert node.occupied_count() == 4
    assert ex.run(client.search(encode_str("q/e"))) == b"v"
    # One more forces the switch.
    ex.run(client.insert(encode_str("q/f"), b"v"))
    assert client.metrics.type_switches == switches_before + 1
    for suffix in "acdef":
        assert ex.run(client.search(encode_str(f"q/{suffix}"))) == b"v"


def test_old_node_invalid_after_switch():
    cluster, index, client, ex = fresh_art()
    keys = [encode_str(f"w/{c}") for c in "abcd"]
    for key in keys:
        ex.run(client.insert(key, b"v"))
    root = read_raw_node(cluster, index.root_addr, NODE256)
    old_addr = root.find_child(ord("w")).addr
    ex.run(client.insert(encode_str("w/e"), b"v"))  # N4 -> N16
    old = read_raw_node(cluster, old_addr, NODE4)
    assert old.header.status == STATUS_INVALID


def test_empty_node_replaced_by_insert():
    cluster, index, client, ex = fresh_art()
    # Build an inner node then empty it with deletes.
    ex.run(client.insert(encode_str("m/aa"), b"1"))
    ex.run(client.insert(encode_str("m/ab"), b"2"))
    ex.run(client.delete(encode_str("m/aa")))
    ex.run(client.delete(encode_str("m/ab")))
    # An insert diverging inside the (now empty) node's compressed path
    # must replace it rather than livelock.
    assert ex.run(client.insert(encode_str("m/x"), b"3"))
    assert client.metrics.empty_replacements == 1
    assert ex.run(client.search(encode_str("m/x"))) == b"3"
    assert ex.run(client.search(encode_str("m/aa"))) is None


def test_recover_leaf_key_sentinels():
    cluster, index, client, ex = fresh_art()
    ex.run(client.insert(encode_str("r/aa"), b"1"))
    ex.run(client.insert(encode_str("r/ab"), b"2"))
    root = read_raw_node(cluster, index.root_addr, NODE256)
    slot = root.find_child(ord("r"))
    node = read_raw_node(cluster, slot.addr, slot.size_class)
    witness = ex.run(client._recover_leaf_key(node))
    assert witness in (encode_str("r/aa"), encode_str("r/ab"))
    ex.run(client.delete(encode_str("r/aa")))
    ex.run(client.delete(encode_str("r/ab")))
    node = read_raw_node(cluster, slot.addr, slot.size_class)
    assert ex.run(client._recover_leaf_key(node)) is EMPTY_SUBTREE


def test_chase_leaf_slot():
    cluster, index, client, ex = fresh_art()
    key = encode_str("c/hase")
    ex.run(client.insert(key, b"v"))
    root = read_raw_node(cluster, index.root_addr, NODE256)
    leaf_addr = root.find_child(ord("c")).addr
    found = ex.run(client._chase_leaf_slot(key, leaf_addr))
    assert found is not None and found is not RETRY
    _addr, _view, slot = found
    assert slot.addr == leaf_addr
    # A different target address on the same path: definitively unlinked.
    assert ex.run(client._chase_leaf_slot(key, 0xDEAD00)) is None
    # A key whose path ends before reaching any leaf.
    assert ex.run(client._chase_leaf_slot(encode_str("x/nope"),
                                          leaf_addr)) is None


def test_scan_unbatched_equals_batched():
    cluster, index, client, ex = fresh_art()
    rng = random.Random(4)
    keys = sorted({encode_u64(rng.getrandbits(40)) for _ in range(800)})
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    client.scan_batched = True
    batched = ex.run(client.scan_count(keys[10], 60))
    client.scan_batched = False
    sequential = ex.run(client.scan_count(keys[10], 60))
    assert batched == sequential
    assert len(batched) == 60


def test_update_shrink_and_grow_cycles():
    cluster, index, client, ex = fresh_art()
    key = encode_u64(123456)
    ex.run(client.insert(key, b"a" * 8))
    sizes = [8, 500, 16, 900, 1, 64]
    for n in sizes:
        assert ex.run(client.update(key, bytes([n % 251]) * n))
        assert ex.run(client.search(key)) == bytes([n % 251]) * n
    # Exactly one live leaf remains; its size is the high-water mark of
    # the in-place/out-of-place cycle (leaves never shrink in place:
    # the 900-byte value forced a 15-unit leaf that later values reuse).
    leaf_bytes = cluster.mn_bytes_by_category()["leaf"]
    assert leaf_bytes == 960


def test_metrics_as_dict_complete():
    cluster, index, client, ex = fresh_art()
    ex.run(client.insert(encode_u64(1), b"v"))
    d = client.metrics.as_dict()
    assert d["inserts"] == 1
    assert set(d) >= {"searches", "inserts", "updates", "deletes", "scans",
                      "op_restarts", "fp_restarts", "lock_failures",
                      "leaf_splits", "edge_splits", "type_switches",
                      "empty_replacements", "stale_filter_fills"}


def test_sphinx_inht_consistency_after_switches():
    """After type switches, the INHT points at the live node for every
    inner prefix (checked via a fresh client with a cold filter)."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    writer = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"inht/{i:03d}") for i in range(120)]
    for key in keys:
        ex.run(writer.insert(key, b"v"))
    assert writer.metrics.type_switches > 0
    reader = index.client(2)
    for key in keys:
        assert ex.run(reader.search(key)) == b"v"
