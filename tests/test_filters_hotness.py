"""Unit tests for the succinct filter cache (hotness-bit second chance)."""

import random

import pytest

from repro.errors import FilterError
from repro.filters import SuccinctFilterCache


def test_insert_contains_delete():
    c = SuccinctFilterCache(4096)
    c.insert(b"prefix")
    assert c.contains(b"prefix")
    assert c.delete(b"prefix")
    assert not c.contains(b"prefix")


def test_insert_is_idempotent():
    c = SuccinctFilterCache(4096)
    c.insert(b"p")
    c.insert(b"p")
    assert c.count == 1


def test_insert_never_fails_under_pressure():
    c = SuccinctFilterCache(256)  # tiny: forces constant eviction
    for i in range(50_000):
        c.insert(f"p{i}".encode())
    assert c.evictions > 0
    assert c.load_factor() <= 1.0


def test_budget_respected():
    for budget in (512, 4096, 1 << 16):
        c = SuccinctFilterCache(budget)
        assert c.size_bytes() <= budget


def test_contains_sets_hotness_and_survives_pressure():
    rng = random.Random(1)
    c = SuccinctFilterCache(2048, rng=rng)
    hot = [f"hot{i}".encode() for i in range(64)]
    for h in hot:
        c.insert(h)
    retained_hot = retained_cold = 0
    for round_no in range(6):
        for h in hot:
            c.contains(h)  # keep marking hot
        for i in range(1_500):
            c.insert(f"cold{round_no}-{i}".encode())
    retained_hot = sum(c.contains(h) for h in hot)
    cold_probe = [f"cold5-{i}".encode() for i in range(1_500)]
    retained_cold = sum(c.contains(p) for p in cold_probe)
    # Second-chance must clearly privilege the hot set.
    assert retained_hot / len(hot) > retained_cold / len(cold_probe)
    assert retained_hot > 0.7 * len(hot)


def test_no_false_negatives_when_under_capacity():
    c = SuccinctFilterCache(1 << 16)
    items = [f"i{i}".encode() for i in range(2_000)]
    for item in items:
        c.insert(item)
    assert c.evictions == 0
    assert all(c.contains(i) for i in items)


def test_false_positive_rate_under_one_percent():
    c = SuccinctFilterCache(1 << 16, fp_bits=12)
    for i in range(10_000):
        c.insert(f"m{i}".encode())
    fps = sum(c.contains(f"x{i}".encode()) for i in range(50_000))
    assert fps / 50_000 < 0.01


def test_stats_shape():
    c = SuccinctFilterCache(4096)
    c.insert(b"a")
    c.contains(b"a")
    c.contains(b"b")
    s = c.stats()
    assert s["hits"] == 1 and s["misses"] == 1
    assert s["count"] == 1
    assert s["size_bytes"] == c.size_bytes()


def test_validates_parameters():
    with pytest.raises(FilterError):
        SuccinctFilterCache(4)
    with pytest.raises(FilterError):
        SuccinctFilterCache(1024, fp_bits=1)


def test_delete_missing_returns_false():
    c = SuccinctFilterCache(1024)
    assert not c.delete(b"nope")
