"""Unit tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench import (
    SYSTEMS,
    build_setup,
    format_table,
    load_dataset,
    make_index,
    ratio_summary,
    scaled_cache_bytes,
    speedup,
    timed_run,
)
from repro.bench.harness import PAPER_CACHE_BYTES, PAPER_KEYS
from repro.dm import Cluster, ClusterConfig
from repro.errors import ConfigError


def test_scaled_cache_matches_paper_ratio():
    assert scaled_cache_bytes(PAPER_KEYS) == PAPER_CACHE_BYTES
    half = scaled_cache_bytes(PAPER_KEYS // 2)
    assert abs(half - PAPER_CACHE_BYTES // 2) < 1024
    assert scaled_cache_bytes(10) >= 4_096  # floor for tiny runs


def test_make_index_all_systems():
    for name in SYSTEMS + ("Sphinx-NoFilter",):
        cluster = Cluster(ClusterConfig(mn_capacity_bytes=1 << 24))
        index = make_index(name, cluster, 10_000)
        assert index.client(0) is index.client(0)
    with pytest.raises(ConfigError):
        make_index("nope", Cluster(ClusterConfig(mn_capacity_bytes=1 << 24)),
                   10)


def test_smart_c_gets_ten_times_the_cache():
    c1 = Cluster(ClusterConfig(mn_capacity_bytes=1 << 24))
    c2 = Cluster(ClusterConfig(mn_capacity_bytes=1 << 24))
    smart = make_index("SMART", c1, 1_000_000)
    smart_c = make_index("SMART+C", c2, 1_000_000)
    assert smart_c.config.cache_budget_bytes == \
        10 * smart.config.cache_budget_bytes


def test_build_setup_and_timed_run_smoke():
    dataset = load_dataset("u64", 2_000)
    setup = build_setup("Sphinx", dataset, mn_capacity=1 << 26)
    result = timed_run(setup, "C", workers=6, ops=300,
                       warmup_ops_per_cn=100)
    assert result.ops == 300
    assert result.system == "Sphinx"
    assert result.throughput_mops > 0


def test_load_dataset_insert_pool_fraction():
    dataset = load_dataset("email", 1_000, insert_fraction=0.5)
    assert dataset.size == 1_000
    assert len(dataset.insert_pool) == 500


def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "long_header" in lines[0]
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # perfectly rectangular


def test_speedup_and_ratio_summary():
    assert speedup(2.0, 6.0) == 3.0
    assert speedup(0.0, 1.0) == float("inf")
    ratios = ratio_summary({"Sphinx": 6.0, "ART": 2.0, "SMART": 3.0})
    assert ratios == {"ART": 3.0, "SMART": 2.0}
    assert "Sphinx" not in ratios
