"""Tests for the benchmark CLI."""

import subprocess
import sys

import pytest

from repro.bench import cli


def test_help_exits_zero():
    proc = subprocess.run([sys.executable, "-m", "repro.bench.cli", "-h"],
                          capture_output=True, text=True)
    assert proc.returncode == 0
    assert "fig4" in proc.stdout and "ablations" in proc.stdout


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        cli.main(["fig9"])


@pytest.mark.slow
def test_fig6_cli_tiny(capsys):
    assert cli.main(["fig6", "--keys", "1500"]) == 0
    out = capsys.readouterr().out
    assert "Fig 6" in out
    assert "vs ART" in out


@pytest.mark.slow
def test_fig4_cli_tiny(capsys):
    assert cli.main(["fig4", "--dataset", "u64", "--keys", "1200",
                     "--ops", "300", "--workers", "12"]) == 0
    out = capsys.readouterr().out
    assert "Fig 4" in out and "Sphinx" in out


def test_rows_table_empty():
    assert cli._rows_table([]) == "(no rows)"
