"""Tests for the shared per-index counter facade (repro.obs.counters).

The facade is the one shape every index client's counters funnel into;
these tests pin its mapping semantics (default-zero reads, merge
aggregation), the ``client_counters`` adapter over the three legacy
counter shapes, and the ``counters()`` snapshots of every real client.
"""

from repro.art import encode_str, encode_u64
from repro.baselines import ArtDmIndex, BplusIndex, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats
from repro.obs import Counters, client_counters


# ---------------------------------------------------------------------------
# Facade semantics
# ---------------------------------------------------------------------------

def test_missing_counter_reads_zero():
    c = Counters()
    assert c["never_bumped"] == 0
    assert c.get("never_bumped") == 0
    assert c.get("never_bumped", 7) == 7
    assert "never_bumped" not in c
    assert len(c) == 0


def test_inc_setitem_and_contains():
    c = Counters()
    c.inc("hits")
    c.inc("hits", 4)
    c["misses"] = 2
    assert c["hits"] == 5 and c["misses"] == 2
    assert "hits" in c and set(c) == {"hits", "misses"}


def test_merge_adds_and_returns_self():
    a = Counters({"x": 1, "y": 2})
    b = Counters({"y": 3, "z": 4})
    assert a.merge(b) is a
    assert a == {"x": 1, "y": 5, "z": 4}
    # merge also accepts a plain mapping
    a.merge({"x": 10})
    assert a["x"] == 11
    # and the source is untouched
    assert b == {"y": 3, "z": 4}


def test_aggregate_over_mixed_sources():
    total = Counters.aggregate([
        Counters({"a": 1}), {"a": 2, "b": 5}, Counters(), {"b": 1},
    ])
    assert total == {"a": 3, "b": 6}


def test_eq_against_counters_and_mapping():
    c = Counters({"a": 1})
    assert c == Counters({"a": 1})
    assert c == {"a": 1}
    assert c != {"a": 2}
    assert (c == 42) is False


def test_as_dict_is_a_copy():
    c = Counters({"a": 1})
    d = c.as_dict()
    d["a"] = 99
    assert c["a"] == 1


def test_per_op_division_and_zero_ops():
    c = Counters({"round_trips": 30, "bytes_read": 600})
    assert c.per_op(10) == {"round_trips": 3.0, "bytes_read": 60.0}
    assert c.per_op(0) == {"round_trips": 0.0, "bytes_read": 0.0}


def test_from_opstats_snapshots_every_field():
    stats = OpStats(reads=3, writes=1, round_trips=4, messages=5,
                    bytes_read=96, bytes_written=16)
    c = Counters.from_opstats(stats)
    assert c["reads"] == 3
    assert c["round_trips"] == 4
    assert c["bytes_read"] == 96
    assert c["faults_injected"] == 0  # default fields present too
    assert set(c) == set(OpStats.__dataclass_fields__)


# ---------------------------------------------------------------------------
# client_counters adapter
# ---------------------------------------------------------------------------

class _HasCounters:
    def counters(self):
        return Counters({"native": 1})


class _HasMetricsDataclass:
    class _M:
        @staticmethod
        def as_dict():
            return {"legacy": 2}
    metrics = _M()


class _HasMetricsMapping:
    metrics = {"plain": 3}


class _HasNothing:
    pass


def test_adapter_prefers_native_counters():
    assert client_counters(_HasCounters()) == {"native": 1}


def test_adapter_falls_back_to_as_dict_metrics():
    assert client_counters(_HasMetricsDataclass()) == {"legacy": 2}


def test_adapter_accepts_plain_mapping_metrics():
    assert client_counters(_HasMetricsMapping()) == {"plain": 3}


def test_adapter_degrades_to_empty():
    assert client_counters(_HasNothing()) == Counters()


# ---------------------------------------------------------------------------
# Real index clients expose the facade
# ---------------------------------------------------------------------------

def _cluster():
    return Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))


def test_art_client_counters_track_ops():
    cluster = _cluster()
    client = ArtDmIndex(cluster).client(0)
    ex = cluster.direct_executor()
    for i in range(8):
        ex.run(client.insert(encode_u64(i), b"v"))
    ex.run(client.search(encode_u64(3)))
    c = client.counters()
    assert isinstance(c, Counters)
    assert c["inserts"] == 8 and c["searches"] == 1
    assert client_counters(client) == c


def test_sphinx_client_counters_include_filter_and_inht():
    cluster = _cluster()
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    for i in range(16):
        ex.run(client.insert(encode_str(f"k/{i:02d}"), b"v"))
    for i in range(16):
        ex.run(client.search(encode_str(f"k/{i:02d}")))
    c = client.counters()
    # base tree counters and the Sphinx-specific ones share one facade
    assert c["inserts"] == 16 and c["searches"] == 16
    assert "filter_hits" in c and "filter_misses" in c
    assert "inht_splits" in c
    assert c["filter_hits"] + c["filter_misses"] > 0


def test_smart_client_counters_include_cache():
    cluster = _cluster()
    index = SmartIndex(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    for i in range(8):
        ex.run(client.insert(encode_u64(i), b"v"))
    ex.run(client.search(encode_u64(2)))
    c = client.counters()
    assert c["inserts"] == 8
    assert "cache_hits" in c and "cache_misses" in c


def test_bplus_client_counters_from_plain_metrics():
    cluster = _cluster()
    index = BplusIndex(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    for i in range(8):
        ex.run(client.insert(encode_u64(i), b"v"))
    ex.run(client.search(encode_u64(5)))
    c = client.counters()
    assert isinstance(c, Counters)
    assert c["inserts"] == 8 and c["searches"] == 1


def test_counters_survive_merge_across_clients():
    cluster = _cluster()
    index = BplusIndex(cluster)
    ex = cluster.direct_executor()
    for cn in range(2):
        client = index.client(cn)
        for i in range(4):
            ex.run(client.insert(encode_u64(cn * 100 + i), b"v"))
    total = Counters.aggregate(
        client_counters(index.client(cn)) for cn in range(2))
    assert total["inserts"] == 8
