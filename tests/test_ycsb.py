"""Unit tests for the YCSB layer: datasets, workloads, runner."""

import pytest

from repro.art import check_prefix_free
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.errors import ConfigError
from repro.ycsb import (
    WORKLOADS,
    WorkloadSpec,
    bulk_load,
    make_dataset,
    make_email_dataset,
    make_u64_dataset,
    run_workload,
    workload,
)


# -- datasets ---------------------------------------------------------------

def test_u64_dataset_properties():
    ds = make_u64_dataset(5_000, insert_pool=500)
    assert ds.size == 5_000
    assert len(ds.insert_pool) == 500
    assert len(set(ds.keys) | set(ds.insert_pool)) == 5_500
    assert all(len(k) == 8 for k in ds.keys)
    check_prefix_free(ds.keys)


def test_email_dataset_matches_paper_stats():
    ds = make_email_dataset(10_000)
    # Paper: 2-32 bytes, average ~18.93 (ours includes the terminator).
    assert all(2 <= len(k) <= 32 for k in ds.keys)
    assert 15 <= ds.average_key_len() <= 24
    check_prefix_free(ds.keys)


def test_email_dataset_has_shared_prefixes():
    from repro.art import LocalART
    ds = make_email_dataset(5_000)
    tree = LocalART()
    for key in ds.keys:
        tree.insert(key, b"v")
    census = tree.census()
    assert census.max_depth >= 5  # deep tree: the paper's email property


def test_dataset_deterministic_by_seed():
    a = make_dataset("u64", 100, seed=7)
    b = make_dataset("u64", 100, seed=7)
    c = make_dataset("u64", 100, seed=8)
    assert a.keys == b.keys
    assert a.keys != c.keys


def test_make_dataset_rejects_unknown():
    with pytest.raises(ValueError):
        make_dataset("bogus", 10)


# -- workloads ----------------------------------------------------------------

def test_paper_workloads_defined():
    for name in ("LOAD", "A", "B", "C", "D", "E"):
        spec = workload(name)
        assert abs(sum(spec.mix().values()) - 1.0) < 1e-9


def test_workload_mixes_match_paper():
    assert workload("A").read == 0.5 and workload("A").update == 0.5
    assert workload("B").read == 0.95
    assert workload("C").read == 1.0
    assert workload("D").distribution == "latest"
    assert workload("E").scan == 0.95 and workload("E").insert == 0.05
    assert workload("LOAD").insert == 1.0


def test_workload_lookup_case_insensitive():
    assert workload("c") is WORKLOADS["C"]
    with pytest.raises(ConfigError):
        workload("Z")


def test_workload_spec_validation():
    with pytest.raises(ConfigError):
        WorkloadSpec("bad", read=0.5)
    with pytest.raises(ConfigError):
        WorkloadSpec("bad", read=1.0, distribution="gaussian")


# -- runner --------------------------------------------------------------------

@pytest.fixture(scope="module")
def loaded():
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    dataset = make_dataset("u64", 3_000, insert_pool=600)
    bulk_load(cluster, index, dataset)
    return cluster, index, dataset


def test_bulk_load_visible_from_every_cn(loaded):
    cluster, index, dataset = loaded
    ex = cluster.direct_executor()
    for cn in range(cluster.config.num_cns):
        client = index.client(cn)
        for key in dataset.keys[:50]:
            assert ex.run(client.search(key)) is not None


def test_run_workload_counts_and_latency(loaded):
    cluster, index, dataset = loaded
    result = run_workload(cluster, index, workload("C"), dataset,
                          system="sphinx", workers=12, ops=600)
    assert result.ops == 600
    assert result.throughput_mops > 0
    assert result.latency.count == 600
    assert result.avg_latency_us > 1.0  # at least one RTT
    assert result.op_stats.round_trips >= 600
    assert result.round_trips_per_op >= 1.0
    row = result.row()
    assert row["system"] == "sphinx" and row["workload"] == "C"


def test_run_workload_mixed_ops(loaded):
    cluster, index, dataset = loaded
    before = len(dataset.insert_pool)
    result = run_workload(cluster, index, workload("E"), dataset,
                          system="sphinx", workers=6, ops=120)
    assert result.ops == 120
    assert len(dataset.insert_pool) == before  # runner copies the pool
    metrics = result.client_metrics
    assert metrics["scans"] > 0 and metrics["inserts"] > 0


def test_run_workload_latest_distribution(loaded):
    cluster, index, dataset = loaded
    result = run_workload(cluster, index, workload("D"), dataset,
                          system="sphinx", workers=6, ops=300)
    assert result.ops == 300


def test_run_workload_rmw(loaded):
    cluster, index, dataset = loaded
    result = run_workload(cluster, index, workload("F"), dataset,
                          system="sphinx", workers=6, ops=120)
    assert result.ops == 120


def test_run_workload_validates_workers(loaded):
    cluster, index, dataset = loaded
    with pytest.raises(ConfigError):
        run_workload(cluster, index, workload("C"), dataset, workers=0)


def test_nic_utilization_reported(loaded):
    cluster, index, dataset = loaded
    result = run_workload(cluster, index, workload("C"), dataset,
                          workers=24, ops=600)
    assert set(result.nic_utilization) == {"mn0", "mn1", "mn2",
                                           "cn0", "cn1", "cn2"}
    assert any(u > 0 for u in result.nic_utilization.values())


def test_more_workers_do_not_reduce_total_throughput(loaded):
    cluster, index, dataset = loaded
    low = run_workload(cluster, index, workload("C"), dataset,
                       workers=3, ops=900, seed=1)
    high = run_workload(cluster, index, workload("C"), dataset,
                        workers=24, ops=900, seed=2)
    assert high.throughput_mops > low.throughput_mops
