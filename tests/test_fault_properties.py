"""Property-based chaos suite (ISSUE 3 satellite).

For each index (Sphinx, SMART, RACE) run dozens of seeded
:func:`FaultPlan.chaos` plans against a randomized operation mix and
check every response against a local oracle.  The linearizability
contract under the chaos fault model (fail-safe CAS, at-least-once
write - see DESIGN.md "Fault model") for a single sequential client:

* an operation that *returns* tells the truth - a search result is the
  value some permitted execution left behind, and collapses the oracle's
  ambiguity;
* an operation that raises :class:`RetryLimitExceeded` is a *clean*
  failure: it may or may not have applied, widening the oracle's set of
  possible states, but never corrupting others;
* nothing hangs: every run is bounded by a verb budget (livelock guard)
  and a simulated-time limit (deadlock guard).

A mutation check closes the loop: a deliberately broken retry policy
(silently swallowing exhaustion) must be *caught* by this same harness.
"""

import os
import random

import pytest

from repro.art import encode_str
from repro.art.layout import HashEntry
from repro.baselines import SmartConfig, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.core.remote_art import RemoteArtTree
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats
from repro.errors import RetryLimitExceeded
from repro.fault import FaultPlan, RetryPolicy
from repro.race import (
    RaceClient,
    TableParams,
    allocate_segment,
    create_table,
    fp2_of,
    key_hash,
)

# Seeded sweeps: tier-1 can deselect with -m "not property"; the nightly
# workflow widens the sweep via REPRO_PROPERTY_SEEDS=100.
pytestmark = pytest.mark.property

N_SEEDS = int(os.environ.get("REPRO_PROPERTY_SEEDS", "50"))
NUM_KEYS = 40
OPS = 80
VERB_BUDGET = 500_000        # extra messages allowed per run (livelock)
TIME_LIMIT_NS = 60_000_000_000  # simulated ns per run (deadlock)

# "Sphinx+Loc" is Sphinx with the leaf-locator tier on: a stale locator
# entry (leaf moved/invalidated under it by a faulted op) must fall back
# to the INHT path, never answer wrong - the same oracle checks apply.
TREE_SEEDS = [("Sphinx", s) for s in range(N_SEEDS)] + \
             [("Sphinx+Loc", s) for s in range(N_SEEDS)] + \
             [("SMART", s) for s in range(N_SEEDS)]


def _keys():
    return [encode_str(f"k/{i:03d}") for i in range(NUM_KEYS)]


def _build_tree(system, retry=None):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    if system in ("Sphinx", "Sphinx+Loc"):
        config = SphinxConfig(filter_budget_bytes=1 << 14,
                              use_locator=(system == "Sphinx+Loc"),
                              locator_budget_bytes=1 << 12,
                              **({"retry": retry} if retry else {}))
        index = SphinxIndex(cluster, config)
    else:
        config = SmartConfig(cache_budget_bytes=1 << 16,
                             **({"retry": retry} if retry else {}))
        index = SmartIndex(cluster, config)
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = _keys()
    possible = {}
    for i, key in enumerate(keys):
        if i % 2 == 0:
            ex.run(client.insert(key, f"v{i}".encode()))
            possible[key] = {f"v{i}".encode()}
        else:
            possible[key] = {None}
    return cluster, client, keys, possible


def _run_tree_chaos(system, seed, intensity=3.0, retry=None):
    """One seeded chaos run; raises AssertionError on any wrong answer."""
    cluster, client, keys, possible = _build_tree(system, retry)
    cluster.attach_faults(FaultPlan.chaos(seed, intensity=intensity))
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    executor.arm_verb_budget(VERB_BUDGET)
    engine = cluster.engine
    rng = random.Random(seed * 7919 + 13)
    clean_failures = 0

    def mix():
        nonlocal clean_failures
        for step in range(OPS):
            key = keys[rng.randrange(len(keys))]
            vals = possible[key]
            dice = rng.random()
            faults_before = cluster.injector.faults_total()
            if dice < 0.45:
                try:
                    got = yield from executor.run(client.search(key))
                except RetryLimitExceeded:
                    clean_failures += 1
                    continue
                assert got in vals, (
                    f"{system} seed={seed} step={step}: search({key!r}) "
                    f"returned {got!r}, oracle allows {vals!r}")
                possible[key] = {got}  # reads are truthful: collapse
            elif dice < 0.70:
                val = f"i{seed}.{step}".encode()
                try:
                    yield from executor.run(client.insert(key, val))
                except RetryLimitExceeded:
                    clean_failures += 1
                    possible[key] = set(vals) | {val}
                    continue
                possible[key] = {val}
            elif dice < 0.85:
                val = f"u{seed}.{step}".encode()
                try:
                    found = yield from executor.run(client.update(key, val))
                except RetryLimitExceeded:
                    clean_failures += 1
                    possible[key] = set(vals) | {val}
                    continue
                if found:
                    assert vals != {None}, (
                        f"{system} seed={seed} step={step}: update found "
                        f"{key!r} which the oracle says is absent")
                    possible[key] = {val}
                else:
                    assert None in vals, (
                        f"{system} seed={seed} step={step}: update missed "
                        f"{key!r} which the oracle says is present")
                    possible[key] = {None}
            elif dice < 0.93:
                try:
                    removed = yield from executor.run(client.delete(key))
                except RetryLimitExceeded:
                    clean_failures += 1
                    possible[key] = set(vals) | {None}
                    continue
                # A delete whose internal write applied-dropped removes
                # the key, retries, finds nothing, and truthfully reports
                # "miss" about the *present* - so the miss flag is only
                # meaningful when no fault hit this particular op.
                op_faults = cluster.injector.faults_total() - faults_before
                if not removed and op_faults == 0:
                    assert None in vals, (
                        f"{system} seed={seed} step={step}: delete missed "
                        f"{key!r} which the oracle says is present")
                possible[key] = {None}
            else:
                start = keys[rng.randrange(len(keys))]
                try:
                    pairs = yield from executor.run(
                        client.scan_count(start, 8))
                except RetryLimitExceeded:
                    clean_failures += 1
                    continue
                for k, v in pairs:
                    assert k >= start
                    allowed = possible.get(k)
                    assert allowed is not None and v in allowed, (
                        f"{system} seed={seed} step={step}: scan returned "
                        f"({k!r}, {v!r}), oracle allows {allowed!r}")
                if clean_failures == 0:
                    # No ambiguity yet: the scan must be exactly the
                    # oracle's first 8 keys >= start.
                    expect = sorted(k for k, vs in possible.items()
                                    if vs != {None} and k >= start)[:8]
                    assert [k for k, _v in pairs] == expect, (
                        f"{system} seed={seed} step={step}: scan window "
                        f"mismatch")
        return clean_failures

    engine.run_until_complete(engine.process(mix(), name="chaos"),
                              limit=engine.now + TIME_LIMIT_NS)
    return cluster


@pytest.mark.parametrize("system,seed", TREE_SEEDS,
                         ids=[f"{s}-{n}" for s, n in TREE_SEEDS])
def test_tree_chaos_linearizable_or_clean_failure(system, seed):
    cluster = _run_tree_chaos(system, seed)
    # The plan actually perturbed the run (chaos seeds are not no-ops).
    assert cluster.injector.faults_total() > 0


# ---------------------------------------------------------------------------
# RACE hash table
# ---------------------------------------------------------------------------

def _entry(client, key, addr):
    h = key_hash(key, client.params.seed)
    return HashEntry(addr=addr, fp2=fp2_of(h), node_type=1, occupied=True)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_race_chaos_presence_or_clean_failure(seed):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=16 << 20))
    params = TableParams(seed=77, groups_per_segment=8, slots_per_group=4,
                         initial_depth=1)
    info = create_table(cluster, 0, params)
    client = RaceClient(
        info, lambda depth: allocate_segment(cluster, 0, params, depth))
    keys = [f"p/{i:02d}".encode() for i in range(32)]
    addr_of = {key: 0x4000 + i * 64 for i, key in enumerate(keys)}
    ex = cluster.direct_executor()
    # True / False / None = present / absent / ambiguous (clean failure)
    present = {}
    for i, key in enumerate(keys):
        if i % 2 == 0:
            ex.run(client.insert(key, _entry(client, key, addr_of[key])))
        present[key] = (i % 2 == 0)
    cluster.attach_faults(FaultPlan.chaos(seed, intensity=3.0))
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    executor.arm_verb_budget(VERB_BUDGET)
    engine = cluster.engine
    rng = random.Random(seed * 104729 + 3)

    def mix():
        for step in range(OPS):
            key = keys[rng.randrange(len(keys))]
            state = present[key]
            dice = rng.random()
            faults_before = cluster.injector.faults_total()
            if dice < 0.5:
                try:
                    matches = yield from executor.run(client.lookup(key))
                except RetryLimitExceeded:
                    continue
                hit = any(e.addr == addr_of[key] for _sa, e in matches)
                if state is True:
                    assert hit, (f"seed={seed} step={step}: lookup lost "
                                 f"present key {key!r}")
                elif state is False:
                    assert not hit, (f"seed={seed} step={step}: lookup "
                                     f"resurrected absent key {key!r}")
                present[key] = hit  # collapse ambiguity
            elif dice < 0.75:
                # Insert only definitely-absent keys: RACE allows
                # duplicate entries, which the oracle does not model.
                if state is not False:
                    continue
                try:
                    yield from executor.run(client.insert(
                        key, _entry(client, key, addr_of[key])))
                except RetryLimitExceeded:
                    present[key] = None
                    continue
                present[key] = True
            else:
                if state is False:
                    continue
                try:
                    removed = yield from executor.run(
                        client.delete(key, addr_of[key]))
                except RetryLimitExceeded:
                    present[key] = None
                    continue
                op_faults = cluster.injector.faults_total() - faults_before
                if state is True and op_faults == 0:
                    assert removed, (f"seed={seed} step={step}: delete "
                                     f"missed present key {key!r}")
                present[key] = False

    engine.run_until_complete(engine.process(mix(), name="race-chaos"),
                              limit=engine.now + TIME_LIMIT_NS)
    assert cluster.injector.faults_total() > 0


# ---------------------------------------------------------------------------
# Mutation check: a broken retry policy must be caught by this harness
# ---------------------------------------------------------------------------

def test_mutation_broken_retry_is_caught(monkeypatch):
    """Mutate the unified retry loop to swallow exhaustion (returning
    None instead of raising).  Under heavy chaos with a tiny retry
    budget this manufactures silent wrong answers - which the oracle
    harness above must flag.  If this test ever fails, the property
    suite has lost its teeth."""
    original = RemoteArtTree._run

    def swallowing_run(self, once, ctx, op_name):
        try:
            result = yield from original(self, once, ctx, op_name)
        except RetryLimitExceeded:
            return None  # the mutant: exhaustion pretends key is absent
        return result

    monkeypatch.setattr(RemoteArtTree, "_run", swallowing_run)
    tiny = RetryPolicy(max_retries=3, backoff_ns=500)
    with pytest.raises(AssertionError):
        for seed in range(20):
            _run_tree_chaos("Sphinx", seed, intensity=25.0, retry=tiny)
