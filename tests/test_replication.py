"""Shard replication, failover, and anti-entropy suites (ISSUE 10).

Four families:

* **placement units**: the successor-chain replica placement is
  deterministic, disjoint from the primary, and keeps its invariants
  across ring joins/leaves;
* **replicated-write protocol**: on a K=1 rack every committed write is
  applied to the primary *and* its replica cell, deletes reach both,
  and the per-shard epoch fence rejects stale writers;
* **zero-forfeit sweep**: a >=25-seed sweep (scaled by
  ``REPRO_PROPERTY_SEEDS``) of ``crash_mn`` + ``mn_leave`` under live
  multi-tenant traffic - including seeds whose crash lands mid-
  migration - must forfeit **zero** committed keys, keep every
  registered key readable through the router, and end replica-aware
  fsck-clean;
* **K=0 detachment**: an unreplicated rack run carries no replication
  state at all - the new machinery is invisible until K > 0.
"""

import json
import os

import pytest

from repro.dm import ClusterSpec, TopologyEvent
from repro.dm.placement import ShardMap
from repro.dm.rack import Rack
from repro.errors import StaleEpoch
from repro.fault import FaultPlan, crash_mn
from repro.recover import FailoverManager
from repro.tenancy import run_rack
from repro.util.hashing import ConsistentHashRing
from repro.ycsb import make_dataset
from repro.ycsb.runner import bulk_load

pytestmark = pytest.mark.property

N_SEEDS = int(os.environ.get("REPRO_PROPERTY_SEEDS", "50"))
#: The zero-forfeit sweep width: 25 seeds at the stock setting.
SWEEP_SEEDS = range(max(1, round(25 * N_SEEDS / 50)))

RSPEC = ClusterSpec(num_cns=3, num_mns=6, group_size=2, num_shards=24,
                    clients=12, replicas=1, mn_capacity_bytes=16 << 20)
NUM_KEYS = 400
OPS = 800


# ---------------------------------------------------------------------------
# Placement units
# ---------------------------------------------------------------------------

def test_lookup_chain_extends_lookup():
    ring = ConsistentHashRing([3, 7, 11, 19], vnodes=16, seed=5)
    for token in (b"a", b"shard:9", b"zz"):
        chain = ring.lookup_chain(token, 4)
        assert chain[0] == ring.lookup(token)
        assert sorted(chain) == [3, 7, 11, 19]      # all members, distinct
        assert ring.lookup_chain(token, 2) == chain[:2]


def test_replica_placement_invariants():
    for k in (0, 1, 2):
        smap = ShardMap(num_shards=32, groups=[0, 1, 2, 3], replicas=k)
        for shard in range(32):
            reps = smap.replica_assignment[shard]
            assert len(reps) == k
            assert smap.assignment[shard] not in reps
            assert len(set(reps)) == len(reps)


def test_replica_placement_survives_membership_changes():
    smap = ShardMap(num_shards=32, groups=[0, 1, 2], replicas=1)
    before = list(smap.replica_assignment)
    smap.commit_join(3)
    # desired_replicas follows the new ring; the materialized sets only
    # move when the rebalancer syncs them.
    assert smap.replica_assignment == before
    for shard in range(32):
        want = smap.desired_replicas(shard)
        assert len(want) == 1 and want[0] != smap.assignment[shard]
    smap.commit_leave(0)
    for shard in range(32):
        want = smap.desired_replicas(shard)
        assert 0 not in want


# ---------------------------------------------------------------------------
# Replicated-write protocol
# ---------------------------------------------------------------------------

def _loaded_rack(replicas=1, num_keys=120):
    spec = ClusterSpec(num_cns=2, num_mns=6, group_size=2, num_shards=12,
                       clients=4, replicas=replicas,
                       mn_capacity_bytes=16 << 20)
    rack = Rack(spec)
    dataset = make_dataset("u64", num_keys, seed=1, insert_pool=32)
    bulk_load(rack.cluster, rack, dataset)
    return rack, dataset


def test_replicated_writes_reach_primary_and_replica():
    rack, dataset = _loaded_rack()
    ex = rack.cluster.direct_executor()
    for key in dataset.keys:
        shard = rack.shards.shard_for_key(key)
        primary = rack.shards.assignment[shard]
        replicas = rack.shards.replica_assignment[shard]
        assert len(replicas) == 1
        want = ex.run(rack.group_index(primary).client(0).search(key))
        assert want is not None
        for gid in replicas:
            got = ex.run(rack.group_index(gid).client(0).search(key))
            assert got == want, f"replica {gid} diverges for {key!r}"
    assert rack.repl["replica_writes"] >= len(dataset.keys)


def test_replicated_delete_reaches_replicas():
    rack, dataset = _loaded_rack()
    ex = rack.cluster.direct_executor()
    client = rack.client(0)
    victim = dataset.keys[7]
    shard = rack.shards.shard_for_key(victim)
    assert ex.run(client.delete(victim)) is True
    assert victim not in rack.registry[shard]
    for gid in rack.live_groups():
        assert ex.run(rack.group_index(gid).client(0).search(victim)) \
            is None, f"delete missed group {gid}"


def test_epoch_fence_rejects_stale_writers():
    rack, _ = _loaded_rack()
    shard = 3
    captured = rack.epochs[shard]
    rack.epochs[shard] += 1          # a failover promotion happened
    with pytest.raises(StaleEpoch) as exc:
        rack.check_epoch(shard, captured)
    assert exc.value.shard == shard
    assert exc.value.expected == captured
    assert exc.value.current == captured + 1
    assert rack.repl["fenced_writes"] == 1
    # The current epoch still passes.
    rack.check_epoch(shard, rack.epochs[shard])


def test_replica_fallback_read_survives_dead_primary():
    rack, dataset = _loaded_rack()
    rack.cluster.attach_faults(FaultPlan(seed=0, rules=(
        crash_mn(0, at_verb=1),)))
    engine = rack.cluster.engine
    client = rack.client(0)
    executor = rack.cluster.sim_executor(0)

    def drive():
        hits = 0
        for key in dataset.keys:
            value = yield from executor.run(client.search(key))
            if value is not None:
                hits += 1
        return hits

    proc = engine.process(drive(), name="reader")
    engine.run_until_complete(proc)
    assert proc.value == len(dataset.keys), "reads lost to a dead primary"
    assert rack.repl["replica_fallback_reads"] > 0


# ---------------------------------------------------------------------------
# Failover end to end (no runner)
# ---------------------------------------------------------------------------

def test_failover_promotes_and_rereplicates():
    rack, dataset = _loaded_rack()
    rack.cluster.attach_faults(FaultPlan(seed=0, rules=(
        crash_mn(2, at_verb=1),)))
    engine = rack.cluster.engine
    executor = rack.cluster.sim_executor(0)
    client = rack.client(0)

    def poke():  # trip the injector so MN 2 actually dies
        for key in dataset.keys[:10]:
            yield from executor.run(client.search(key))

    engine.run_until_complete(engine.process(poke(), name="poke"))
    assert rack.cluster.injector.dead_mns == {2}
    manager = FailoverManager(rack)
    engine.run_until_complete(
        engine.process(manager.settle(), name="settle"))
    assert 1 in rack.failed_groups            # MN 2 lives in group 1
    assert manager.promotions, "no shard was promoted"
    assert not manager.forfeited
    for shard in range(rack.spec.num_shards):
        assert rack.shards.assignment[shard] != 1
        assert 1 not in rack.shards.replica_assignment[shard]
    # Promoted shards carry a bumped, fencing epoch.
    assert max(rack.epochs) == 1
    ex = rack.cluster.direct_executor()
    for key in dataset.keys:
        assert ex.run(client.search(key)) is not None
    for gid, report in rack.fsck_all():
        assert report.clean and not report.findings, (gid, report.findings)


# ---------------------------------------------------------------------------
# The zero-forfeit sweep
# ---------------------------------------------------------------------------

def _sweep_kwargs(seed):
    """One sweep cell: an online drain plus a seed-varied MN crash.

    Even seeds kill an MN of the *draining* group (so its migrations
    lose their source mid-copy and must recover from replicas); odd
    seeds kill group 1 - an ordinary primary/replica owner and a
    potential migration destination.  The crash verb walks a lattice so
    the sweep hits before-, mid-, and after-migration timings.
    """
    mn = 0 if seed % 2 == 0 else 2
    at_verb = 300 + 650 * (seed % 9)
    return dict(
        tenants=4, workload_name="A", num_keys=NUM_KEYS, insert_pool=150,
        ops=OPS, seed=seed,
        events=(TopologyEvent(at_ns=60_000, kind="mn_leave", group=0),),
        fault_plan=FaultPlan(seed=seed, rules=(
            crash_mn(mn, at_verb=at_verb),)))


def _assert_zero_forfeit(out, tag):
    rows = out.rows()
    repl = rows["replication"]
    assert repl["failover_forfeited_keys"] == 0, f"{tag}: {repl}"
    assert rows["rebalance"]["forfeited_dead"] == 0, (
        f"{tag}: {rows['rebalance']}")
    assert rows["rebalance"]["forfeited_chaos"] == 0, (
        f"{tag}: {rows['rebalance']}")
    assert out.fsck_exit == 0, f"{tag}: fsck exit {out.fsck_exit}"
    assert not out.rack.migrations, f"{tag}: migration left in flight"
    rack = out.rack
    ex, client = rack.cluster.direct_executor(), rack.client(0)
    checked = 0
    for shard, keys in enumerate(rack.registry):
        primary = rack.shards.assignment[shard]
        assert primary not in rack.failed_groups, (
            f"{tag}: shard {shard} routed to a dead group")
        reps = rack.shards.replica_assignment[shard]
        assert primary not in reps
        assert not set(reps) & rack.failed_groups, (
            f"{tag}: shard {shard} replicates onto a dead group")
        for key in sorted(keys)[:6]:   # bounded per-shard spot check
            assert ex.run(client.search(key)) is not None, (
                f"{tag}: committed key {key!r} unreadable")
            checked += 1
    assert checked > 0


def test_crash_sweep_forfeits_no_committed_key():
    mid_migration = 0
    failovers = 0
    for seed in SWEEP_SEEDS:
        out = run_rack(RSPEC, **_sweep_kwargs(seed))
        tag = f"seed={seed}"
        assert out.rack.cluster.injector.dead_mns, (
            f"{tag}: the crash never fired")
        assert out.rack.failed_groups, f"{tag}: failover never ran"
        _assert_zero_forfeit(out, tag)
        repl = out.rows()["replication"]
        failovers += repl["counters"].get("failovers", 0)
        mid_migration += repl["mid_migration_failovers"]
        mid_migration += out.rebalance["aborted_migrations"]
        mid_migration += repl["counters"].get("replica_recovered_reads", 0)
    assert failovers >= len(list(SWEEP_SEEDS))
    # The lattice of crash verbs must actually hit migrations in flight
    # somewhere in the sweep, or the mid-migration machinery is untested.
    assert mid_migration > 0, (
        "no sweep seed crashed mid-migration; widen the at_verb lattice")


@pytest.mark.parametrize("seed", [1, 6])
def test_crash_sweep_is_deterministic(seed):
    a = run_rack(RSPEC, **_sweep_kwargs(seed))
    b = run_rack(RSPEC, **_sweep_kwargs(seed))
    assert json.dumps(a.rows(), sort_keys=True) \
        == json.dumps(b.rows(), sort_keys=True), (
        f"seed={seed}: replicated crash run not bit-identical")


# ---------------------------------------------------------------------------
# K=0 detachment
# ---------------------------------------------------------------------------

def test_unreplicated_run_carries_no_replication_state():
    spec = ClusterSpec(num_cns=2, num_mns=4, group_size=2, num_shards=8,
                       clients=4, mn_capacity_bytes=16 << 20)
    out = run_rack(spec, tenants=2, num_keys=200, insert_pool=50, ops=300,
                   seed=0)
    assert out.replication is None
    assert out.failover is None
    assert "replication" not in out.rows()
    assert not out.rack.repl.as_dict()
    assert all(not reps for reps in out.rack.shards.replica_assignment)
    assert all(epoch == 0 for epoch in out.rack.epochs)
