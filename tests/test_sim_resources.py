"""Unit tests for FIFO servers and latency recording."""

import pytest

from repro.sim import Engine, FifoServer, LatencyRecorder


def test_fifo_serializes_jobs():
    engine = Engine()
    server = FifoServer(engine, "s")
    completions = []

    def job(tag, service):
        yield server.submit(service)
        completions.append((tag, engine.now))

    engine.process(job("a", 100))
    engine.process(job("b", 100))
    engine.run()
    assert completions == [("a", 100), ("b", 200)]


def test_fifo_capacity_parallelism():
    engine = Engine()
    server = FifoServer(engine, "s", capacity=2)
    completions = []

    def job(tag):
        yield server.submit(100)
        completions.append((tag, engine.now))

    for tag in ("a", "b", "c"):
        engine.process(job(tag))
    engine.run()
    assert completions == [("a", 100), ("b", 100), ("c", 200)]


def test_arrive_delay_defers_service():
    engine = Engine()
    server = FifoServer(engine, "s")

    def job():
        yield server.submit(10, arrive_delay=500)
        return engine.now

    p = engine.process(job())
    assert engine.run_until_complete(p) == 510


def test_arrive_delay_does_not_break_busy_server():
    engine = Engine()
    server = FifoServer(engine, "s")

    def early():
        yield server.submit(1_000)
        return engine.now

    def late():
        yield server.submit(10, arrive_delay=100)
        return engine.now

    p1 = engine.process(early())
    p2 = engine.process(late())
    engine.run()
    assert p1.value == 1_000
    assert p2.value == 1_010  # waited for the busy server


def test_utilization_accounting():
    engine = Engine()
    server = FifoServer(engine, "s")

    def job():
        yield server.submit(400)
        yield engine.timeout(600)

    engine.run_until_complete(engine.process(job()))
    assert engine.now == 1_000
    assert server.utilization() == pytest.approx(0.4)
    server.reset_stats()
    assert server.busy_time == 0 and server.jobs == 0


def test_invalid_service_times_rejected():
    engine = Engine()
    server = FifoServer(engine, "s")
    with pytest.raises(ValueError):
        server.submit(-1)
    with pytest.raises(ValueError):
        server.submit(1, arrive_delay=-1)
    with pytest.raises(ValueError):
        FifoServer(engine, "s", capacity=0)


def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    for v in range(1, 101):
        rec.record(v)
    assert rec.count == 100
    assert rec.mean() == pytest.approx(50.5)
    assert rec.percentile(0) == 1
    assert rec.percentile(100) == 100
    assert 50 <= rec.percentile(50) <= 51
    assert rec.percentile(99) >= 99


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert rec.mean() == 0.0
    assert rec.percentile(50) == 0.0
    assert rec.summary()["count"] == 0.0


def test_latency_recorder_single_sample():
    rec = LatencyRecorder()
    rec.record(7)
    assert rec.percentile(50) == 7.0
