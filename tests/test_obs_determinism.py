"""Determinism and zero-overhead guarantees of the observability layer.

The tracer is a passive observer of the simulation, never a participant:
it creates no engine events, draws no RNG, and touches no protocol
state.  These tests pin the resulting contract down:

* an *attached* tracer leaves OpStats, the simulated clock, op outcomes,
  fault schedules, and DMSan findings bit-identical to an untraced run
  (and an attach/detach cycle is indistinguishable from never attaching);
* one seed, one trace: the JSONL and Chrome exports are byte-identical
  across repeats of the same seeded run;
* a ``--profile`` benchmark cell reports the same simulated digits as a
  plain cell, serially and across the fork-pool grid path;
* (env-gated) the profiled smoke cell still reproduces the committed
  BENCH_2 baseline digits exactly - tracing never buys different
  results, attached or not.
"""

import dataclasses
import json
import os

import pytest

from repro.art import encode_str
from repro.bench import CellSpec, clear_setup_caches, run_cell, run_grid
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats
from repro.errors import RetryLimitExceeded
from repro.fault import FaultPlan
from repro.obs import chrome_trace, to_jsonl

TINY = dict(num_keys=900, ops=120, workers=6, warmup_ops_per_cn=60)


@pytest.fixture(autouse=True)
def _fresh_snapshots():
    clear_setup_caches()
    yield
    clear_setup_caches()


def _stats_tuple(stats: OpStats):
    return tuple(getattr(stats, f.name)
                 for f in dataclasses.fields(OpStats))


def _sim_mix(trace=False, detach=False, chaos_seed=None, sanitize=False):
    """One fixed op mix; returns every observable the zero-overhead
    contract covers, plus the tracer (when one was attached)."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    monitor = cluster.attach_sanitizer() if sanitize else None
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = [encode_str(f"o/{i:03d}") for i in range(24)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    if chaos_seed is not None:
        cluster.attach_faults(FaultPlan.chaos(chaos_seed, intensity=4.0))
    tracer = None
    if trace:
        tracer = cluster.attach_tracer()
    if detach:
        cluster.detach_tracer()
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine
    outcomes = []

    def mix():
        for step in range(60):
            key = keys[step % len(keys)]
            try:
                if step % 3 == 0:
                    got = yield from executor.run(client.search(key))
                    outcomes.append(("s", got))
                elif step % 3 == 1:
                    yield from executor.run(
                        client.update(key, f"u{step}".encode()))
                    outcomes.append(("u", True))
                else:
                    pairs = yield from executor.run(client.scan_count(key, 4))
                    outcomes.append(("c", len(pairs)))
            except RetryLimitExceeded:
                outcomes.append(("fail", step))

    engine.run_until_complete(engine.process(mix(), name="obs"))
    if tracer is not None:
        tracer.finish()
    schedule = (cluster.injector.schedule()
                if cluster.injector is not None else ())
    san = ([v.kind for v in monitor.report.violations]
           if monitor is not None else None)
    return dict(stats=_stats_tuple(stats), now=engine.now,
                outcomes=tuple(outcomes), schedule=schedule,
                san=san, tracer=tracer)


def _observables(run):
    return {k: run[k] for k in ("stats", "now", "outcomes", "schedule")}


# ---------------------------------------------------------------------------
# Attached != different: the schedule-invariance half of zero overhead
# ---------------------------------------------------------------------------

def test_attached_tracer_leaves_simulation_unchanged():
    plain = _sim_mix(trace=False)
    traced = _sim_mix(trace=True)
    assert _observables(plain) == _observables(traced)
    # and the trace is non-trivial - it watched a real run
    assert traced["tracer"].spans and traced["tracer"].samples


def test_attach_detach_cycle_is_indistinguishable():
    plain = _sim_mix(trace=False)
    cycled = _sim_mix(trace=True, detach=True)
    assert _observables(plain) == _observables(cycled)
    assert cycled["tracer"].spans == []


def test_attached_tracer_invariant_under_chaos():
    plain = _sim_mix(trace=False, chaos_seed=7)
    traced = _sim_mix(trace=True, chaos_seed=7)
    assert _observables(plain) == _observables(traced)
    assert len(plain["schedule"]) > 0, "the plan must actually fire"
    assert any(s.faults for s in traced["tracer"].spans)


def test_dmsan_findings_unchanged_by_tracer():
    plain = _sim_mix(trace=False, sanitize=True)
    traced = _sim_mix(trace=True, sanitize=True)
    assert plain["san"] == traced["san"]
    assert _observables(plain) == _observables(traced)


# ---------------------------------------------------------------------------
# One seed, one trace: byte-identical exports
# ---------------------------------------------------------------------------

def test_same_seed_byte_identical_jsonl_and_chrome():
    first = _sim_mix(trace=True, chaos_seed=5)["tracer"]
    second = _sim_mix(trace=True, chaos_seed=5)["tracer"]
    assert to_jsonl(first, cell="x") == to_jsonl(second, cell="x")
    assert json.dumps(chrome_trace([first]), sort_keys=True) \
        == json.dumps(chrome_trace([second]), sort_keys=True)


def test_different_seed_different_trace():
    first = _sim_mix(trace=True, chaos_seed=5)["tracer"]
    second = _sim_mix(trace=True, chaos_seed=6)["tracer"]
    assert to_jsonl(first) != to_jsonl(second)


# ---------------------------------------------------------------------------
# Benchmark cells: --profile reports the same simulated digits
# ---------------------------------------------------------------------------

PLAIN_CELL = CellSpec(system="Sphinx", dataset="u64", workload="A", **TINY)
PROFILED_CELL = CellSpec(system="Sphinx", dataset="u64", workload="A",
                         profile=True, **TINY)


def test_profiled_cell_matches_plain_cell():
    plain = run_cell(PLAIN_CELL)
    profiled = run_cell(PROFILED_CELL)
    assert plain.row() == profiled.row()
    assert plain.sim_ns == profiled.sim_ns
    assert plain.latency.samples == profiled.latency.samples
    # the plain cell carries no observability payload at all
    assert plain.profile is None and plain.trace is None
    # the profiled cell does, and it describes real work
    assert profiled.profile and profiled.trace.spans
    assert sum(row["count"] for row in profiled.profile.values()) > 0


def test_profiled_chaos_cell_matches_plain_chaos_cell():
    plain = run_cell(CellSpec(system="Sphinx", dataset="u64", workload="A",
                              chaos_seed=5, **TINY))
    profiled = run_cell(CellSpec(system="Sphinx", dataset="u64",
                                 workload="A", chaos_seed=5, profile=True,
                                 **TINY))
    assert plain.row() == profiled.row()
    assert plain.faults == profiled.faults
    assert plain.failed_ops == profiled.failed_ops
    assert sum(plain.faults.values()) > 0


def test_profiled_grid_parallel_matches_serial():
    cells = [
        PROFILED_CELL,
        CellSpec(system="ART", dataset="u64", workload="C", profile=True,
                 **TINY),
    ]
    serial = run_grid(cells, parallel=0)
    parallel = run_grid(cells, parallel=2)
    assert [r.row() for r in serial] == [r.row() for r in parallel]
    for s, p in zip(serial, parallel):
        # traces survive the fork-pool pickle round-trip intact
        assert s.profile == p.profile
        assert to_jsonl(s.trace) == to_jsonl(p.trace)


def test_profiled_cell_reuses_plain_snapshots():
    """profile is excluded from the snapshot keys (like chaos_seed): a
    profiled run after a plain run must not rebuild or repollute."""
    plain = run_cell(PLAIN_CELL)
    profiled = run_cell(PROFILED_CELL)
    again = run_cell(PLAIN_CELL)
    assert plain.row() == again.row() == profiled.row()


# ---------------------------------------------------------------------------
# (env-gated) profiled smoke cell vs the committed BENCH_2 baseline
# ---------------------------------------------------------------------------

BASELINE = os.path.join(os.path.dirname(__file__), "..",
                        "benchmarks", "results", "BENCH_2.baseline.json")


@pytest.mark.skipif(not os.environ.get("REPRO_BASELINE_CHECK"),
                    reason="full-scale baseline identity check is slow; "
                           "set REPRO_BASELINE_CHECK=1 (CI chaos job)")
def test_profiled_smoke_cell_matches_bench2_baseline():
    """The committed BENCH_2 baseline predates the observability layer;
    the same cell must land on identical simulated digits with a tracer
    attached (which subsumes the tracer-detached guarantee - detached
    executors run the exact pre-obs code path)."""
    with open(BASELINE) as fh:
        cells = json.load(fh)["cells"]
    want = next(c for c in cells if (c["system"], c["dataset"],
                                     c["workload"]) == ("ART", "u64", "A"))
    got = run_cell(CellSpec(system="ART", dataset="u64", workload="A",
                            num_keys=15_000, ops=want["ops"],
                            workers=want["workers"], profile=True))
    assert got.sim_ns == want["sim_ns"]
    assert got.ops == want["ops"]
    assert got.profile, "the tracer watched the whole cell"
