"""Unit tests for the YCSB request distributions."""

import math
import random

import pytest

from repro.util.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
    zipf_pmf,
)


def test_zeta_matches_direct_sum():
    assert zeta(10, 0.99) == pytest.approx(
        sum(1 / i ** 0.99 for i in range(1, 11)))


def test_zipf_pmf_sums_to_one():
    assert sum(zipf_pmf(100, 0.99)) == pytest.approx(1.0)


def test_zipfian_in_range():
    gen = ZipfianGenerator(1000, rng=random.Random(1))
    for _ in range(10_000):
        assert 0 <= gen.next() < 1000


def test_zipfian_head_frequency_matches_theory():
    n = 1000
    gen = ZipfianGenerator(n, rng=random.Random(2))
    samples = 100_000
    zero = sum(1 for _ in range(samples) if gen.next() == 0)
    expected = zipf_pmf(n, 0.99)[0]
    assert zero / samples == pytest.approx(expected, rel=0.1)


def test_zipfian_skew():
    gen = ZipfianGenerator(10_000, rng=random.Random(3))
    counts = {}
    for _ in range(50_000):
        v = gen.next()
        counts[v] = counts.get(v, 0) + 1
    top10 = sum(sorted(counts.values(), reverse=True)[:10])
    assert top10 > 0.25 * 50_000  # heavy head


def test_zipfian_validates_args():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.0)


def test_scrambled_zipfian_spreads_hot_keys():
    gen = ScrambledZipfianGenerator(1000, rng=random.Random(4))
    counts = {}
    for _ in range(50_000):
        v = gen.next()
        counts[v] = counts.get(v, 0) + 1
    hottest = sorted(counts, key=counts.get, reverse=True)[:10]
    # Hot items should not all cluster at the low end of the keyspace.
    assert max(hottest) > 100


def test_uniform_generator_covers_range():
    gen = UniformGenerator(50, random.Random(5))
    seen = {gen.next() for _ in range(5_000)}
    assert seen == set(range(50))


def test_uniform_rejects_empty():
    with pytest.raises(ValueError):
        UniformGenerator(0, random.Random(0))


def test_latest_favours_recent():
    gen = LatestGenerator(10_000, rng=random.Random(6))
    samples = [gen.next() for _ in range(20_000)]
    assert all(0 <= s < 10_000 for s in samples)
    recent = sum(1 for s in samples if s >= 9_000)
    assert recent > 0.5 * len(samples)


def test_latest_advance_shifts_head():
    gen = LatestGenerator(100, rng=random.Random(7))
    gen.advance(50)
    assert gen.max_index == 149
    samples = [gen.next() for _ in range(5_000)]
    assert max(samples) == 149


def test_latest_never_negative():
    gen = LatestGenerator(2, rng=random.Random(8))
    assert all(gen.next() >= 0 for _ in range(1_000))
