"""Tests for the path-sensitive verifier (repro.tools.dmverify).

The fixture corpus under ``tests/fixtures/dmverify/`` is the rule
contract: every file in ``bad/`` must be flagged with exactly the rule
its filename names (``s001_*.py`` -> S001), and every file in
``clean/`` is a near-miss that must produce zero findings.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, build_function_cfg
from repro.analysis.cfg import EXC, RAISE
from repro.tools.dmverify import default_target, main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "dmverify"
BAD = sorted((FIXTURES / "bad").glob("*.py"))
CLEAN = sorted((FIXTURES / "clean").glob("*.py"))


def expected_rule(path):
    return path.name[:4].upper()  # s003_write_after_release -> S003


def subprocess_env(**extra):
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
    env.update(extra)
    return env


# ---------------------------------------------------------------------------
# The fixture corpus is the rule contract
# ---------------------------------------------------------------------------

def test_corpus_is_present():
    assert len(BAD) >= 12 and len(CLEAN) >= 12
    for rule in ("s001", "s002", "s003", "s004", "s005", "s006"):
        assert sum(p.name.startswith(rule) for p in BAD) >= 2, rule
        assert sum(p.name.startswith(
            rule.replace("s0", "c0")) for p in CLEAN) >= 2, rule


@pytest.mark.parametrize("path", BAD, ids=[p.stem for p in BAD])
def test_bad_fixture_flagged(path):
    report = analyze_paths([path])
    rules = {f.rule for f in report.findings}
    rendered = "\n".join(f.render() for f in report.findings)
    assert expected_rule(path) in rules, \
        f"{path.name}: expected {expected_rule(path)}, got:\n{rendered}"
    assert rules == {expected_rule(path)}, \
        f"{path.name}: collateral findings:\n{rendered}"


@pytest.mark.parametrize("path", CLEAN, ids=[p.stem for p in CLEAN])
def test_clean_fixture_clean(path):
    report = analyze_paths([path])
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


def test_s001_witness_narrates_the_leak():
    path = FIXTURES / "bad" / "s001_branch_leak.py"
    report = analyze_paths([path])
    witness = "\n".join(report.findings[0].witness)
    assert "lock CAS" in witness
    assert report.findings[0].witness  # non-empty path witness


def test_s001_exception_exit_is_distinguished():
    path = FIXTURES / "bad" / "s001_exception_leak.py"
    report = analyze_paths([path])
    messages = " / ".join(f.message for f in report.findings)
    assert "exception" in messages


# ---------------------------------------------------------------------------
# The repo itself verifies clean (the CI contract)
# ---------------------------------------------------------------------------

def test_repo_is_clean():
    report = analyze_paths([default_target()])
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.functions > 500  # the analysis actually ran


def test_cli_exit_zero_on_repo(capsys):
    assert main([]) == 0
    assert "dmverify: clean" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI contract: exit codes, JSON, determinism
# ---------------------------------------------------------------------------

def test_cli_nonzero_on_findings(capsys):
    assert main([str(FIXTURES / "bad" / "s005_dead_verb_expr.py")]) == 1
    out = capsys.readouterr().out
    assert "S005" in out
    assert "finding(s)" in out


def test_missing_path_reports_cleanly(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_bad_options_exit_two(capsys):
    assert main(["--format"]) == 2
    assert main(["--bogus"]) == 2
    assert "error" in capsys.readouterr().err


def test_json_output_mirrors_exit_code(capsys):
    code = main(["--format=json",
                 str(FIXTURES / "bad" / "s002_untagged_lock_cas.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["exit_code"] == 1
    assert payload["clean"] is False
    assert payload["counts"] == {"S002": 1}
    assert payload["findings"][0]["rule"] == "S002"


def test_json_output_on_clean_tree(capsys):
    code = main(["--format=json",
                 str(FIXTURES / "clean" / "c003_write_inside_window.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["exit_code"] == 0
    assert payload["clean"] is True
    assert payload["findings"] == []


def test_json_is_deterministic_across_hash_seeds():
    """Two runs under different hash seeds emit byte-identical JSON."""
    outs = []
    for seed in ("1", "2"):
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.dmverify",
             "--format=json", "src/repro"],
            capture_output=True, text=True, cwd=str(REPO),
            env=subprocess_env(PYTHONHASHSEED=seed))
        assert result.returncode == 0, result.stdout + result.stderr
        outs.append(result.stdout)
    assert outs[0] == outs[1]


def test_syntax_error_reported_not_crashed(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = analyze_paths([bad])
    assert [f.rule for f in report.findings] == ["S000"]


# ---------------------------------------------------------------------------
# Suppressions (dmverify pragmas, plus lint-equivalent pragmas)
# ---------------------------------------------------------------------------

def verify_source(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_paths([path]).findings


def test_line_pragma_suppresses(tmp_path):
    findings = verify_source(tmp_path, """
        def proto(addr):
            ops = [WriteOp(addr, b"x")]  # dmverify: disable=S005
            yield ReadOp(addr, 8)
    """)
    assert findings == []


def test_file_pragma_suppresses(tmp_path):
    findings = verify_source(tmp_path, """
        # dmverify: disable-file=S005
        def proto(addr):
            WriteOp(addr, b"a")
            WriteOp(addr + 8, b"b")
            yield ReadOp(addr, 8)
    """)
    assert findings == []


def test_pragma_only_silences_named_rule(tmp_path):
    findings = verify_source(tmp_path, """
        def proto(addr):
            WriteOp(addr, b"x")  # dmverify: disable=S001
            yield ReadOp(addr, 8)
    """)
    assert [f.rule for f in findings] == ["S005"]


def test_lint_pragma_silences_s004(tmp_path):
    findings = verify_source(tmp_path, """
        def proto(addr):
            for attempt in range(7):  # lint: disable=L006
                swapped, _ = yield CasOp(addr, 0, 1, lease=("release",))
                if swapped:
                    return
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# CFG spot checks: the shapes the flow rules depend on
# ---------------------------------------------------------------------------

def build(source, name="f"):
    import ast
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return build_function_cfg(func, name)


def test_cfg_finally_runs_on_both_routes():
    cfg = build("""
        def f(addr):
            try:
                yield ReadOp(addr, 8)
            finally:
                yield WriteOp(addr, b"x", lease=("release",))
    """)
    releases = [n for n in cfg.nodes
                if n.stmt is not None and "release" in
                __import__("ast").unparse(n.stmt)]
    assert len(releases) >= 2  # inlined once per exit route


def test_cfg_yield_in_try_gets_exception_edge():
    cfg = build("""
        def f(addr):
            try:
                yield ReadOp(addr, 8)
            except Exception:
                return
    """)
    assert any(label == EXC for node in cfg.nodes
               for label, _ in node.succ)


def test_cfg_yield_outside_try_has_no_exception_edge():
    cfg = build("""
        def f(addr):
            yield ReadOp(addr, 8)
    """)
    assert not any(label == EXC for node in cfg.nodes
                   for label, _ in node.succ)


def test_cfg_raise_creates_exit_node():
    cfg = build("""
        def f(x):
            raise ProtocolError(x)
    """)
    assert any(node.kind == RAISE for node in cfg.nodes)


# ---------------------------------------------------------------------------
# mypy (when available - CI installs it; the base image may not have it)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(
    __import__("importlib.util", fromlist=["util"]).find_spec("mypy")
    is None,
    reason="mypy not installed in this environment")
def test_mypy_clean_on_typed_tiers():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "-p", "repro"],
        capture_output=True, text=True, cwd=str(REPO),
        env=dict(os.environ, PYTHONPATH="src"))
    assert result.returncode == 0, result.stdout + result.stderr
