"""Property-based and unit tests for the local reference ART."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art import LocalART, encode_str, encode_u64
from repro.errors import KeyCodecError

# Strategy: prefix-free key sets via fixed-width or terminated keys.
u64_keys = st.lists(st.integers(0, (1 << 64) - 1), min_size=0, max_size=200,
                    unique=True)
str_keys = st.lists(
    st.text(alphabet="abcdefg@.", min_size=1, max_size=12),
    min_size=0, max_size=150, unique=True)


@given(u64_keys)
@settings(max_examples=50, deadline=None)
def test_model_equivalence_u64(values):
    tree = LocalART()
    model = {}
    for v in values:
        key = encode_u64(v)
        tree.insert(key, str(v).encode())
        model[key] = str(v).encode()
    tree.check_invariants()
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.search(key) == value
    assert list(tree.items()) == sorted(model.items())


@given(str_keys)
@settings(max_examples=50, deadline=None)
def test_model_equivalence_strings(texts):
    tree = LocalART()
    model = {}
    for t in texts:
        key = encode_str(t)
        tree.insert(key, t.encode())
        model[key] = t.encode()
    tree.check_invariants()
    for key, value in model.items():
        assert tree.search(key) == value
    assert list(tree.items()) == sorted(model.items())


@given(u64_keys, st.data())
@settings(max_examples=30, deadline=None)
def test_mixed_ops_against_model(values, data):
    tree = LocalART()
    model = {}
    for v in values:
        key = encode_u64(v)
        op = data.draw(st.sampled_from(["insert", "delete", "search"]))
        if op == "insert":
            assert tree.insert(key, b"v") == (key not in model)
            model[key] = b"v"
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            expected = model.get(key)
            assert tree.search(key) == expected
    assert dict(tree.items()) == model


@given(u64_keys, st.integers(0, (1 << 64) - 1),
       st.integers(0, (1 << 64) - 1))
@settings(max_examples=40, deadline=None)
def test_scan_matches_sorted_model(values, a, b):
    lo_v, hi_v = min(a, b), max(a, b)
    tree = LocalART()
    model = {}
    for v in values:
        key = encode_u64(v)
        tree.insert(key, b"x")
        model[key] = b"x"
    lo, hi = encode_u64(lo_v), encode_u64(hi_v)
    got = [k for k, _ in tree.scan(lo, hi)]
    expected = sorted(k for k in model if lo <= k <= hi)
    assert got == expected


def test_scan_count_limits():
    tree = LocalART()
    for i in range(100):
        tree.insert(encode_u64(i * 7), b"v")
    res = tree.scan_count(encode_u64(0), 10)
    assert len(res) == 10
    assert res[0][0] == encode_u64(0)
    assert [k for k, _ in res] == [encode_u64(i * 7) for i in range(10)]


def test_insert_overwrite_returns_false():
    tree = LocalART()
    assert tree.insert(b"ab", b"1")
    assert not tree.insert(b"ab", b"2")
    assert tree.search(b"ab") == b"2"
    assert len(tree) == 1


def test_delete_absent_returns_false():
    tree = LocalART()
    tree.insert(b"abc", b"1")
    assert not tree.delete(b"abd")
    assert not tree.delete(b"ab\x01xyz")
    assert tree.delete(b"abc")
    assert not tree.delete(b"abc")


def test_contains():
    tree = LocalART()
    tree.insert(b"xy", b"1")
    assert b"xy" in tree
    assert b"xz" not in tree


def test_census_counts():
    tree = LocalART()
    rng = random.Random(5)
    for _ in range(2000):
        tree.insert(encode_u64(rng.getrandbits(64)), b"v")
    census = tree.census()
    assert census.leaves == len(tree)
    assert census.inner_nodes >= 1
    assert sum(census.inner_by_type.values()) == census.inner_nodes
    assert census.inner_bytes > 0


def test_inner_prefixes_enumerates_all():
    tree = LocalART()
    for t in ("LYRICS", "LYRA", "LYRE", "LAMBDA"):
        tree.insert(encode_str(t), b"v")
    prefixes = set(tree.inner_prefixes())
    assert b"" in prefixes  # root
    assert any(p.startswith(b"LYR") for p in prefixes)
    assert len(prefixes) == tree.census().inner_nodes


def test_path_compression_no_single_child_chains():
    tree = LocalART()
    tree.insert(encode_str("LYRICS"), b"1")
    tree.insert(encode_str("LYRE"), b"2")
    # Root plus one inner at the LYR split point: exactly 2 inner nodes.
    assert tree.census().inner_nodes == 2
    tree.check_invariants()


def test_rejects_bad_keys():
    tree = LocalART()
    with pytest.raises(KeyCodecError):
        tree.insert(b"", b"v")
    with pytest.raises(KeyCodecError):
        tree.insert(b"x" * 300, b"v")
