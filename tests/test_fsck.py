"""Tests for the offline consistency checker."""

import random

import pytest

from repro.art import encode_str, encode_u64
from repro.art.layout import NODE256, decode_node, node_size
from repro.baselines import ArtDmIndex, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.memory import addr_mn, addr_offset
from repro.tools import check_index, check_sphinx, check_tree


def build_sphinx(n=800, seed=0):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    ex = cluster.direct_executor()
    rng = random.Random(seed)
    keys = [encode_u64(rng.getrandbits(64)) for _ in range(n)]
    for i, key in enumerate(keys):
        ex.run(client.insert(key, f"v{i}".encode()))
    return cluster, index, client, ex, keys


def test_clean_after_load():
    cluster, index, client, ex, keys = build_sphinx()
    report = check_sphinx(cluster, index)
    assert report.clean, report.errors[:5]
    assert report.leaves == len(keys)
    assert report.inner_nodes >= 1
    assert report.inht_checked == report.inner_nodes - 1  # root excluded
    assert report.inht_missing == 0
    assert "CLEAN" in report.summary()


def test_clean_after_churn():
    cluster, index, client, ex, keys = build_sphinx()
    rng = random.Random(1)
    for _ in range(1_500):
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.4:
            ex.run(client.insert(key, b"x"))
        elif roll < 0.7:
            ex.run(client.delete(key))
        else:
            ex.run(client.update(key, b"y" * rng.randrange(1, 200)))
    report = check_sphinx(cluster, index)
    assert report.clean, report.errors[:5]


@pytest.mark.parametrize("make", [
    lambda c: ArtDmIndex(c),
    lambda c: SmartIndex(c),
])
def test_check_index_dispatch_baselines(make):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = make(cluster)
    client = index.client(0)
    ex = cluster.direct_executor()
    for i in range(300):
        ex.run(client.insert(encode_str(f"k/{i:04d}"), b"v"))
    report = check_index(cluster, index)
    assert report.clean, report.errors[:5]
    assert report.leaves == 300
    assert report.inht_checked == 0  # baselines have no hash table


def test_detects_corrupted_leaf():
    cluster, index, client, ex, keys = build_sphinx(n=100)
    # Corrupt one leaf payload byte directly.
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    slot = next(s for s in root.occupied_slots() if s.is_leaf)
    memory = cluster.memories[addr_mn(slot.addr)]
    offset = addr_offset(slot.addr) + 18
    memory.write(offset, bytes([memory.read(offset, 1)[0] ^ 0xFF]))
    report = check_index(cluster, index)
    assert not report.clean
    assert any("checksum" in e for e in report.errors)


def test_detects_bad_prefix_hash():
    cluster, index, client, ex, keys = build_sphinx(n=400)
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    slot = next(s for s in root.occupied_slots() if not s.is_leaf)
    memory = cluster.memories[addr_mn(slot.addr)]
    header_word = memory.read_u64(addr_offset(slot.addr))
    memory.write_u64(addr_offset(slot.addr), header_word ^ (1 << 20))
    report = check_index(cluster, index)
    assert not report.clean
    assert any("prefix hash" in e for e in report.errors)


def test_detects_duplicate_partial():
    cluster, index, client, ex, keys = build_sphinx(n=400)
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    inner = next(s for s in root.occupied_slots() if not s.is_leaf)
    memory = cluster.memories[addr_mn(inner.addr)]
    node = decode_node(memory.read(addr_offset(inner.addr),
                                   node_size(inner.size_class)))
    occupied_indexes = [i for i, w in enumerate(node.words) if w >> 63]
    if len(occupied_indexes) < 2:
        pytest.skip("need a node with two children")
    a, b = occupied_indexes[:2]
    word_a = memory.read_u64(addr_offset(inner.addr) + 8 + a * 8)
    memory.write_u64(addr_offset(inner.addr) + 8 + b * 8, word_a)
    report = check_index(cluster, index)
    assert not report.clean


def test_detects_missing_inht_entry():
    cluster, index, client, ex, keys = build_sphinx(n=400)
    # Nuke one table's segments by zeroing a bucket group that holds a
    # live entry: find a prefix via the checker's own map.
    from repro.tools.fsck import check_tree as ct
    _report, prefixes = ct(cluster, index.root_addr)
    prefix = next(p for p in prefixes if p != b"")
    inht = index.client(0).inht
    race = inht._client_for(prefix)
    matches = ex.run(race.lookup(prefix))
    assert matches
    slot_addr, _entry = matches[0]
    cluster.memories[addr_mn(slot_addr)].write_u64(addr_offset(slot_addr), 0)
    report = check_sphinx(cluster, index)
    assert report.inht_missing >= 1
    assert not report.clean


def test_detects_reachable_invalid_node():
    cluster, index, client, ex, keys = build_sphinx(n=400)
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    inner = next(s for s in root.occupied_slots() if not s.is_leaf)
    memory = cluster.memories[addr_mn(inner.addr)]
    # Flip the node's status bits to Invalid while it is still linked:
    # type switches must unlink before invalidating, so fsck flags it.
    header_word = memory.read_u64(addr_offset(inner.addr))
    memory.write_u64(addr_offset(inner.addr), (header_word & ~0x3) | 0x2)
    report = check_index(cluster, index)
    assert not report.clean
    assert any("reachable but Invalid" in e for e in report.errors)


def test_duplicate_partial_error_string():
    cluster, index, client, ex, keys = build_sphinx(n=400)
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    inner = next(s for s in root.occupied_slots() if not s.is_leaf)
    memory = cluster.memories[addr_mn(inner.addr)]
    node = decode_node(memory.read(addr_offset(inner.addr),
                                   node_size(inner.size_class)))
    occupied_indexes = [i for i, w in enumerate(node.words) if w >> 63]
    if len(occupied_indexes) < 2:
        pytest.skip("need a node with two children")
    a, b = occupied_indexes[:2]
    word_a = memory.read_u64(addr_offset(inner.addr) + 8 + a * 8)
    memory.write_u64(addr_offset(inner.addr) + 8 + b * 8, word_a)
    report = check_index(cluster, index)
    assert not report.clean
    assert any("duplicate partial bytes" in e for e in report.errors)


def test_corrupted_leaf_error_names_address():
    cluster, index, client, ex, keys = build_sphinx(n=100)
    root = decode_node(cluster.memories[addr_mn(index.root_addr)].read(
        addr_offset(index.root_addr), node_size(NODE256)))
    slot = next(s for s in root.occupied_slots() if s.is_leaf)
    memory = cluster.memories[addr_mn(slot.addr)]
    offset = addr_offset(slot.addr) + 18
    memory.write(offset, bytes([memory.read(offset, 1)[0] ^ 0xFF]))
    report = check_index(cluster, index)
    assert not report.clean
    assert any("checksum" in e and f"{slot.addr:#x}" in e
               for e in report.errors)


# ---------------------------------------------------------------------------
# JSON output mirrors the exit-code contract
# ---------------------------------------------------------------------------

def test_json_report_mirrors_exit_code():
    import json

    from repro.tools.fsck import EXIT_CLEAN, _exit_code, report_json

    cluster, index, client, ex, keys = build_sphinx(n=60)
    report = check_index(cluster, index)
    code = _exit_code(report, dry_run=False, recovered=False)
    payload = report_json(report, code)
    assert code == EXIT_CLEAN
    assert payload["exit_code"] == EXIT_CLEAN
    assert payload["clean"] is True
    assert payload["findings"] == []
    assert payload["leaves"] == report.leaves
    json.dumps(payload)  # serializable


def test_json_report_on_unrepairable_defect():
    import json

    from repro.tools.fsck import (EXIT_REPAIRED, EXIT_UNREPAIRABLE,
                                  _exit_code, report_json)

    cluster, index, client, ex, keys = build_sphinx(n=60)
    report = check_index(cluster, index)
    report.error("synthetic: torn leaf at rest")
    report.find("orphan_lock", 0x1000, "node locked at rest",
                repairable=False)
    code = _exit_code(report, dry_run=False, recovered=False)
    payload = report_json(report, code)
    assert code == EXIT_UNREPAIRABLE
    assert payload["exit_code"] == EXIT_UNREPAIRABLE
    assert payload["clean"] is False
    assert payload["findings"][0]["repairable"] is False
    json.dumps(payload)
    # dry-run with only repairable findings maps to EXIT_REPAIRED
    fresh = check_index(cluster, index)
    fresh.find("invalid_leaf", 0x2000, "synthetic", repairable=True)
    assert _exit_code(fresh, dry_run=True, recovered=False) == EXIT_REPAIRED
