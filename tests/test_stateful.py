"""Hypothesis stateful testing: the Sphinx index against a model.

Hypothesis drives arbitrary interleavings of insert/update/delete/search/
scan and shrinks any divergence from the oracle to a minimal op sequence.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.art import LocalART, encode_u64
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig

# A small key universe maximizes collisions/splits/type switches.
KEYS = st.integers(min_value=0, max_value=400).map(
    lambda v: encode_u64(v * 0x0101010101))
VALUES = st.binary(min_size=0, max_size=90)


class SphinxMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = Cluster(ClusterConfig(mn_capacity_bytes=32 << 20))
        self.index = SphinxIndex(self.cluster, SphinxConfig(
            filter_budget_bytes=2_048,  # tiny: eviction pressure included
            table_initial_depth=1))
        self.client = self.index.client(0)
        self.executor = self.cluster.direct_executor()
        self.oracle = LocalART()

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        got = self.executor.run(self.client.insert(key, value))
        expected = self.oracle.insert(key, value)
        assert got == expected

    @rule(key=KEYS, value=VALUES)
    def update(self, key, value):
        got = self.executor.run(self.client.update(key, value))
        expected = self.oracle.search(key) is not None
        if expected:
            self.oracle.insert(key, value)
        assert got == expected

    @rule(key=KEYS)
    def delete(self, key):
        got = self.executor.run(self.client.delete(key))
        assert got == self.oracle.delete(key)

    @rule(key=KEYS)
    def search(self, key):
        assert self.executor.run(self.client.search(key)) == \
            self.oracle.search(key)

    @rule(key=KEYS, count=st.integers(min_value=1, max_value=20))
    def scan(self, key, count):
        got = self.executor.run(self.client.scan_count(key, count))
        assert got == self.oracle.scan_count(key, count)

    @invariant()
    def leaf_accounting_matches_oracle(self):
        live = sum(1 for _ in self.oracle.items())
        leaf_bytes = self.cluster.mn_bytes_by_category().get("leaf", 0)
        assert leaf_bytes >= live * 64  # every live key has a leaf


SphinxStatefulTest = SphinxMachine.TestCase
SphinxStatefulTest.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
