"""Unit tests for the NIC / network timing model."""

import pytest

from repro.dm.network import NetworkConfig, Nic
from repro.sim import Engine


def test_msg_service_components():
    net = NetworkConfig(cn_msg_ns=25, mn_msg_ns=30, bytes_per_ns=12.5,
                        header_bytes=32)
    assert net.msg_service_ns("cn", 0) == 25 + int(32 / 12.5)
    assert net.msg_service_ns("mn", 0) == 30 + int(32 / 12.5)
    big = net.msg_service_ns("mn", 2056)
    assert big == 30 + int((2056 + 32) / 12.5)


def test_unloaded_rtt_composition():
    net = NetworkConfig()
    rtt = net.unloaded_rtt_ns(0, 8)
    expected = (net.msg_service_ns("cn", 0) + net.prop_ns
                + net.msg_service_ns("mn", 0) + net.mem_access_ns
                + net.msg_service_ns("mn", 8) + net.prop_ns
                + net.msg_service_ns("cn", 8))
    assert rtt == expected


def test_larger_responses_cost_more():
    net = NetworkConfig()
    assert net.unloaded_rtt_ns(0, 2056) > net.unloaded_rtt_ns(0, 8) + 150


def test_nic_counts_messages_and_bytes():
    engine = Engine()
    net = NetworkConfig()
    nic = Nic(engine, "test", net, "cn")
    nic.process(100)
    nic.process(200)
    engine.run()
    assert nic.messages == 2
    assert nic.payload_bytes == 300
    assert nic.utilization() > 0
    nic.reset_stats()
    assert nic.messages == 0 and nic.payload_bytes == 0


def test_nic_serializes_under_load():
    engine = Engine()
    net = NetworkConfig()
    nic = Nic(engine, "test", net, "mn")
    done = []

    def sender(tag):
        yield nic.process(64)
        done.append((tag, engine.now))

    for tag in range(3):
        engine.process(sender(tag))
    engine.run()
    times = [t for _tag, t in done]
    service = net.msg_service_ns("mn", 64)
    assert times == [service, 2 * service, 3 * service]


def test_nic_capacity_allows_parallel_service():
    engine = Engine()
    net = NetworkConfig()
    nic = Nic(engine, "test", net, "mn", capacity=2)
    done = []

    def sender():
        yield nic.process(64)
        done.append(engine.now)

    for _ in range(2):
        engine.process(sender())
    engine.run()
    assert done[0] == done[1]


def test_atomic_extra_cost_configured():
    net = NetworkConfig()
    assert net.atomic_extra_ns > 0


def test_arrive_delay_models_propagation():
    engine = Engine()
    net = NetworkConfig()
    nic = Nic(engine, "test", net, "mn")

    def sender():
        yield nic.process(8, arrive_delay=net.prop_ns)
        return engine.now

    p = engine.process(sender())
    assert engine.run_until_complete(p) == \
        net.prop_ns + net.msg_service_ns("mn", 8)
