"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_timeout_advances_clock():
    engine = Engine()
    done = []

    def proc():
        yield engine.timeout(100)
        done.append(engine.now)
        return "ok"

    p = engine.process(proc())
    assert engine.run_until_complete(p) == "ok"
    assert done == [100]


def test_timeouts_fire_in_order():
    engine = Engine()
    order = []

    def proc(delay, tag):
        yield engine.timeout(delay)
        order.append(tag)

    engine.process(proc(300, "c"))
    engine.process(proc(100, "a"))
    engine.process(proc(200, "b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_tiebreak():
    engine = Engine()
    order = []

    def proc(tag):
        yield engine.timeout(50)
        order.append(tag)

    for tag in range(5):
        engine.process(proc(tag))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_nested_generators_via_yield_from():
    engine = Engine()

    def inner():
        yield engine.timeout(10)
        return 5

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    p = engine.process(outer())
    assert engine.run_until_complete(p) == 10
    assert engine.now == 20


def test_process_is_event():
    engine = Engine()

    def child():
        yield engine.timeout(30)
        return "x"

    def parent():
        result = yield engine.process(child())
        return result + "y"

    p = engine.process(parent())
    assert engine.run_until_complete(p) == "xy"


def test_all_of_waits_for_slowest():
    engine = Engine()

    def child(delay):
        yield engine.timeout(delay)
        return delay

    def parent():
        procs = [engine.process(child(d)) for d in (50, 150, 100)]
        values = yield engine.all_of(procs)
        return values

    p = engine.process(parent())
    assert engine.run_until_complete(p) == [50, 150, 100]
    assert engine.now == 150


def test_all_of_empty():
    engine = Engine()

    def parent():
        values = yield engine.all_of([])
        return values

    assert engine.run_until_complete(engine.process(parent())) == []


def test_run_until_bound():
    engine = Engine()

    def proc():
        yield engine.timeout(1_000)

    engine.process(proc())
    engine.run(until=500)
    assert engine.now == 500


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-1)


def test_deadlock_detected():
    engine = Engine()

    def proc():
        yield engine.event()  # never fires

    p = engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run_until_complete(p)


def test_time_limit_enforced():
    engine = Engine()

    def proc():
        while True:
            yield engine.timeout(100)

    p = engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run_until_complete(p, limit=1_000)


def test_yielding_non_event_raises():
    engine = Engine()

    def proc():
        yield 42

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_event_value_before_trigger_raises():
    engine = Engine()
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_double_trigger_raises():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
