"""Unit tests for bit-field packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import BitStruct, round_up, u64_from_bytes, u64_to_bytes


def test_pack_unpack_roundtrip():
    bs = BitStruct("t", [("a", 4), ("b", 12), ("c", 48)])
    word = bs.pack(a=5, b=1000, c=0xDEADBEEF)
    assert bs.unpack(word) == {"a": 5, "b": 1000, "c": 0xDEADBEEF}


def test_pack_defaults_zero():
    bs = BitStruct("t", [("a", 4), ("b", 4)])
    assert bs.unpack(bs.pack(b=3)) == {"a": 0, "b": 3}


def test_field_overflow_rejected():
    bs = BitStruct("t", [("a", 4)])
    with pytest.raises(ValueError):
        bs.pack(a=16)
    with pytest.raises(ValueError):
        bs.pack(a=-1)


def test_unknown_field_rejected():
    bs = BitStruct("t", [("a", 4)])
    with pytest.raises(ValueError):
        bs.pack(z=1)


def test_too_wide_struct_rejected():
    with pytest.raises(ValueError):
        BitStruct("t", [("a", 40), ("b", 40)])


def test_duplicate_field_rejected():
    with pytest.raises(ValueError):
        BitStruct("t", [("a", 4), ("a", 4)])


def test_zero_width_field_rejected():
    with pytest.raises(ValueError):
        BitStruct("t", [("a", 0)])


def test_get_set_single_field():
    bs = BitStruct("t", [("a", 8), ("b", 8)])
    word = bs.pack(a=1, b=2)
    word = bs.set(word, "a", 200)
    assert bs.get(word, "a") == 200
    assert bs.get(word, "b") == 2


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_u64_bytes_roundtrip(word):
    assert u64_from_bytes(u64_to_bytes(word)) == word


def test_u64_from_bytes_offset():
    data = u64_to_bytes(1) + u64_to_bytes(2)
    assert u64_from_bytes(data, 8) == 2


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=512))
def test_round_up_properties(value, multiple):
    r = round_up(value, multiple)
    assert r >= value
    assert r % multiple == 0
    assert r - value < multiple


def test_round_up_rejects_nonpositive_multiple():
    with pytest.raises(ValueError):
        round_up(5, 0)


@given(st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=(1 << 12) - 1),
       st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_bitstruct_roundtrip_property(a, b, c):
    bs = BitStruct("t", [("a", 4), ("b", 12), ("c", 48)])
    assert bs.unpack(bs.pack(a=a, b=b, c=c)) == {"a": a, "b": b, "c": c}
