"""Tests for the B+ tree extension baseline (B-link, lock coupling)."""

import random

import pytest

from repro.art import encode_str, encode_u64
from repro.baselines import BplusConfig, BplusIndex
from repro.dm import Cluster, ClusterConfig
from repro.errors import ConfigError, KeyCodecError


def fresh(key_width=8, order=16):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = BplusIndex(cluster, BplusConfig(key_width=key_width,
                                            order=order))
    return cluster, index, index.client(0), cluster.direct_executor()


def test_insert_search_model_u64():
    cluster, index, client, ex = fresh()
    rng = random.Random(2)
    model = {}
    for step in range(4_000):
        key = encode_u64(rng.getrandbits(48))
        value = f"v{step}".encode()
        assert ex.run(client.insert(key, value)) == (key not in model)
        model[key] = value
    for key, value in model.items():
        assert ex.run(client.search(key)) == value
    for _ in range(300):
        probe = encode_u64(rng.getrandbits(48))
        if probe not in model:
            assert ex.run(client.search(probe)) is None


def test_variable_length_keys_padded():
    cluster, index, client, ex = fresh(key_width=32)
    emails = [encode_str(f"user{i}@example.com") for i in range(500)]
    for i, key in enumerate(emails):
        ex.run(client.insert(key, f"v{i}".encode()))
    for i, key in enumerate(emails):
        assert ex.run(client.search(key)) == f"v{i}".encode()


def test_key_too_wide_rejected():
    cluster, index, client, ex = fresh(key_width=8)
    with pytest.raises(KeyCodecError):
        ex.run(client.insert(b"way-too-long-key", b"v"))


def test_value_too_large_rejected():
    cluster, index, client, ex = fresh()
    with pytest.raises(ConfigError):
        ex.run(client.insert(encode_u64(1), b"v" * 200))


def test_update_semantics():
    cluster, index, client, ex = fresh()
    key = encode_u64(42)
    assert not ex.run(client.update(key, b"nope"))
    ex.run(client.insert(key, b"a"))
    assert ex.run(client.update(key, b"b"))
    assert ex.run(client.search(key)) == b"b"


def test_scan_matches_sorted_model():
    cluster, index, client, ex = fresh()
    rng = random.Random(3)
    model = {}
    for i in range(2_500):
        key = encode_u64(rng.getrandbits(40))
        model[key] = f"v{i}".encode()
        ex.run(client.insert(key, model[key]))
    ordered = sorted(model)
    for start_i in (0, 100, 1_000, 2_400):
        start = ordered[start_i]
        got = ex.run(client.scan_count(start, 30))
        expected = [(k, model[k]) for k in ordered[start_i:start_i + 30]]
        assert got == expected


def test_memory_padding_tax_vs_sphinx():
    """The motivating contrast: fixed-width padding inflates the B+
    tree's node bytes for short variable-length keys."""
    emails = [encode_str(f"u{i}@d{i % 7}.com") for i in range(2_000)]
    cluster, index, client, ex = fresh(key_width=32, order=32)
    for key in emails:
        ex.run(client.insert(key, b"v" * 16))
    bplus_bytes = cluster.mn_bytes_by_category()["bplus_node"]
    from repro.core import SphinxConfig, SphinxIndex
    cluster2 = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    sphinx = SphinxIndex(cluster2, SphinxConfig(
        filter_budget_bytes=1 << 14))
    sclient = sphinx.client(0)
    ex2 = cluster2.direct_executor()
    for key in emails:
        ex2.run(sclient.insert(key, b"v" * 16))
    art_inner = cluster2.mn_bytes_by_category()["inner"]
    # Index-structure bytes (excluding the shared value blobs): the
    # padded B+ tree costs a multiple of the ART inner nodes.
    assert bplus_bytes > 2 * art_inner


def test_concurrent_inserts_with_blink_recovery():
    cluster, index, client, ex = fresh(order=8)  # small order: many splits
    rng = random.Random(4)
    keys = [encode_u64(rng.getrandbits(48)) for _ in range(600)]
    clients = [index.client(cn) for cn in range(3)]

    def worker(wid):
        executor = cluster.sim_executor(wid % 3)
        for key in keys[wid::6]:
            yield from executor.run(clients[wid % 3].insert(key, b"w"))

    procs = [cluster.engine.process(worker(w)) for w in range(6)]
    for p in procs:
        cluster.engine.run_until_complete(
            p, limit=cluster.engine.now + 120_000_000_000)
    missing = [k for k in keys if ex.run(client.search(k)) != b"w"]
    assert missing == [], f"{len(missing)} lost"


def test_concurrent_readers_during_splits():
    cluster, index, client, ex = fresh(order=8)
    stable = [encode_u64(i * 1_000_003) for i in range(200)]
    for key in stable:
        ex.run(client.insert(key, b"s"))
    observed = []

    def reader():
        executor = cluster.sim_executor(1)
        rng = random.Random(9)
        for _ in range(250):
            key = rng.choice(stable)
            value = yield from executor.run(index.client(1).search(key))
            observed.append(value)

    def writer():
        executor = cluster.sim_executor(0)
        rng = random.Random(10)
        for _ in range(400):
            yield from executor.run(client.insert(
                encode_u64(rng.getrandbits(48)), b"n"))

    p1 = cluster.engine.process(reader())
    p2 = cluster.engine.process(writer())
    for p in (p1, p2):
        cluster.engine.run_until_complete(
            p, limit=cluster.engine.now + 120_000_000_000)
    assert all(v == b"s" for v in observed), observed.count(None)


def test_search_round_trips_scale_with_depth():
    from repro.dm.rdma import OpStats
    cluster, index, client, ex = fresh(order=8)
    rng = random.Random(5)
    keys = [encode_u64(rng.getrandbits(48)) for _ in range(3_000)]
    for key in keys:
        ex.run(client.insert(key, b"v"))
    stats = OpStats()
    counted = cluster.direct_executor(stats)
    for key in keys[:300]:
        counted.run(client.search(key))
    per_op = stats.round_trips / 300
    # root ptr + ~4 levels + value blob.
    assert 4 <= per_op <= 9, per_op
