"""Coverage tests for the figure-generation code at miniature scale.

These do NOT validate the paper's shapes (the benchmark suite does, at
its default scale); they validate that the figure pipelines run, return
well-formed rows and render cleanly.
"""

import pytest

from repro.bench import (
    ablation_fingerprint_bits,
    ablation_hotness,
    fig4_ycsb,
    fig5_scalability,
    fig6_memory,
    render_fig4,
    render_fig5,
    render_fig6,
)

TINY = dict(num_keys=1_200)


@pytest.mark.slow
def test_fig4_pipeline_tiny():
    result = fig4_ycsb("u64", ops=240, workers=6,
                       systems=("ART", "Sphinx"), **TINY)
    assert len(result.rows) == 2 * 6
    for row in result.rows:
        assert row["throughput_mops"] > 0
    text = render_fig4(result)
    assert "Fig 4" in text and "LOAD" in text
    assert result.speedups("C").keys() == {"ART"}


@pytest.mark.slow
def test_fig5_pipeline_tiny():
    result = fig5_scalability("u64", ops=240, systems=("Sphinx",),
                              worker_counts=(6, 12), **TINY)
    assert len(result.rows) == 2
    assert result.peak_throughput("Sphinx") > 0
    assert result.latency_at_peak("Sphinx") > 0
    assert "Fig 5" in render_fig5(result)


@pytest.mark.slow
def test_fig6_pipeline_tiny():
    result = fig6_memory(num_keys=1_500, datasets=("u64",))
    assert len(result.rows) == 3
    assert result.total("SMART", "u64") > result.total("ART", "u64")
    text = render_fig6(result)
    assert "vs ART" in text


def test_fast_ablations_rows():
    rows = ablation_hotness(num_keys=0)
    assert {r["policy"] for r in rows} == {"second-chance", "random"}
    fp_rows = ablation_fingerprint_bits()
    assert [r["fp_bits"] for r in fp_rows] == [4, 6, 8, 10, 12, 16]
