"""Near-miss for S006: a monitor implementing the full executor
callback interface with the exact arities."""


class AuditMonitor:
    def bind_clock(self, clock):
        self._clock = clock

    def on_issue(self, client, op, now):
        return (client, now)

    def on_apply(self, token, now, result):
        pass

    def on_complete(self, token, now):
        pass

    def on_alloc(self, mn_id, offset, size, category):
        pass

    def on_free(self, mn_id, offset, size, category):
        pass

    def on_retire(self, mn_id, offset, size, category):
        pass
