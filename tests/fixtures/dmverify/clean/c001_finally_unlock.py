"""Near-miss for S001: the unlock lives in a finally, so even the
injected-fault path releases before propagating."""


def update_node(addr, payload):
    swapped, _ = yield CasOp(addr, pack(locked=0), pack(locked=1),
                             lease=("node",))
    if not swapped:
        return False
    try:
        yield WriteOp(addr + 8, payload)
    finally:
        yield WriteOp(addr, pack(locked=0), lease=("release",))
    return True
