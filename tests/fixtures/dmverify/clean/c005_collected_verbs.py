"""Near-miss for S005: verbs built into a list ARE yielded, batched."""


def scatter(base_addr, blocks):
    writes = [WriteOp(base_addr + 64 * i, block)
              for i, block in enumerate(blocks)]
    results = yield Batch(writes)
    return len(results)
