"""Near-misses for S002: a fencing CAS (locked -> locked version bump,
an ownership transfer owned by recovery) and an entry-install CAS
(empty -> entry word, no lock involved) both legitimately carry no
lease tag."""


def fence_segment(group_addr, depth, version):
    fence_word = HEADER.pack(local_depth=depth, locked=1,
                             version=version + 1)
    swapped, _ = yield CasOp(group_addr,
                             HEADER.pack(local_depth=depth, locked=1,
                                         version=version),
                             fence_word)
    return swapped


def install_entry(slot_addr, entry):
    swapped, _ = yield CasOp(slot_addr, 0, entry.pack())
    return swapped
