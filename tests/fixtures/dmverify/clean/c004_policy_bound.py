"""Near-miss for S004: the bound comes from RetryPolicy."""


def read_with_retry(retry, addr):
    for attempt in range(retry.max_retries):
        first = yield ReadOp(addr, 16)
        second = yield ReadOp(addr, 16)
        if first == second:
            return first
        yield LocalCompute(retry.torn_read_delay(attempt))
    return None
