"""Near-miss for S005: a verb factory returns the op for its caller to
yield; the local name is read, not dead."""


def unlock_op(addr, idle_word):
    op = WriteOp(addr, idle_word, lease=("release",))
    return op


def release_all(addrs, idle_word):
    ops = [unlock_op(addr, idle_word) for addr in addrs]
    yield Batch(ops)
