"""Near-miss for S003: every mutation stays inside the window."""


def update_record(rec_addr, body, footer):
    swapped, _ = yield CasOp(rec_addr, pack(locked=0), pack(locked=1),
                             lease=("leaf",))
    if not swapped:
        return False
    yield WriteOp(rec_addr + 8, body)
    yield WriteOp(rec_addr + 24, footer)
    yield WriteOp(rec_addr, pack(locked=0), lease=("release",))
    return True
