"""Near-miss for S006: variadic signatures satisfy every call shape
the executors use (including the fault= keyword on on_verb)."""


class RelayTracer:
    def attach_resources(self, cluster):
        self.cluster = cluster

    def op_begin(self, client, name, now):
        return (client, name, now)

    def op_end(self, span, now, status="ok"):
        pass

    def on_verb(self, client, op, t_start, t_end, **notes):
        pass

    def on_round_trip(self, span):
        pass

    def on_fault(self, *event):
        pass

    def tag_verb(self, client, kind):
        pass
