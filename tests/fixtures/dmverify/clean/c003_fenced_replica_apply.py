"""Near-miss for S003: the fenced replica apply done right.

Value *and* epoch stamp both land inside the epoch-fence window, so a
failover promotion that advances the epoch can never race a straggler
replica write."""


def apply_to_replica(replica_addr, slot, value, epoch_word):
    swapped, _ = yield CasOp(replica_addr, pack(locked=0), pack(locked=1),
                             lease=("epoch",))
    if not swapped:
        return False
    yield WriteOp(replica_addr + 8 * slot, value)
    yield WriteOp(replica_addr + 4, epoch_word)
    yield WriteOp(replica_addr, pack(locked=0), lease=("release",))
    return True
