"""Near-miss for S005: locator refresh collects slot patches into a
list that IS yielded - one doorbell batch publishes every stale slot."""


def refresh_slots(dir_addr, entries, stale):
    writes = []
    for i, entry in enumerate(entries):
        if i in stale:
            writes.append(WriteOp(dir_addr + 16 * i, entry))
    if not writes:
        return 0
    acks = yield Batch(writes)
    return len(acks)
