"""Near-miss for S001: every exit either lost the CAS or releases."""


def rename_child(parent_addr, old, new):
    res = yield CasOp(parent_addr, pack(locked=0), pack(locked=1),
                      lease=("node",))
    if not res[0]:
        return False
    yield WriteOp(parent_addr + 8, new)
    if old == new:
        yield WriteOp(parent_addr, pack(locked=0), lease=("release",))
        return False
    yield WriteOp(parent_addr, pack(locked=0), lease=("release",))
    return True
