"""Near-miss for S004: intrinsic protocol bounds carry pragmas - the
dmverify one, or a pre-existing lint L006 justification."""


def walk_chain(head_addr):
    for _hop in range(512):  # dmverify: disable=S004
        word = yield ReadOp(head_addr, 8)
        if word == b"\x00" * 8:
            return head_addr
        head_addr += 8
    return None


def probe_groups(seg_addr):
    # 256 buckets is table geometry, not a retry budget.
    for _probe in range(256):  # lint: disable=L006
        word = yield ReadOp(seg_addr, 8)
        if word != b"\x00" * 8:
            return word
        seg_addr += 8
    return None
