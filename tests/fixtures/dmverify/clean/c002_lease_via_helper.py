"""Near-miss for S002: the lease tag is built by a helper, not a
literal tuple - still a tag."""


def make_lease(kind, addr):
    return (kind, addr)


def lock_node(node_addr, idle_word, locked_word):
    swapped, _ = yield CasOp(node_addr, idle_word, locked_word,
                             lease=make_lease("node", node_addr))
    if not swapped:
        return False
    yield WriteOp(node_addr, idle_word, lease=("release",))
    return True
