"""Near-miss for S003: the post-release write targets a different
structure (a private log), not the released one."""


def update_and_log(node_addr, log_addr, payload):
    swapped, _ = yield CasOp(node_addr, pack(locked=0), pack(locked=1),
                             lease=("node",))
    if not swapped:
        return False
    yield WriteOp(node_addr + 8, payload)
    yield WriteOp(node_addr, pack(locked=0), lease=("release",))
    yield WriteOp(log_addr, payload)
    return True
