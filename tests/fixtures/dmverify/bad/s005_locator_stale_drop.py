"""S005 on the locator path: the directory-slot invalidation WRITE is
built but never yielded, so a stale leaf ref survives the drop."""


def drop_stale_ref(slot_addr, leaf_addr):
    # BUG: missing `yield` - the zeroing write silently never happens,
    # and the next locator hit re-reads the moved leaf.
    WriteOp(slot_addr, b"\x00" * 16)
    check = yield ReadOp(leaf_addr, 64)
    return check
