"""S003: a replica apply escapes the epoch-fence window.

The fenced protocol locks the replica cell, applies the primary's
value, stamps the epoch, and releases; here the epoch stamp lands
*after* the release, so a failover promotion that advances the epoch
can interleave and the replica silently diverges."""


def apply_to_replica(replica_addr, slot, value, epoch_word):
    swapped, _ = yield CasOp(replica_addr, pack(locked=0), pack(locked=1),
                             lease=("epoch",))
    if not swapped:
        return False
    yield WriteOp(replica_addr + 8 * slot, value)
    yield WriteOp(replica_addr, pack(locked=0), lease=("release",))
    # BUG: the epoch stamp races the next failover promotion.
    yield WriteOp(replica_addr + 4, epoch_word)
    return True
