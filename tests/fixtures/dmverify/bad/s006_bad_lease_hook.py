"""S006: a lease-table hook whose on_verb signature does not match
what executors deliver (client_id, verb, result, now)."""


class ShadowLeaseTable:
    # BUG: drops the result and now arguments the executor passes.
    def on_verb(self, client_id, verb):
        pass
