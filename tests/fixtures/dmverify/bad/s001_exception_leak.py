"""S001: an injected fault between acquire and release leaks the lock
through the except-return; the error path also raises while locked."""


def move_entry(src_addr, dst_addr, entry):
    swapped, _ = yield CasOp(src_addr, pack(locked=0), pack(locked=1),
                             lease=("leaf",))
    if not swapped:
        return None
    try:
        yield WriteOp(dst_addr, entry)
    except InjectedFault:
        # BUG: gives up without rolling the lock word back.
        return None
    if entry is None:
        # BUG: raises while still holding the source lock.
        raise ProtocolError("nothing to move")
    yield WriteOp(src_addr, pack(locked=0), lease=("release",))
    return True
