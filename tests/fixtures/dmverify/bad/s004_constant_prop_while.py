"""S004 through constant propagation: the bound hides behind a local
alias and a while counter."""


def drain_queue(head_addr):
    budget = 32
    spins = 0
    # BUG: still a magic bound, just dressed up.
    while spins < budget:
        word = yield ReadOp(head_addr, 8)
        if word == b"\x00" * 8:
            return True
        spins += 1
    return False
