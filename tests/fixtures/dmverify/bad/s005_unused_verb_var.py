"""S005: a verb list is built and then forgotten."""


def publish(dir_addr, entries):
    updates = [WriteOp(dir_addr + 8 * i, entry)
               for i, entry in enumerate(entries)]
    # BUG: `updates` is never yielded; only the version bump lands.
    yield FaaOp(dir_addr, 1)
    return len(entries)
