"""S006: a monitor hook class whose callbacks cannot be invoked by the
executors (wrong arities, missing methods)."""


class CountingMonitor:
    def __init__(self):
        self.events = 0

    def bind_clock(self, clock):
        self.clock = clock

    # BUG: executors call on_issue(client, op, now) - three arguments.
    def on_issue(self, client):
        self.events += 1

    def on_apply(self, token, now, result):
        pass

    # BUG: on_complete(token, now) takes two; on_alloc/on_free/
    # on_retire are missing entirely.
    def on_complete(self):
        pass
