"""S003 across a helper: the release happens inside unlock_node(),
the late write happens in the caller."""


def unlock_node(addr, image):
    yield WriteOp(addr, image, lease=("release",))


def rebalance(node_addr, image, spill):
    swapped, _ = yield CasOp(node_addr, pack(locked=0), pack(locked=1),
                             lease=("node",))
    if not swapped:
        return False
    yield WriteOp(node_addr + 16, spill)
    yield from unlock_node(node_addr, image)
    # BUG: the spill pointer write escaped the window.
    yield WriteOp(node_addr + 24, spill)
    return True
