"""S003: a straggler write lands after the release closed the
window."""


def append_entry(node_addr, slot, entry):
    swapped, _ = yield CasOp(node_addr, pack(locked=0), pack(locked=1),
                             lease=("node",))
    if not swapped:
        return False
    yield WriteOp(node_addr + 8 * slot, entry)
    yield WriteOp(node_addr, pack(locked=0), lease=("release",))
    # BUG: the count update races with the next lock holder.
    yield WriteOp(node_addr + 4, entry[:4])
    return True
