"""S001: the early return on a version conflict forgets the unlock."""

IDLE = 0


def update_node(addr, payload, version):
    swapped, _ = yield CasOp(addr, pack(locked=0, version=version),
                             pack(locked=1, version=version + 1),
                             lease=("node",))
    if not swapped:
        return False
    fresh = yield ReadOp(addr + 8, 8)
    if fresh != payload:
        # BUG: leaves the node locked on the conflict path.
        return False
    yield WriteOp(addr + 8, payload)
    yield WriteOp(addr, pack(locked=0, version=version + 2),
                  lease=("release",))
    return True
