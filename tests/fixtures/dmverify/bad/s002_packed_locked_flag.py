"""S002 via the decisive pack(locked=...) check: the words are built
under innocuous names, only the keyword argument gives them away."""


def claim_group(group_addr, depth, version):
    before = HEADER.pack(local_depth=depth, locked=0, version=version)
    after = HEADER.pack(local_depth=depth, locked=1, version=version + 1)
    # BUG: untagged acquire; the names say nothing, the pack() does.
    swapped, _ = yield CasOp(group_addr, before, after)
    if not swapped:
        return False
    yield WriteOp(group_addr, before, lease=("release",))
    return True
