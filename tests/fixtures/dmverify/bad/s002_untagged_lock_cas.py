"""S002: a lock-acquiring CAS with no lease tag is invisible to crash
recovery."""


def lock_leaf(leaf_addr, idle_word, locked_word):
    # BUG: no lease=(...) tag on an unlocked -> locked transition.
    swapped, _ = yield CasOp(leaf_addr, idle_word, locked_word)
    if not swapped:
        return False
    yield WriteOp(leaf_addr, idle_word, lease=("release",))
    return True
