"""S004: a magic retry budget instead of RetryPolicy."""


def read_consistent(addr):
    # BUG: 64 is somebody's lucky number, not a policy.
    for _attempt in range(64):
        first = yield ReadOp(addr, 16)
        second = yield ReadOp(addr, 16)
        if first == second:
            return first
    return None
