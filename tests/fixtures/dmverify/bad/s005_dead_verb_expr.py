"""S005: a verb constructed as a bare expression never executes."""


def flush_header(addr, header):
    # BUG: missing `yield` - the write silently never happens.
    WriteOp(addr, header)
    ack = yield ReadOp(addr, 8)
    return ack
