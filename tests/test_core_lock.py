"""Unit tests for node-grained header locks."""

import pytest

from repro.art.layout import (
    NODE4,
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    Header,
)
from repro.core.lock import (
    idle_header,
    invalid_header,
    invalidate_op,
    locked_header,
    try_lock_node,
    unlock_op,
)
from repro.dm.memory import addr_offset
from repro.util.bits import u64_from_bytes


@pytest.fixture
def node(single_mn_cluster):
    cluster = single_mn_cluster
    header = Header(STATUS_IDLE, NODE4, 3, 12345, 2)
    addr = cluster.alloc(0, 40, "inner")
    cluster.memories[0].write_u64(addr_offset(addr), header.pack())
    return cluster, addr, header


def test_header_state_helpers():
    h = Header(STATUS_IDLE, NODE4, 1, 2, 3)
    assert locked_header(h).status == STATUS_LOCKED
    assert invalid_header(h).status == STATUS_INVALID
    assert idle_header(locked_header(h)).status == STATUS_IDLE
    # Everything but status is preserved.
    assert locked_header(h).prefix_hash == 2


def test_lock_unlock_cycle(node):
    cluster, addr, header = node
    ex = cluster.direct_executor()
    assert ex.run(try_lock_node(addr, header))
    stored = Header.unpack(cluster.memories[0].read_u64(addr_offset(addr)))
    assert stored.status == STATUS_LOCKED

    def release():
        yield unlock_op(addr, header)
    ex.run(release())
    stored = Header.unpack(cluster.memories[0].read_u64(addr_offset(addr)))
    assert stored.status == STATUS_IDLE


def test_second_lock_fails(node):
    cluster, addr, header = node
    ex = cluster.direct_executor()
    assert ex.run(try_lock_node(addr, header))
    assert not ex.run(try_lock_node(addr, header))


def test_lock_fails_on_invalid_node(node):
    cluster, addr, header = node
    cluster.memories[0].write_u64(addr_offset(addr),
                                  invalid_header(header).pack())
    ex = cluster.direct_executor()
    assert not ex.run(try_lock_node(addr, header))


def test_invalidate_op_writes_invalid(node):
    cluster, addr, header = node
    ex = cluster.direct_executor()

    def retire():
        yield invalidate_op(addr, header)
    ex.run(retire())
    stored = Header.unpack(cluster.memories[0].read_u64(addr_offset(addr)))
    assert stored.status == STATUS_INVALID
    assert stored.depth == header.depth
