"""Unit tests for cluster assembly, placement and the network model."""

import pytest

from repro.dm import Cluster, ClusterConfig, NetworkConfig, NodePlacement
from repro.dm.memory import addr_mn
from repro.errors import ConfigError


def test_default_cluster_shape(cluster):
    assert len(cluster.memories) == 3
    assert len(cluster.mn_nics) == 3
    assert len(cluster.cn_nics) == 3


def test_config_validation():
    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(num_mns=0))
    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(num_cns=0))
    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(mn_capacity_bytes=100))


def test_alloc_routes_to_requested_mn(cluster):
    addr = cluster.alloc(2, 64, "x")
    assert addr_mn(addr) == 2
    assert cluster.memories[2].allocated_by_category["x"] == 64


def test_alloc_for_prefix_deterministic(cluster):
    a = cluster.alloc_for_prefix(b"LYR", 64)
    b = cluster.alloc_for_prefix(b"LYR", 64)
    assert addr_mn(a) == addr_mn(b)
    assert addr_mn(a) == cluster.placement.mn_for_prefix(b"LYR")


def test_free_returns_bytes(cluster):
    addr = cluster.alloc(1, 128, "y")
    cluster.free(addr, 128, "y")
    assert cluster.memories[1].allocated_by_category["y"] == 0


def test_mn_bytes_by_category_sums_all_mns(cluster):
    cluster.alloc(0, 10, "z")
    cluster.alloc(1, 20, "z")
    assert cluster.mn_bytes_by_category()["z"] == 30
    assert cluster.total_mn_bytes() >= 30


def test_sim_executor_validates_cn(cluster):
    with pytest.raises(ConfigError):
        cluster.sim_executor(99)


def test_placement_spreads_over_mns():
    placement = NodePlacement([0, 1, 2])
    owners = {placement.mn_for_prefix(f"p{i}".encode()) for i in range(500)}
    assert owners == {0, 1, 2}
    leaf_owners = {placement.mn_for_leaf(f"k{i}".encode())
                   for i in range(500)}
    assert leaf_owners == {0, 1, 2}


def test_placement_prefix_and_leaf_differ():
    placement = NodePlacement([0, 1, 2])
    differs = sum(
        1 for i in range(200)
        if placement.mn_for_prefix(f"k{i}".encode())
        != placement.mn_for_leaf(f"k{i}".encode()))
    assert differs > 0


def test_network_unloaded_rtt_near_two_microseconds():
    net = NetworkConfig()
    rtt = net.unloaded_rtt_ns(0, 8)
    assert 1_000 < rtt < 3_000  # the paper quotes ~2 us


def test_network_msg_service_scales_with_bytes():
    net = NetworkConfig()
    small = net.msg_service_ns("mn", 8)
    large = net.msg_service_ns("mn", 2056)
    assert large > small + 100  # fat Node-256 reads cost real NIC time


def test_reset_nic_stats(cluster):
    cluster.cn_nics[0].messages = 5
    cluster.reset_nic_stats()
    assert cluster.cn_nics[0].messages == 0
