"""Recovery oracle: crash + recover never loses, duplicates, or
resurrects a key (ISSUE 5 acceptance).

Each seeded run kills a client generator mid-operation (``crash_cn``
with a mid-publish window) or an entire memory node (``crash_mn``),
then drives :class:`repro.recover.RecoveryManager` and re-reads the
world through a fresh survivor:

* every committed key survives crash + recovery with a value some
  permitted execution left behind;
* the dying operation may or may not have applied - both outcomes are
  legal, nothing else is;
* deleted keys stay deleted (no resurrection), scans return each key at
  most once (no duplicates);
* after ``crash_cn`` recovery, fsck comes back clean (orphan locks
  reclaimed, half-writes repaired);
* attaching a recovery manager to a crash-free run changes *nothing*:
  the fault schedule and op stats stay bit-identical.
"""

import os
import random

import pytest

from repro.art import encode_str
from repro.art.layout import HashEntry
from repro.baselines import SmartConfig, SmartIndex
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.dm.rdma import OpStats
from repro.errors import ClientCrash, MNUnavailable, RetryLimitExceeded
from repro.fault import FaultPlan, crash_cn, crash_mn
from repro.race import (
    RaceClient,
    TableParams,
    allocate_segment,
    create_table,
    fp2_of,
    key_hash,
)

# Seeded sweeps: tier-1 can deselect with -m "not property"; the nightly
# workflow widens every family proportionally via REPRO_PROPERTY_SEEDS.
pytestmark = pytest.mark.property

N_SEEDS = int(os.environ.get("REPRO_PROPERTY_SEEDS", "50"))
RACE_SEEDS = max(1, round(20 * N_SEEDS / 50))
MN_SEEDS = max(1, round(15 * N_SEEDS / 50))
NUM_KEYS = 40
OPS = 4000   # generous cap: churn stops at the scheduled crash long before
TIME_LIMIT_NS = 60_000_000_000

# "Sphinx+Loc" runs the leaf-locator tier through the same oracle: a
# directory entry left stale by the crash (leaf moved mid-op) must fall
# back to the INHT, so post-recovery answers stay inside the oracle.
TREE_SEEDS = [("Sphinx", s) for s in range(N_SEEDS)] + \
             [("Sphinx+Loc", s) for s in range(N_SEEDS)] + \
             [("SMART", s) for s in range(N_SEEDS)]


def _keys():
    return [encode_str(f"k/{i:03d}") for i in range(NUM_KEYS)]


def _build_tree(system):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    if system in ("Sphinx", "Sphinx+Loc"):
        index = SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=1 << 14,
            use_locator=(system == "Sphinx+Loc"),
            locator_budget_bytes=1 << 12))
    else:
        index = SmartIndex(cluster, SmartConfig(cache_budget_bytes=1 << 16))
    client = index.client(0)
    ex = cluster.direct_executor()
    keys = _keys()
    possible = {}
    for i, key in enumerate(keys):
        if i % 2 == 0:
            ex.run(client.insert(key, f"v{i}".encode()))
            possible[key] = {f"v{i}".encode()}
        else:
            possible[key] = {None}
    return cluster, index, client, keys, possible


def _churn_until_crash(cluster, client, executor, keys, possible, rng):
    """Deterministic single-client op mix (no fabric noise, so every
    answer is exact) until the scheduled ``crash_cn`` kills the client.
    The dying op widens the oracle both ways - it may or may not have
    applied.  Returns True once the crash fired."""
    for step in range(OPS):
        key = keys[rng.randrange(len(keys))]
        vals = possible[key]
        dice = rng.random()
        if dice < 0.35:
            try:
                got = executor.run(client.search(key))
            except ClientCrash:
                return True  # reads mutate nothing: oracle unchanged
            assert got in vals, (
                f"step={step}: search({key!r}) -> {got!r}, "
                f"oracle allows {vals!r}")
            possible[key] = {got}
        elif dice < 0.65:
            val = f"i{step}".encode()
            try:
                executor.run(client.insert(key, val))
            except ClientCrash:
                possible[key] = set(vals) | {val}
                return True
            possible[key] = {val}
        elif dice < 0.85:
            val = f"u{step}".encode()
            try:
                found = executor.run(client.update(key, val))
            except ClientCrash:
                possible[key] = set(vals) | {val}
                return True
            assert found == (vals != {None}), (
                f"step={step}: update({key!r}) found={found}, "
                f"oracle says {vals!r}")
            possible[key] = {val} if found else {None}
        else:
            try:
                executor.run(client.delete(key))
            except ClientCrash:
                possible[key] = set(vals) | {None}
                return True
            possible[key] = {None}
    return False


def _verify_against_oracle(cluster, client, keys, possible, tag):
    """Re-read the whole keyspace through a fresh survivor executor:
    values within the oracle, deleted keys still gone, scans
    duplicate-free and covering every definitely-present key."""
    survivor = cluster.direct_executor()
    for key in keys:
        got = survivor.run(client.search(key))
        assert got in possible[key], (
            f"{tag}: post-recovery search({key!r}) -> {got!r}, "
            f"oracle allows {possible[key]!r}")
        if possible[key] == {None}:
            assert got is None, f"{tag}: resurrected deleted key {key!r}"
    pairs = survivor.run(client.scan_count(keys[0], NUM_KEYS))
    seen = [k for k, _v in pairs]
    assert len(seen) == len(set(seen)), f"{tag}: scan returned duplicates"
    for k, v in pairs:
        assert v in possible.get(k, set()), (
            f"{tag}: scan returned ({k!r}, {v!r}) outside the oracle")
    must_appear = {k for k, vs in possible.items() if None not in vs}
    missing = must_appear - set(seen)
    assert not missing, f"{tag}: committed keys lost from scan: {missing!r}"


@pytest.mark.parametrize("system,seed", TREE_SEEDS,
                         ids=[f"{s}-{n}" for s, n in TREE_SEEDS])
def test_crash_cn_recovery_oracle(system, seed):
    cluster, index, client, keys, possible = _build_tree(system)
    manager = cluster.attach_recovery()
    rng = random.Random(seed * 6151 + 5)
    cluster.attach_faults(FaultPlan(
        seed=seed, rules=(crash_cn(rng.randrange(20, 800),
                                   applied_prob=0.5),)))
    victim = cluster.direct_executor()  # after attach: leases tracked
    crashed = _churn_until_crash(cluster, client, victim, keys, possible,
                                 rng)
    tag = f"{system} seed={seed}"
    assert crashed, f"{tag}: crash never fired - widen the verb window"
    assert victim.client_id in cluster.injector.crashed_clients
    report = manager.recover(index=index)
    assert report.fsck is not None, f"{tag}: recover skipped the fsck pass"
    assert report.fsck.clean, (
        f"{tag}: fsck not clean after recovery: {report.fsck.findings!r}")
    assert len(manager.lease_table) == 0, (
        f"{tag}: live leases survived recovery: "
        f"{manager.lease_table.records()!r}")
    _verify_against_oracle(cluster, client, keys, possible, tag)


# ---------------------------------------------------------------------------
# crash_mn: graceful degradation, never wrong answers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(MN_SEEDS))
def test_crash_mn_degrades_without_wrong_answers(seed):
    cluster, index, client, keys, possible = _build_tree("Sphinx")
    manager = cluster.attach_recovery()
    rng = random.Random(seed * 9311 + 7)
    dead_mn = rng.randrange(cluster.config.num_mns)
    cluster.attach_faults(FaultPlan(
        seed=seed, rules=(crash_mn(dead_mn,
                                   at_verb=rng.randrange(10, 400)),)))
    executor = cluster.direct_executor()
    unavailable = 0
    for step in range(OPS):
        key = keys[rng.randrange(len(keys))]
        vals = possible[key]
        dice = rng.random()
        if dice < 0.5:
            try:
                got = executor.run(client.search(key))
            except MNUnavailable:
                unavailable += 1
                continue  # fail-fast: the read mutated nothing
            except RetryLimitExceeded:
                continue
            assert got in vals, (
                f"seed={seed} step={step}: search({key!r}) -> {got!r} "
                f"with MN {dead_mn} dead, oracle allows {vals!r}")
            possible[key] = {got}
        else:
            val = f"m{step}".encode()
            try:
                executor.run(client.insert(key, val))
            except (MNUnavailable, RetryLimitExceeded):
                unavailable += 1
                # Fail-fast mid-insert: it may have partially landed.
                possible[key] = set(vals) | {val}
                continue
            possible[key] = {val}
    assert unavailable > 0, (
        f"seed={seed}: MN {dead_mn} died at a scheduled verb but no op "
        f"ever failed fast")
    assert cluster.injector.counters.get("mn_unavailable", 0) > 0
    # Recovery without the fsck walk (the tree spans the dead MN): the
    # sweep completes without raising, and any lease stranded on the
    # dead MN is reported unreachable rather than silently dropped.
    report = manager.recover()
    assert len(manager.lease_table) == report.unreachable + report.skipped
    # Surviving MNs still answer truthfully after the sweep.
    for key in keys[:10]:
        try:
            got = executor.run(client.search(key))
        except (MNUnavailable, RetryLimitExceeded):
            continue
        assert got in possible[key]


# ---------------------------------------------------------------------------
# RACE hash table: segment-lock reclamation keeps buckets writable
# ---------------------------------------------------------------------------

def _entry(client, key, addr):
    h = key_hash(key, client.params.seed)
    return HashEntry(addr=addr, fp2=fp2_of(h), node_type=1, occupied=True)


@pytest.mark.parametrize("seed", range(RACE_SEEDS))
def test_race_crash_recovery_oracle(seed):
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=16 << 20))
    params = TableParams(seed=77, groups_per_segment=8, slots_per_group=4,
                         initial_depth=1)
    info = create_table(cluster, 0, params)
    client = RaceClient(
        info, lambda depth: allocate_segment(cluster, 0, params, depth))
    keys = [f"p/{i:02d}".encode() for i in range(32)]
    addr_of = {key: 0x4000 + i * 64 for i, key in enumerate(keys)}
    loader = cluster.direct_executor()
    present = {}
    for i, key in enumerate(keys):
        if i % 2 == 0:
            loader.run(client.insert(key, _entry(client, key,
                                                 addr_of[key])))
        present[key] = (i % 2 == 0)  # True/False/None = in/out/ambiguous
    manager = cluster.attach_recovery()
    rng = random.Random(seed * 7907 + 11)
    cluster.attach_faults(FaultPlan(
        seed=seed, rules=(crash_cn(rng.randrange(10, 500),
                                   applied_prob=0.5),)))
    victim = cluster.direct_executor()
    crashed = False
    for step in range(OPS):
        key = keys[rng.randrange(len(keys))]
        state = present[key]
        dice = rng.random()
        try:
            if dice < 0.4:
                matches = victim.run(client.lookup(key))
                hit = any(e.addr == addr_of[key] for _sa, e in matches)
                if state is True:
                    assert hit, f"seed={seed} step={step}: lost {key!r}"
                elif state is False:
                    assert not hit, (
                        f"seed={seed} step={step}: resurrected {key!r}")
                present[key] = hit
            elif dice < 0.75:
                if state is not False:
                    continue  # RACE permits duplicates; oracle does not
                victim.run(client.insert(key, _entry(client, key,
                                                     addr_of[key])))
                present[key] = True
            else:
                if state is False:
                    continue
                removed = victim.run(client.delete(key, addr_of[key]))
                if state is True:
                    assert removed, (
                        f"seed={seed} step={step}: delete missed {key!r}")
                present[key] = False
        except ClientCrash:
            present[key] = None  # the dying op may have gone either way
            crashed = True
            break
    assert crashed, f"seed={seed}: crash never fired"
    manager.recover(race_clients=[client])
    assert len(manager.lease_table) == 0
    survivor = cluster.direct_executor()
    for key in keys:
        matches = survivor.run(client.lookup(key))
        hit = any(e.addr == addr_of[key] for _sa, e in matches)
        if present[key] is True:
            assert hit, f"seed={seed}: post-recovery lost {key!r}"
        elif present[key] is False:
            assert not hit, f"seed={seed}: post-recovery resurrected {key!r}"
    # No wedged bucket: a brand-new insert still lands and reads back.
    fresh = b"q/99"
    survivor.run(client.insert(fresh, _entry(client, fresh, 0x9000)))
    matches = survivor.run(client.lookup(fresh))
    assert any(e.addr == 0x9000 for _sa, e in matches), (
        f"seed={seed}: bucket wedged after recovery")


# ---------------------------------------------------------------------------
# Attaching recovery to a crash-free run is bit-invisible
# ---------------------------------------------------------------------------

def _chaos_run(with_recovery):
    cluster, _index, client, keys, _possible = _build_tree("Sphinx")
    if with_recovery:
        cluster.attach_recovery()
    cluster.attach_faults(FaultPlan.chaos(11, intensity=3.0))
    stats = OpStats()
    executor = cluster.sim_executor(0, stats)
    engine = cluster.engine
    rng = random.Random(424243)

    def mix():
        for step in range(60):
            key = keys[rng.randrange(len(keys))]
            try:
                if rng.random() < 0.5:
                    yield from executor.run(client.search(key))
                else:
                    yield from executor.run(
                        client.insert(key, f"x{step}".encode()))
            except RetryLimitExceeded:
                continue

    engine.run_until_complete(engine.process(mix(), name="bit"),
                              limit=engine.now + TIME_LIMIT_NS)
    return cluster.injector.schedule(), stats, engine.now


def test_attach_recovery_is_bit_invisible_without_crashes():
    """The lease hook is pure bookkeeping: same chaos seed, same ops,
    same fault schedule, same stats, same clock - with or without a
    RecoveryManager attached."""
    baseline = _chaos_run(with_recovery=False)
    with_mgr = _chaos_run(with_recovery=True)
    assert with_mgr[0] == baseline[0], "fault schedules diverged"
    assert with_mgr[1] == baseline[1], "op stats diverged"
    assert with_mgr[2] == baseline[2], "simulated clocks diverged"
