"""Extended ablations: cache-budget and request-skew sensitivity.

These probe the *why* behind the paper's Sec. V-B observations:

* Sphinx beats SMART+C with a tenth of its CN cache because the filter
  is succinct - its hit behaviour saturates at a tiny budget, while
  SMART's node cache keeps improving with bytes.
* Robustness to request skew: flattening zipfian to uniform costs Sphinx
  only the filter's hotness-eviction margin (~10%), and its advantage
  over SMART holds at any skew (SMART's paper-scaled cache is equally
  overwhelmed by a deep email tree under both distributions).
"""

from conftest import save_result

from repro.bench import (
    ablation_cache_budget,
    ablation_distribution_skew,
    format_table,
)


def _table(rows):
    headers = list(rows[0].keys())
    return format_table(headers, [[r[h] for h in headers] for r in rows])


def test_cache_budget_sensitivity(benchmark):
    rows = benchmark.pedantic(ablation_cache_budget, rounds=1, iterations=1)
    save_result("ablation_cache_budget", _table(rows))
    sphinx = [r for r in rows if r["system"].startswith("Sphinx")]
    smart = [r for r in rows if r["system"].startswith("SMART")]
    # Sphinx at a tenth of the budget stays within ~35% of 10x budget
    # (the filter degrades gracefully under eviction pressure).
    small = sphinx[0]["throughput_mops"]
    large = sphinx[-1]["throughput_mops"]
    assert small > 0.65 * large, (small, large)
    # Sphinx with a tenth of the budget still beats SMART with 10x.
    assert small > smart[-1]["throughput_mops"]


def test_distribution_skew_robustness(benchmark):
    rows = benchmark.pedantic(ablation_distribution_skew,
                              rounds=1, iterations=1)
    save_result("ablation_distribution_skew", _table(rows))
    by = {(r["system"], r["workload"]): r["throughput_mops"] for r in rows}
    # Neither system falls off a cliff when the skew flattens (the filter
    # degrades gracefully via hotness eviction; SMART's scaled cache is
    # equally overwhelmed by the deep email tree either way)...
    for system in ("SMART", "Sphinx"):
        ratio = by[(system, "C-uniform")] / by[(system, "C-zipfian")]
        assert 0.7 < ratio < 1.15, (system, ratio)
    # ...and Sphinx's margin holds regardless of the distribution.
    assert by[("Sphinx", "C-uniform")] > 2.0 * by[("SMART", "C-uniform")]
    assert by[("Sphinx", "C-zipfian")] > 2.0 * by[("SMART", "C-zipfian")]
