"""Extension experiment: ART-based Sphinx vs a fixed-width B+ tree.

Not a paper figure - it quantifies the *motivation* in the paper's
introduction: range indexes on DM that support variable-length keys are
built on ART because a B+ tree must pad every key to the maximum width.

Two measurements:

* throughput on read-heavy YCSB-C for u64 (where the B+ tree is a fair
  competitor) and for email keys padded to 32 B (where it is not);
* MN bytes of index structure per key for both.
"""

from conftest import save_result

from repro.baselines import BplusConfig, BplusIndex
from repro.bench import DEFAULT_KEYS, format_table, load_dataset
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.bench.harness import scaled_cache_bytes
from repro.ycsb import bulk_load, run_workload, workload

KEY_WIDTHS = {"u64": 8, "email": 32}


def _run_pair(dataset_name, num_keys, ops=2_400, workers=96):
    rows = []
    dataset = load_dataset(dataset_name, num_keys)
    # B+ tree.
    cluster = Cluster(ClusterConfig())
    bplus = BplusIndex(cluster, BplusConfig(
        key_width=KEY_WIDTHS[dataset_name]))
    bulk_load(cluster, bplus, dataset, value_size=48)
    run = run_workload(cluster, bplus, workload("C"), dataset,
                       system="B+tree", workers=workers, ops=ops,
                       warmup_ops_per_cn=1_000)
    row = run.row()
    row["index_bytes"] = cluster.mn_bytes_by_category().get("bplus_node", 0)
    rows.append(row)
    # Sphinx.
    dataset = load_dataset(dataset_name, num_keys)
    cluster = Cluster(ClusterConfig())
    sphinx = SphinxIndex(cluster, SphinxConfig(
        filter_budget_bytes=scaled_cache_bytes(num_keys)))
    bulk_load(cluster, sphinx, dataset, value_size=48)
    run = run_workload(cluster, sphinx, workload("C"), dataset,
                       system="Sphinx", workers=workers, ops=ops,
                       warmup_ops_per_cn=1_000)
    row = run.row()
    cats = cluster.mn_bytes_by_category()
    row["index_bytes"] = cats.get("inner", 0) + cats.get("hash_table", 0)
    rows.append(row)
    return rows


def test_bplus_vs_sphinx(benchmark):
    def compute():
        return {"u64": _run_pair("u64", min(DEFAULT_KEYS, 40_000)),
                "email": _run_pair("email", min(DEFAULT_KEYS, 40_000))}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    all_rows = results["u64"] + results["email"]
    headers = list(all_rows[0].keys())
    save_result("extra_bplus_vs_sphinx", format_table(
        headers, [[r[h] for h in headers] for r in all_rows]))
    by = {(r["dataset"], r["system"]): r for r in all_rows}
    # On fixed-width u64 keys the B+ tree is a legitimate competitor
    # (within ~3x either way)...
    u64_ratio = by[("u64", "Sphinx")]["throughput_mops"] / \
        by[("u64", "B+tree")]["throughput_mops"]
    assert 0.5 < u64_ratio < 6.0, u64_ratio
    # ...but variable-length keys cost it dearly: Sphinx wins clearly on
    # email, and the padded index structure is far larger per key.
    assert by[("email", "Sphinx")]["throughput_mops"] > \
        1.5 * by[("email", "B+tree")]["throughput_mops"]
    # The padding tax on the index structure (our synthetic email set is
    # split-dense, which also inflates ART's inner nodes - see
    # EXPERIMENTS.md - so the margin here is conservative).
    assert by[("email", "B+tree")]["index_bytes"] > \
        1.3 * by[("email", "Sphinx")]["index_bytes"]
    # And the B+ tree's round trips are fixed by tree depth while
    # Sphinx stays at ~3 regardless of key length.
    assert by[("email", "Sphinx")]["round_trips_per_op"] < \
        0.7 * by[("email", "B+tree")]["round_trips_per_op"]
