"""Fig 4 - YCSB throughput for ART / SMART / SMART+C / Sphinx.

Regenerates the paper's throughput bars (workloads LOAD, A-E on the u64
and email datasets) and asserts the *shapes* the paper claims:

* Sphinx outperforms every competitor on the read-dominated workloads
  (B, C, D) on both datasets; the email margins are the larger ones
  (paper: 1.9-7.3x vs 1.2-3.6x).
* Range query (E): the doorbell-batched systems (Sphinx, SMART, SMART+C)
  beat the sequential ART port by a factor >= ~2 (paper: 2.3-3.1x), and
  are comparable among themselves.
* Sphinx beats SMART+C on reads despite 10x less CN cache (Sec. V-B).

Known scale deviation (documented in EXPERIMENTS.md): on the shallow
small-scale u64 tree, SMART's scaled cache covers the insertion frontier
it could never cover at 60 M keys, so SMART+C can win the write-heavy
u64 LOAD here; the depth-scaling ablation quantifies the trend.
"""

from conftest import save_result

from repro.bench import fig4_ycsb, render_fig4

FULL_FACTOR_TOLERANCE = 0.95  # "comparable" per the paper


def _compute(dataset):
    return fig4_ycsb(dataset)


def test_fig4_u64(benchmark):
    result = benchmark.pedantic(lambda: _compute("u64"),
                                rounds=1, iterations=1)
    text = render_fig4(result)
    save_result("fig4_u64", text)
    benchmark.extra_info["rows"] = result.rows
    for workload in ("B", "C", "D"):
        speedups = result.speedups(workload)
        assert all(v >= FULL_FACTOR_TOLERANCE for v in speedups.values()), \
            (workload, speedups)
    # Range query (paper: 2.3-3.1x over ART, batched systems comparable).
    art_e = result.throughput("ART", "E")
    assert result.throughput("Sphinx", "E") > 1.8 * art_e
    for system in ("SMART", "SMART+C"):
        assert result.throughput(system, "E") > 1.3 * art_e
    # Sphinx vs SMART+C on pure reads, with a tenth of the cache.
    assert result.throughput("Sphinx", "C") > \
        FULL_FACTOR_TOLERANCE * result.throughput("SMART+C", "C")


def test_fig4_email(benchmark):
    result = benchmark.pedantic(lambda: _compute("email"),
                                rounds=1, iterations=1)
    text = render_fig4(result)
    save_result("fig4_email", text)
    benchmark.extra_info["rows"] = result.rows
    # Sphinx wins every workload on the email dataset (deep tree).
    for workload in ("LOAD", "A", "B", "C", "D"):
        speedups = result.speedups(workload)
        assert all(v >= FULL_FACTOR_TOLERANCE for v in speedups.values()), \
            (workload, speedups)
    # The headline factor: email read throughput several times ART's.
    assert result.throughput("Sphinx", "C") > \
        2.0 * result.throughput("ART", "C")
    art_e = result.throughput("ART", "E")
    assert result.throughput("Sphinx", "E") > 1.8 * art_e
    for system in ("SMART", "SMART+C"):
        assert result.throughput(system, "E") > 1.3 * art_e
