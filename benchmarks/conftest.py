"""Shared helpers for the benchmark suite.

Every figure's computation runs exactly once per session and its rendered
table is both printed (visible with ``pytest -s`` and in the benchmark
report's extra info) and saved under ``benchmarks/results/``.

Scale knobs: REPRO_BENCH_KEYS / REPRO_BENCH_OPS / REPRO_BENCH_WORKERS
(see repro.bench.harness).  The defaults regenerate every figure in
roughly half an hour; REPRO_BENCH_KEYS=15000 gives a quick smoke pass.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)


def pytest_sessionfinish(session, exitstatus):
    """Write host-side perf of this session's grid cells as BENCH_2.json.

    Every cell executed through ``repro.bench.harness.run_grid`` feeds the
    process-global tracker; sessions that ran no grids (collection-only,
    figure subsets without grid cells) write nothing.
    """
    from repro.bench.perftrack import TRACKER

    if not TRACKER.cells:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = TRACKER.write(str(RESULTS_DIR / "BENCH_2.json"))
    print(f"\nBENCH_2.json: {len(report['cells'])} cells, "
          f"total wall {report['total_wall_s']:.2f}s")
