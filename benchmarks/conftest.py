"""Shared helpers for the benchmark suite.

Every figure's computation runs exactly once per session and its rendered
table is both printed (visible with ``pytest -s`` and in the benchmark
report's extra info) and saved under ``benchmarks/results/``.

Scale knobs: REPRO_BENCH_KEYS / REPRO_BENCH_OPS / REPRO_BENCH_WORKERS
(see repro.bench.harness).  The defaults regenerate every figure in
roughly half an hour; REPRO_BENCH_KEYS=15000 gives a quick smoke pass.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)
