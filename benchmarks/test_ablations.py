"""Ablations of the design choices the paper argues for (Sec. III).

* Succinct filter cache on/off: without it the client reads Theta(L)
  hash entries per operation - the message count explodes and saturation
  arrives earlier (Sec. III-B's motivation).
* Scan doorbell batching on/off (the YCSB-E mechanism, Sec. V-B).
* Hotness-bit second chance vs plain random eviction (Sec. III-B's
  hot-prefix mechanism).
* Fingerprint width vs false-positive rate (the paper's ">=10 bits keeps
  FP under 1%" claim).
* Round trips vs dataset size: the scaling argument connecting our
  small simulated trees to the paper's 60 M-key trees.
"""

from conftest import save_result

from repro.bench import (
    ablation_depth_scaling,
    ablation_filter_cache,
    ablation_fingerprint_bits,
    ablation_hotness,
    ablation_scan_batching,
    format_table,
)


def _table(rows):
    headers = list(rows[0].keys())
    return format_table(headers, [[r[h] for h in headers] for r in rows])


def test_filter_cache_cuts_messages(benchmark):
    rows = benchmark.pedantic(ablation_filter_cache, rounds=1, iterations=1)
    save_result("ablation_filter_cache", _table(rows))
    with_filter = next(r for r in rows if r["system"] == "Sphinx")
    without = next(r for r in rows if r["system"] == "Sphinx-NoFilter")
    # Theta(L) hash-entry reads vs one: messages/op collapse...
    assert with_filter["messages_per_op"] < 0.55 * without["messages_per_op"]
    # ...and throughput improves under load.
    assert with_filter["throughput_mops"] > without["throughput_mops"]
    # Round trips are similar (both resolve the node in ~2 RTs + leaf) -
    # the filter's win is bandwidth/messages, exactly as the paper argues.
    assert with_filter["round_trips_per_op"] < \
        without["round_trips_per_op"] + 1.0


def test_scan_doorbell_batching(benchmark):
    rows = benchmark.pedantic(ablation_scan_batching, rounds=1, iterations=1)
    save_result("ablation_scan_batching", _table(rows))
    batched = next(r for r in rows if "on" in r["system"])
    sequential = next(r for r in rows if "off" in r["system"])
    assert batched["throughput_mops"] > 1.5 * sequential["throughput_mops"]
    assert batched["round_trips_per_op"] < \
        0.6 * sequential["round_trips_per_op"]


def test_hotness_second_chance(benchmark):
    rows = benchmark.pedantic(ablation_hotness, rounds=1, iterations=1)
    save_result("ablation_hotness", _table(rows))
    second = next(r for r in rows if r["policy"] == "second-chance")
    random_ev = next(r for r in rows if r["policy"] == "random")
    assert second["hot_hit_rate"] > random_ev["hot_hit_rate"] + 0.1


def test_fingerprint_bits(benchmark):
    rows = benchmark.pedantic(ablation_fingerprint_bits,
                              rounds=1, iterations=1)
    save_result("ablation_fingerprint_bits", _table(rows))
    by_bits = {r["fp_bits"]: r for r in rows}
    assert by_bits[10]["fp_rate"] < 0.01   # paper: >=10 bits -> < 1%
    assert by_bits[12]["fp_rate"] < 0.01
    assert by_bits[4]["fp_rate"] > by_bits[12]["fp_rate"]
    for row in rows:
        assert row["fp_rate"] <= row["bound"] * 1.5 + 1e-3


def test_depth_scaling_trend(benchmark):
    rows = benchmark.pedantic(ablation_depth_scaling, rounds=1, iterations=1)
    save_result("ablation_depth_scaling", _table(rows))
    sphinx = [r for r in rows if r["system"] == "Sphinx"]
    art = [r for r in rows if r["system"] == "ART"]
    # Sphinx's search cost is depth-independent (~3 round trips)...
    assert max(r["rts_per_search"] for r in sphinx) < 3.6
    # ...while the traversal baseline grows with the tree.
    assert art[-1]["rts_per_search"] > art[0]["rts_per_search"]
    assert art[-1]["rts_per_search"] > \
        sphinx[-1]["rts_per_search"]
