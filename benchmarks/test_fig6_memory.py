"""Fig 6 - MN-side space consumption.

Bulk-inserts the datasets into ART, SMART and Sphinx and measures the
bytes each system actually allocated in simulated MN memory (the layouts
are byte-accurate, so this is a real measurement, not a model):

* the inner node hash table adds only a small single-digit percentage
  over plain ART (paper: 3.3% u64 / 4.9% email);
* SMART's Node-256 preallocation costs a multiple of ART's footprint
  (paper: 2.1-3.0x).
"""

from conftest import save_result

from repro.bench import fig6_memory, render_fig6


def test_fig6_memory(benchmark):
    result = benchmark.pedantic(fig6_memory, rounds=1, iterations=1)
    save_result("fig6_memory", render_fig6(result))
    benchmark.extra_info["rows"] = result.rows
    for dataset in ("u64", "email"):
        art = result.total("ART", dataset)
        sphinx = result.total("Sphinx", dataset)
        smart = result.total("SMART", dataset)
        inht_overhead = (sphinx - art) / art
        assert 0.0 <= inht_overhead < 0.12, (dataset, inht_overhead)
        # Paper: 2.1-3.0x.  Our synthetic email keys branch more densely
        # than the paper's dump (~0.4 inner nodes/key vs ~0.1), which
        # amplifies the Node-256 preallocation penalty - same direction,
        # larger factor (see EXPERIMENTS.md).
        assert 1.5 < smart / art < 8.0, (dataset, smart / art)


def test_fig6_inht_share_is_small(benchmark):
    """Sec. III-A's claim from the hash-table side: entries are 8 B per
    inner node, so the INHT is a sliver of the index."""
    result = benchmark.pedantic(fig6_memory, rounds=1, iterations=1)
    for row in result.rows:
        if row["system"] != "Sphinx":
            continue
        assert row["hash_table"] < 0.12 * row["total"], row
