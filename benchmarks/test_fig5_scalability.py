"""Fig 5 - scalability under the write-intensive YCSB-A workload.

Sweeps worker counts (the paper's 6-192 coroutines over 3 CNs) and
regenerates the throughput-latency curves.  Shape assertions:

* every system gains throughput from 6 to a few dozen workers (the
  latency-hiding regime) and then saturates;
* Sphinx reaches the highest peak throughput on email (paper: up to
  6.1x) with lower latency at the peak; on u64 it beats ART and ties
  SMART, but SMART+C's scaled cache resolves the shallow 60k-key tree's
  write path locally (the dataset-scale artifact documented under Fig 4
  in EXPERIMENTS.md), so there Sphinx is only required to stay within
  10% of the best baseline;
* saturation is caused by NIC load: systems with more messages/op
  saturate at lower throughput.
"""

from conftest import save_result

from repro.bench import fig5_scalability, render_fig5


def _series_mops(result, system):
    return [r["throughput_mops"] for r in result.series(system)]


def test_fig5_u64(benchmark):
    result = benchmark.pedantic(lambda: fig5_scalability("u64"),
                                rounds=1, iterations=1)
    save_result("fig5_u64", render_fig5(result))
    benchmark.extra_info["rows"] = result.rows
    for system in ("ART", "SMART", "SMART+C", "Sphinx"):
        series = _series_mops(result, system)
        assert max(series) > 1.5 * series[0], (system, series)
    peak_sphinx = result.peak_throughput("Sphinx")
    assert peak_sphinx > result.peak_throughput("ART")
    # SMART ties and SMART+C can edge ahead on the shallow small-scale
    # u64 tree (see module docstring); Sphinx must stay within 2% / 10%.
    assert peak_sphinx >= 0.98 * result.peak_throughput("SMART")
    assert peak_sphinx >= 0.9 * result.peak_throughput("SMART+C")


def test_fig5_email(benchmark):
    result = benchmark.pedantic(lambda: fig5_scalability("email"),
                                rounds=1, iterations=1)
    save_result("fig5_email", render_fig5(result))
    benchmark.extra_info["rows"] = result.rows
    for system in ("ART", "SMART", "SMART+C", "Sphinx"):
        series = _series_mops(result, system)
        assert max(series) > 1.5 * series[0], (system, series)
    peak_sphinx = result.peak_throughput("Sphinx")
    for other in ("ART", "SMART", "SMART+C"):
        assert peak_sphinx > result.peak_throughput(other), other
    # Latency advantage at peak load (paper: up to 11.7x lower on email).
    assert result.latency_at_peak("Sphinx") < \
        result.latency_at_peak("ART")
