"""Fig 5 - scalability under the write-intensive YCSB-A workload.

Sweeps worker counts (the paper's 6-192 coroutines over 3 CNs) and
regenerates the throughput-latency curves.  Shape assertions:

* every system gains throughput from 6 to a few dozen workers (the
  latency-hiding regime) and then saturates;
* Sphinx reaches the highest peak throughput on both datasets (paper:
  up to 2.6x on u64, 6.1x on email) with lower latency at the peak;
* saturation is caused by NIC load: systems with more messages/op
  saturate at lower throughput.
"""

from conftest import save_result

from repro.bench import fig5_scalability, render_fig5


def _series_mops(result, system):
    return [r["throughput_mops"] for r in result.series(system)]


def test_fig5_u64(benchmark):
    result = benchmark.pedantic(lambda: fig5_scalability("u64"),
                                rounds=1, iterations=1)
    save_result("fig5_u64", render_fig5(result))
    benchmark.extra_info["rows"] = result.rows
    for system in ("ART", "SMART", "SMART+C", "Sphinx"):
        series = _series_mops(result, system)
        assert max(series) > 1.5 * series[0], (system, series)
    assert result.peak_throughput("Sphinx") >= \
        0.95 * max(result.peak_throughput(s)
                   for s in ("ART", "SMART", "SMART+C"))


def test_fig5_email(benchmark):
    result = benchmark.pedantic(lambda: fig5_scalability("email"),
                                rounds=1, iterations=1)
    save_result("fig5_email", render_fig5(result))
    benchmark.extra_info["rows"] = result.rows
    for system in ("ART", "SMART", "SMART+C", "Sphinx"):
        series = _series_mops(result, system)
        assert max(series) > 1.5 * series[0], (system, series)
    peak_sphinx = result.peak_throughput("Sphinx")
    for other in ("ART", "SMART", "SMART+C"):
        assert peak_sphinx > result.peak_throughput(other), other
    # Latency advantage at peak load (paper: up to 11.7x lower on email).
    assert result.latency_at_peak("Sphinx") < \
        result.latency_at_peak("ART")
