#!/usr/bin/env python3
"""Scenario: cache coherence across compute nodes.

One compute node keeps inserting keys under a shared prefix, forcing node
splits and node type switches on the memory side; a second compute node
concurrently reads.  With node-based caching this is the hard case (the
paper's Sec. II-B); Sphinx's succinct filter cache stays coherent because
it tracks only prefix *existence*:

* the reader's filter starts stale and heals through the freshness rule,
* type switches retire old nodes (Invalid) and repoint the hash table,
  which the reader follows without ever caching node contents.

The script prints what the reader observed - every read returns the
correct value while the structure churns underneath it.

Run:  python examples/multi_client_coherence.py
"""

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig


def main() -> None:
    cluster = Cluster(ClusterConfig(num_cns=2, num_mns=3))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    writer, reader = index.client(0), index.client(1)

    # Seed one key; the reader learns its path once.
    seed_key = encode_str("tenant/alpha/users/000")
    direct = cluster.direct_executor()
    direct.run(writer.insert(seed_key, b"v0"))
    direct.run(reader.search(seed_key))

    churn_keys = [encode_str(f"tenant/alpha/users/{i:03d}")
                  for i in range(1, 200)]
    observations = []

    def writer_proc():
        executor = cluster.sim_executor(0)
        for i, key in enumerate(churn_keys):
            yield from executor.run(writer.insert(key, f"v{i}".encode()))

    def reader_proc():
        executor = cluster.sim_executor(1)
        for round_no in range(300):
            value = yield from executor.run(reader.search(seed_key))
            observations.append(value)

    p1 = cluster.engine.process(writer_proc())
    p2 = cluster.engine.process(reader_proc())
    for process in (p1, p2):
        cluster.engine.run_until_complete(process)

    wrong = [v for v in observations if v != b"v0"]
    print(f"reads during churn : {len(observations)}")
    print(f"incorrect results  : {len(wrong)}")
    print(f"writer splits      : {writer.metrics.leaf_splits} leaf, "
          f"{writer.metrics.edge_splits} edge, "
          f"{writer.metrics.type_switches} type switches")
    print(f"reader retries     : {reader.metrics.op_restarts} "
          f"(stale hash entries / invalid nodes healed)")
    print(f"reader filter fills: {reader.metrics.stale_filter_fills} "
          f"(freshness rule, Sec. IV)")
    print(f"reader CN cache    : {reader.cn_cache_bytes()} bytes "
          "(succinct - no node contents cached, nothing to invalidate)")
    assert not wrong, "coherence violated!"
    print("\nAll reads returned the correct value while the remote "
          "structure churned: the succinct filter cache never went "
          "incoherent.")


if __name__ == "__main__":
    main()
