#!/usr/bin/env python3
"""Scenario: an email-keyed user directory on disaggregated memory.

This is the paper's motivating workload: variable-length string keys with
heavy shared prefixes, served from a memory pool by compute-side clients.
The script loads a synthetic address book, runs a skewed read-mostly
workload against Sphinx, SMART and the plain ART port, and reports the
numbers that matter on DM: simulated throughput, latency, round trips and
NIC messages per operation.

Run:  python examples/email_directory.py  [--users 30000] [--ops 2000]
"""

import argparse

from repro.baselines import ArtDmIndex, SmartConfig, SmartIndex
from repro.bench import scaled_cache_bytes
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.ycsb import bulk_load, make_email_dataset, run_workload, workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=30_000)
    parser.add_argument("--ops", type=int, default=2_000)
    parser.add_argument("--workers", type=int, default=96)
    args = parser.parse_args()

    directory = make_email_dataset(args.users, insert_pool=args.users // 10)
    print(f"{directory.size} addresses, mean key "
          f"{directory.average_key_len():.1f} B")
    budget = scaled_cache_bytes(directory.size)
    systems = {
        "ART": lambda c: ArtDmIndex(c),
        "SMART": lambda c: SmartIndex(
            c, SmartConfig(cache_budget_bytes=budget)),
        "Sphinx": lambda c: SphinxIndex(
            c, SphinxConfig(filter_budget_bytes=budget)),
    }
    print(f"CN cache budget: {budget / 1024:.0f} KiB "
          f"(the paper's 20 MB scaled to this dataset)\n")
    header = (f"{'system':8} {'workload':8} {'Mops':>8} {'avg us':>8} "
              f"{'p99 us':>8} {'RTs/op':>7} {'msgs/op':>8}")
    print(header)
    print("-" * len(header))
    for name, make in systems.items():
        cluster = Cluster(ClusterConfig())
        index = make(cluster)
        bulk_load(cluster, index, directory)
        for wl in ("B", "A"):  # read-mostly, then write-heavy
            result = run_workload(cluster, index, workload(wl), directory,
                                  system=name, workers=args.workers,
                                  ops=args.ops, warmup_ops_per_cn=2_000)
            print(f"{name:8} {wl:8} {result.throughput_mops:8.3f} "
                  f"{result.avg_latency_us:8.2f} "
                  f"{result.p99_latency_us:8.2f} "
                  f"{result.round_trips_per_op:7.2f} "
                  f"{result.messages_per_op:8.2f}")


if __name__ == "__main__":
    main()
