#!/usr/bin/env python3
"""Quickstart: build a simulated DM cluster, create a Sphinx index, and
run the five index operations.

Run:  python examples/quickstart.py
"""

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig, OpStats


def main() -> None:
    # A paper-style testbed: 3 compute nodes + 3 memory nodes.
    cluster = Cluster(ClusterConfig(num_cns=3, num_mns=3))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 16))

    # Each compute node gets one client; clients on a CN share its
    # succinct filter cache and directory caches.
    client = index.client(0)

    # The DirectExecutor runs operations instantly (no simulated clock)
    # while still counting RDMA verbs - ideal for exploring the API.
    executor = cluster.direct_executor()

    words = ["LYRICS", "LYRE", "LYRA", "LAMBDA", "LIMIT", "LIMA"]
    for i, word in enumerate(words):
        created = executor.run(client.insert(encode_str(word),
                                             f"value-{i}".encode()))
        print(f"insert {word!r:10} -> new={created}")

    # Point lookups: 3 round trips in the common case (hash entry read,
    # inner node read, leaf read).
    stats = OpStats()
    lookup_executor = cluster.direct_executor(stats)
    value = lookup_executor.run(client.search(encode_str("LYRICS")))
    print(f"search LYRICS -> {value!r}  "
          f"(round trips: {stats.round_trips})")

    # Update in place (checksum-protected, lock folded into the write).
    executor.run(client.update(encode_str("LYRICS"), b"fresh-value"))
    print("update LYRICS ->", executor.run(client.search(encode_str("LYRICS"))))

    # Ordered range scan.
    results = executor.run(client.scan_range(encode_str("LA"),
                                             encode_str("LZ")))
    print("scan [LA, LZ]:", [(k.rstrip(b'\0').decode(), v.decode())
                             for k, v in results])

    # Delete.
    executor.run(client.delete(encode_str("LIMA")))
    print("after delete, LIMA ->",
          executor.run(client.search(encode_str("LIMA"))))

    print("\nMN memory by category:", cluster.mn_bytes_by_category())
    print("CN cache:", client.cache_stats())


if __name__ == "__main__":
    main()
