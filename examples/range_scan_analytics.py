#!/usr/bin/env python3
"""Scenario: order-history range scans (YCSB-E style analytics).

Keys are time-ordered order ids (fixed-width u64), values are order
records; an analytics tier runs short range scans ("the next 50 orders
from this point").  The script contrasts the doorbell-batched scan
(Sphinx/SMART) with the sequential-read scan of the plain ART port -
the paper's Fig 4 YCSB-E result (2.3-3.1x) in miniature - and verifies
both return identical results.

Run:  python examples/range_scan_analytics.py
"""

import random

from repro.art import encode_u64
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig, OpStats


def build(scan_batched: bool):
    cluster = Cluster(ClusterConfig())
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 16))
    client = index.client(0)
    client.scan_batched = scan_batched
    executor = cluster.direct_executor()
    rng = random.Random(7)
    base = 1_700_000_000_000
    order_ids = sorted(base + rng.randrange(10**9) for _ in range(20_000))
    for i, order_id in enumerate(order_ids):
        record = f"order:{order_id}:amount:{(i * 37) % 500}".encode()
        executor.run(client.insert(encode_u64(order_id), record))
    return cluster, client, order_ids


def main() -> None:
    rng = random.Random(11)
    reference = None
    for batched in (True, False):
        cluster, client, order_ids = build(batched)
        stats = OpStats()
        executor = cluster.direct_executor(stats)
        timed = cluster.sim_executor(0)
        results = []
        start_clock = cluster.engine.now

        def scans():
            local = random.Random(11)
            out = []
            for _ in range(50):
                start = encode_u64(order_ids[local.randrange(
                    len(order_ids) - 100)])
                out.append((yield from timed.run(
                    client.scan_count(start, 50))))
            return out

        process = cluster.engine.process(scans())
        results = cluster.engine.run_until_complete(process)
        elapsed_us = (cluster.engine.now - start_clock) / 1e3
        # Re-run untimed to count verbs.
        local = random.Random(11)
        for _ in range(50):
            start = encode_u64(order_ids[local.randrange(
                len(order_ids) - 100)])
            executor.run(client.scan_count(start, 50))
        mode = "doorbell-batched" if batched else "sequential (ART port)"
        print(f"{mode:24}: {elapsed_us / 50:8.1f} us/scan, "
              f"{stats.round_trips / 50:6.1f} round trips/scan, "
              f"{stats.messages / 50:6.1f} messages/scan")
        flat = [[k for k, _v in scan] for scan in results]
        if reference is None:
            reference = flat
        else:
            assert flat == reference, "scan results must not depend on batching"
    print("\nidentical results; batching converts per-level round trips "
          "into parallel reads (the paper's 2.3-3.1x on YCSB-E).")


if __name__ == "__main__":
    main()
