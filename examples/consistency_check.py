#!/usr/bin/env python3
"""Scenario: auditing a live index with the offline consistency checker.

After a burst of concurrent writers has churned the remote tree (splits,
node type switches, deletes), `repro.tools.check_index` walks MN memory
directly - like a filesystem fsck - and validates every structural
invariant: headers, prefix hashes, append cursors, leaf checksums,
ancestor constraints, duplicate keys, and (for Sphinx) that every
reachable inner node still has a live hash-table entry.

Run:  python examples/consistency_check.py
"""

import random

from repro.art import encode_str
from repro.core import SphinxConfig, SphinxIndex
from repro.dm import Cluster, ClusterConfig
from repro.tools import check_index


def main() -> None:
    cluster = Cluster(ClusterConfig())
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 15))
    rng = random.Random(42)
    keys = [encode_str(f"acct/{rng.randrange(500)}/txn/{i}")
            for i in range(600)]

    def worker(wid):
        executor = cluster.sim_executor(wid % 3)
        client = index.client(wid % 3)
        local = random.Random(wid)
        for key in keys[wid::6]:
            yield from executor.run(client.insert(key, b"balance"))
        for _ in range(60):
            key = local.choice(keys)
            roll = local.random()
            if roll < 0.4:
                yield from executor.run(client.delete(key))
            elif roll < 0.8:
                yield from executor.run(client.update(key, b"updated"))
            else:
                yield from executor.run(client.search(key))

    processes = [cluster.engine.process(worker(w)) for w in range(6)]
    for process in processes:
        cluster.engine.run_until_complete(process)
    print(f"churn complete at t={cluster.engine.now / 1e6:.2f} ms simulated")

    report = check_index(cluster, index)
    print(report.summary())
    for warning in report.warnings[:5]:
        print("  warning:", warning)
    for error in report.errors[:5]:
        print("  ERROR:", error)
    assert report.clean, "consistency violated!"
    print("every invariant holds: the concurrency control survived the "
          "interleaving.")


if __name__ == "__main__":
    main()
