"""The unified client retry/backoff/timeout policy.

Every index client (Sphinx, SMART, ART-on-DM, RACE, B+) retries
optimistic operations under one :class:`RetryPolicy` instead of scattered
``max_retries``/``backoff_ns`` pairs.  The policy is deliberately tiny and
frozen: it is embedded in frozen config dataclasses and deep-copied with
benchmark snapshots.

``backoff_delay`` reproduces the historical jittered exponential backoff
bit-for-bit (same shift cap, same ``randrange`` bounds), so swapping the
old per-client fields for a shared policy does not move a single
simulated digit when faults are off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter, plus an optional per-op
    simulated-time deadline.

    * ``max_retries`` - attempts before :class:`RetryLimitExceeded`.
    * ``backoff_ns``  - base backoff; attempt *n* waits a jittered value
      in ``[c/2, c]`` with ``c = backoff_ns << min(n, max_backoff_shift)``.
    * ``op_timeout_ns`` - 0 disables; otherwise an operation that is
      still retrying ``op_timeout_ns`` simulated ns after it started
      raises :class:`RetryLimitExceeded` even with retries left.
    * ``torn_read_retries`` / ``inplace_update_retries`` - inner-loop
      budgets for checksum-failed leaf reads and contended in-place
      leaf updates; both historically hard-coded per call site (lint
      rule L006 now requires every retry loop to be policy-bound).
    """

    max_retries: int = 64
    backoff_ns: int = 2_000
    max_backoff_shift: int = 6
    op_timeout_ns: int = 0
    torn_read_retries: int = 16
    inplace_update_retries: int = 8

    def validate(self) -> None:
        if self.max_retries < 1:
            raise ConfigError("RetryPolicy.max_retries must be >= 1")
        if self.backoff_ns < 0:
            raise ConfigError("RetryPolicy.backoff_ns must be >= 0")
        if self.max_backoff_shift < 0:
            raise ConfigError("RetryPolicy.max_backoff_shift must be >= 0")
        if self.op_timeout_ns < 0:
            raise ConfigError("RetryPolicy.op_timeout_ns must be >= 0")
        if self.torn_read_retries < 1:
            raise ConfigError("RetryPolicy.torn_read_retries must be >= 1")
        if self.inplace_update_retries < 1:
            raise ConfigError(
                "RetryPolicy.inplace_update_retries must be >= 1")

    def backoff_delay(self, rng: random.Random, attempt: int) -> int:
        """Jittered delay before retry number ``attempt`` (0-based)."""
        ceiling = self.backoff_ns << min(attempt, self.max_backoff_shift)
        return ceiling // 2 + rng.randrange(ceiling // 2 + 1)

    def flat_delay(self) -> int:
        """Constant backoff for clients that historically never jittered
        (RACE); kept flat so the no-fault benchmark numbers are stable."""
        return self.backoff_ns

    def torn_read_delay(self, attempt: int) -> int:
        """Linear backoff for torn leaf reads (0-based attempt).  At the
        default ``backoff_ns`` this reproduces the historical
        ``1_000 * (attempt + 1)`` bit-for-bit."""
        return (self.backoff_ns // 2) * (attempt + 1)


DEFAULT_RETRY = RetryPolicy()
