"""Declarative fault plans.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule`.  Rules come in two flavours:

* **Stochastic fabric rules** (``drop``, ``delay``, ``duplicate``,
  ``stale_cas``, ``brownout``) are evaluated per verb by the injector's
  seeded RNG; the first matching rule that fires decides the verb's fate.
* **Scheduled environment rules** (``poke``, ``flip``, ``crash_mn`` with
  ``at_verb`` set) fire exactly once, when the global verb sequence
  number reaches ``at_verb``, and mutate memory-node bytes directly -
  modelling corruption and node loss rather than fabric behaviour.
* **Scheduled client rules** (``crash_cn``) also key on ``at_verb`` but
  kill the *client* that issues the matching verb: the op generator is
  abandoned mid-flight (locks stay held for lease recovery to reclaim)
  and the executor is dead from then on.

Everything is frozen and value-like so plans can sit inside benchmark
``CellSpec``s and be compared/hashed.  Plans never hold RNG state; the
:class:`repro.fault.inject.FaultInjector` owns the single seeded stream,
which is what makes a plan's schedule a pure function of
``(seed, rules, verb stream)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError

FABRIC_KINDS = ("drop", "delay", "duplicate", "stale_cas", "brownout")
ENV_KINDS = ("poke", "flip", "crash_mn")
CLIENT_KINDS = ("crash_cn",)
VERB_KINDS = ("read", "write", "cas", "faa")


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault.  Use the module-level constructors
    (:func:`drop`, :func:`delay`, ...) rather than building directly."""

    kind: str
    prob: float = 0.0                       # stochastic rules
    verbs: Optional[Tuple[str, ...]] = None  # None = all verb kinds
    mn: Optional[int] = None                # None = any MN
    applied_prob: float = 0.0               # drop: P(side effect applied)
    delay_ns: int = 0                       # delay / brownout
    start_ns: int = 0                       # matching window (sim time)
    end_ns: Optional[int] = None
    at_verb: Optional[int] = None           # scheduled env rules
    addr: Optional[int] = None              # poke/flip target
    data: bytes = b""                       # poke payload
    xor: int = 0                            # flip mask (0 = random bit)
    length: int = 1                         # flip span in bytes
    client: Optional[str] = None            # crash_cn victim prefix filter

    def validate(self) -> None:
        if self.kind in FABRIC_KINDS:
            if not (0.0 <= self.prob <= 1.0):
                raise ConfigError(f"{self.kind}: prob must be in [0, 1]")
            if not (0.0 <= self.applied_prob <= 1.0):
                raise ConfigError(
                    f"{self.kind}: applied_prob must be in [0, 1]")
        elif self.kind in CLIENT_KINDS:
            if self.at_verb is None:
                raise ConfigError("crash_cn: needs at_verb (a crash is a "
                                  "scheduled event, not a fabric rate)")
            if not (0.0 <= self.applied_prob <= 1.0):
                raise ConfigError(
                    f"{self.kind}: applied_prob must be in [0, 1]")
        elif self.kind in ENV_KINDS:
            if self.at_verb is None and self.prob == 0.0:
                raise ConfigError(
                    f"{self.kind}: needs at_verb (scheduled) or prob > 0")
            if self.kind == "poke" and (self.addr is None or not self.data):
                raise ConfigError("poke: needs addr and data")
            if self.kind == "crash_mn" and self.mn is None:
                raise ConfigError("crash_mn: needs mn")
        else:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.verbs is not None:
            for verb in self.verbs:
                if verb not in VERB_KINDS:
                    raise ConfigError(f"unknown verb kind {verb!r}")
        if self.delay_ns < 0 or self.start_ns < 0 or self.length < 1:
            raise ConfigError(f"{self.kind}: negative/zero-size field")
        if self.end_ns is not None and self.end_ns <= self.start_ns:
            raise ConfigError(f"{self.kind}: empty time window")


# -- rule constructors ------------------------------------------------------

def drop(prob: float, verbs: Optional[Tuple[str, ...]] = None, *,
         applied_prob: float = 0.0, mn: Optional[int] = None,
         start_ns: int = 0, end_ns: Optional[int] = None) -> FaultRule:
    """Lose a verb's completion.  ``applied_prob`` is the chance the MN
    applied the side effect before the loss (completion loss) versus the
    request itself being lost (no side effect)."""
    return FaultRule(kind="drop", prob=prob, verbs=verbs,
                     applied_prob=applied_prob, mn=mn,
                     start_ns=start_ns, end_ns=end_ns)


def delay(prob: float, delay_ns: int,
          verbs: Optional[Tuple[str, ...]] = None, *,
          mn: Optional[int] = None) -> FaultRule:
    """Deliver the completion late by ``delay_ns`` simulated ns."""
    return FaultRule(kind="delay", prob=prob, delay_ns=delay_ns,
                     verbs=verbs, mn=mn)


def duplicate(prob: float,
              verbs: Tuple[str, ...] = ("write",)) -> FaultRule:
    """Phantom retransmission: the verb applies twice, one completion."""
    return FaultRule(kind="duplicate", prob=prob, verbs=verbs)


def stale_cas(prob: float, *, mn: Optional[int] = None) -> FaultRule:
    """A CAS that actually swapped reports failure with the stale
    pre-swap snapshot (the classic lost-CAS-reply ambiguity)."""
    return FaultRule(kind="stale_cas", prob=prob, verbs=("cas",), mn=mn)


def brownout(mn: int, start_ns: int, end_ns: int, prob: float, *,
             delay_ns: int = 0) -> FaultRule:
    """A NIC brown-out window on one MN: during ``[start_ns, end_ns)``
    matching verbs are delayed (``delay_ns > 0``) or dropped unapplied."""
    return FaultRule(kind="brownout", prob=prob, mn=mn,
                     start_ns=start_ns, end_ns=end_ns, delay_ns=delay_ns)


def poke(addr: int, data: bytes, *, at_verb: int = 0) -> FaultRule:
    """Scheduled raw byte write at a global address (e.g. forge a lock
    word).  Models an abandoned lock / torn state without a client."""
    return FaultRule(kind="poke", addr=addr, data=bytes(data),
                     at_verb=at_verb)


def flip(addr: Optional[int] = None, *, xor: int = 0, length: int = 1,
         at_verb: Optional[int] = None, prob: float = 0.0,
         mn: Optional[int] = None) -> FaultRule:
    """Flip bits: XOR ``xor`` (0 = one random bit) into ``length`` bytes
    at ``addr``, or - when ``addr`` is None - at a seeded-random offset
    within one MN's allocated range."""
    return FaultRule(kind="flip", addr=addr, xor=xor, length=length,
                     at_verb=at_verb, prob=prob, mn=mn)


def crash_mn(mn: int, *, at_verb: int = 0) -> FaultRule:
    """Crash-and-blank: zero one MN's entire allocated region.  Data on
    that node is gone; clients must degrade, not corrupt.  After the
    crash every verb addressed to the node fails fast with
    :class:`repro.errors.MNUnavailable` (no retry storm)."""
    return FaultRule(kind="crash_mn", mn=mn, at_verb=at_verb)


def crash_cn(at_verb: int, *, client: Optional[str] = None,
             applied_prob: float = 0.0) -> FaultRule:
    """Kill a compute-node client mid-operation: the first verb at or
    after global sequence ``at_verb`` issued by a client whose id starts
    with ``client`` (``None`` = whoever issues that verb) never returns.
    The victim's generator is abandoned without cleanup - locks it holds
    stay held until lease recovery reclaims them - and its executor
    raises :class:`repro.errors.ClientCrash` on any further use.

    ``applied_prob`` is the chance the dying verb's side effect still
    landed at the MN (the request escaped the NIC before the crash) -
    the mid-publish window that makes half-writes reachable."""
    return FaultRule(kind="crash_cn", at_verb=at_verb, client=client,
                     applied_prob=applied_prob)


# -- the plan ---------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered fault schedule.

    ``timeout_ns`` is the client-visible completion timeout charged (in
    simulated time) whenever a drop/NAK leaves a verb without a reply.
    """

    seed: int
    rules: Tuple[FaultRule, ...] = ()
    timeout_ns: int = 12_000

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def validate(self) -> None:
        if self.timeout_ns < 0:
            raise ConfigError("FaultPlan.timeout_ns must be >= 0")
        for rule in self.rules:
            rule.validate()

    @classmethod
    def chaos(cls, seed: int, intensity: float = 1.0,
              crashes: bool = False, num_mns: int = 3) -> "FaultPlan":
        """The standard chaos mix used by ``--chaos`` and the property
        suite: fabric faults, under the *fail-safe CAS,
        at-least-once write* model the clients' retry protocols are
        designed to survive (see DESIGN.md "Fault model"):

        * reads: request or completion lost (no side effect either way),
        * writes: completion lost but the write applied,
        * CAS/FAA: request lost, nothing applied,
        * random completion delays, phantom write retransmissions,
        * one seeded brown-out window on a seeded MN.

        With ``crashes=True`` the mix additionally schedules one seeded
        ``crash_cn`` (a client dies mid-op; its dying verb lands with
        probability 0.5) and, on half the seeds, one seeded ``crash_mn``
        - survivable now that ``repro.recover`` reclaims abandoned
        leases and operations on a dead MN degrade via
        :class:`repro.errors.MNUnavailable`.  The default
        ``crashes=False`` mix is byte-identical to the pre-recovery
        plan.

        Memory-corruption rules (``flip``/``poke``) and ``stale_cas``
        are injectable but deliberately not part of this mix - silent
        corruption has no protocol-level recovery story - and are
        exercised by targeted tests instead.

        ``num_mns`` widens the seeded MN picks (brown-out window,
        ``crash_mn`` victim) to a rack-scale cluster; the default of 3
        keeps every existing plan byte-identical.
        """
        if intensity < 0:
            raise ConfigError("chaos intensity must be >= 0")
        if num_mns < 1:
            raise ConfigError("chaos num_mns must be >= 1")
        p = min(1.0, 0.01 * intensity)
        rng = random.Random(seed ^ 0xC4A05C4A05)
        window_start = rng.randrange(200_000, 2_000_000)
        rules = (
            drop(p, verbs=("read",)),
            drop(p, verbs=("write",), applied_prob=1.0),
            drop(p, verbs=("cas", "faa"), applied_prob=0.0),
            delay(min(1.0, 3 * p), delay_ns=20_000),
            duplicate(p, verbs=("write",)),
            brownout(rng.randrange(0, num_mns), window_start,
                     window_start + 250_000, min(1.0, 10 * p)),
        )
        if crashes:
            rules = rules + (
                crash_cn(rng.randrange(2_000, 40_000), applied_prob=0.5),)
            if rng.random() < 0.5:
                rules = rules + (
                    crash_mn(rng.randrange(0, num_mns),
                             at_verb=rng.randrange(50_000, 120_000)),)
        return cls(seed=seed, rules=rules)
