"""The runtime half of fault injection.

A :class:`FaultInjector` binds a :class:`FaultPlan` to a cluster's memory
nodes.  Executors consult :meth:`decide` once per verb; the injector
walks the plan's rules in order against its single seeded RNG and returns
either ``None`` (verb proceeds untouched) or a :class:`Decision` that the
executor turns into lost completions, delays, phantom retransmissions or
stale CAS replies.  Scheduled environment rules (pokes, bit flips, MN
crashes) fire from the same call, keyed on the global verb sequence
number, and mutate memory bytes directly - invisible to the allocator and
the sanitizer, exactly like real silent corruption.

Determinism: the schedule is a pure function of ``(plan, verb stream)``.
The injector draws from its RNG only for rules that *match* a verb, so a
plan with no rules consumes no randomness and perturbs nothing - the
zero-overhead guarantee the equivalence tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..dm.memory import Memory, addr_mn, addr_offset, make_addr
from ..dm.rdma import CasOp, FaaOp, ReadOp, Verb, WriteOp
from .plan import FaultPlan, FaultRule

_VERB_KIND = {ReadOp: "read", WriteOp: "write", CasOp: "cas", FaaOp: "faa"}

TRACE_LIMIT = 64


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the schedule and the trace."""
    seq: int          # global verb sequence number when it fired
    now: int          # simulated ns
    client: str       # client id of the verb (or "env" for crashes)
    kind: str         # rule kind ("drop", "delay", ..., "nak")
    verb: str         # verb kind the fault hit ("read", ..., "-")
    addr: int         # target global address (0 when not applicable)

    def compact(self) -> Tuple[int, int, str, str, str, int]:
        return (self.seq, self.now, self.client, self.kind,
                self.verb, self.addr)


@dataclass
class Decision:
    """What the executor should do to the current verb."""
    kind: str            # "drop" | "delay" | "duplicate" | "stale_cas"
    applied: bool = False  # drop/crash_cn: did the side effect land?
    delay_ns: int = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a live cluster."""

    def __init__(self, plan: FaultPlan, memories: Mapping[int, Memory]):
        plan.validate()
        self.plan = plan
        self._memories = memories
        self._rng = random.Random(plan.seed)
        self.verb_seq = 0
        self.counters: Dict[str, int] = {}
        self._schedule: List[Tuple] = []   # every fired event, compact form
        self._trace: List[FaultEvent] = []  # bounded, most recent last
        self._stochastic: List[FaultRule] = []
        self._scheduled: List[Tuple[int, FaultRule]] = []
        self._crash_pending: List[FaultRule] = []
        for idx, rule in enumerate(plan.rules):
            if rule.kind == "crash_cn":
                # Crash rules wait for a *matching* client at or after
                # at_verb, so they live outside the strict _scheduled
                # prefix (a client filter must not block later rules).
                self._crash_pending.append((idx, rule))
            elif rule.at_verb is not None:
                self._scheduled.append((idx, rule))
            else:
                self._stochastic.append(rule)
        self._scheduled.sort(key=lambda pair: (pair[1].at_verb, pair[0]))
        self._fired = 0  # prefix of self._scheduled already executed
        self._crash_pending.sort(key=lambda pair: (pair[1].at_verb, pair[0]))
        self._crash_pending = [rule for _, rule in self._crash_pending]
        self.crashed_clients: Set[str] = set()
        self.dead_mns: Set[int] = set()

    # -- accounting ------------------------------------------------------
    def _record(self, now: int, client: str, kind: str, verb: str,
                addr: int) -> None:
        event = FaultEvent(self.verb_seq, now, client, kind, verb, addr)
        self.counters[kind] = self.counters.get(kind, 0) + 1
        self._schedule.append(event.compact())
        self._trace.append(event)
        if len(self._trace) > TRACE_LIMIT:
            del self._trace[0]

    def faults_total(self) -> int:
        return sum(self.counters.values())

    def schedule(self) -> Tuple[Tuple, ...]:
        """The full fired-fault schedule (compact tuples) - the object the
        determinism tests compare bit-for-bit."""
        return tuple(self._schedule)

    def trace_tuple(self) -> Tuple[FaultEvent, ...]:
        """The most recent fired faults (bounded), for error context."""
        return tuple(self._trace)

    # -- address sanity (NAK semantics) ----------------------------------
    def address_ok(self, op: Verb) -> bool:
        """Whether the fabric can even route this verb.  Corruption can
        hand clients garbage pointers; a real NIC answers with a NAK, not
        a Python KeyError."""
        memory = self._memories.get(addr_mn(op.addr))
        if memory is None:
            return False
        offset = addr_offset(op.addr)
        cls = op.__class__
        if cls is ReadOp:
            size = op.size
        elif cls is WriteOp:
            size = len(op.data)
        else:
            size = 8
        return 64 <= offset and offset + size <= memory.capacity

    def record_nak(self, client: str, op: Verb, now: int) -> None:
        self._record(now, client, "nak", _VERB_KIND[op.__class__], op.addr)

    # -- MN liveness (crash_mn fail-fast) --------------------------------
    def mn_dead(self, mn: int) -> bool:
        return mn in self.dead_mns

    def record_mn_unavailable(self, client: str, op: Verb,
                              now: int) -> None:
        self._record(now, client, "mn_unavailable",
                     _VERB_KIND[op.__class__], op.addr)

    # -- the per-verb hook ----------------------------------------------
    def decide(self, client: str, op: Verb, now: int) -> Optional[Decision]:
        """Called by executors once per verb, in issue order."""
        seq = self.verb_seq
        if self._fired < len(self._scheduled):
            self._run_scheduled(seq, now)
        decision = None
        if self._crash_pending:
            decision = self._match_crash(client, op, seq, now)
        if decision is None and self._stochastic:
            decision = self._match_stochastic(client, op, now)
        self.verb_seq = seq + 1
        return decision

    def _match_crash(self, client: str, op: Verb, seq: int,
                     now: int) -> Optional[Decision]:
        for i, rule in enumerate(self._crash_pending):
            if rule.at_verb > seq:
                continue
            if rule.client is not None \
                    and not client.startswith(rule.client):
                continue
            del self._crash_pending[i]
            self.crashed_clients.add(client)
            applied_prob = rule.applied_prob
            if applied_prob >= 1.0:
                applied = True
            elif applied_prob <= 0.0:
                applied = False
            else:
                applied = self._rng.random() < applied_prob
            self._record(now, client, "crash_cn",
                         _VERB_KIND[op.__class__], op.addr)
            return Decision("crash_cn", applied=applied)
        return None

    def _match_stochastic(self, client: str, op: Verb,
                          now: int) -> Optional[Decision]:
        verb_kind = _VERB_KIND[op.__class__]
        mn = addr_mn(op.addr)
        rng = self._rng
        for rule in self._stochastic:
            if rule.verbs is not None and verb_kind not in rule.verbs:
                continue
            if rule.mn is not None and mn != rule.mn:
                continue
            if now < rule.start_ns:
                continue
            if rule.end_ns is not None and now >= rule.end_ns:
                continue
            if rule.kind == "flip":
                if rng.random() >= rule.prob:
                    continue
                self._random_flip(rule, now)
                return None  # environment corruption; the verb proceeds
            if rng.random() >= rule.prob:
                continue
            return self._fire(rule, client, verb_kind, op.addr, now)
        return None

    def _fire(self, rule: FaultRule, client: str, verb_kind: str,
              addr: int, now: int) -> Decision:
        kind = rule.kind
        self._record(now, client, kind, verb_kind, addr)
        if kind == "delay":
            return Decision("delay", delay_ns=rule.delay_ns)
        if kind == "duplicate":
            return Decision("duplicate")
        if kind == "stale_cas":
            return Decision("stale_cas")
        # drop, or a brown-out acting as drop/delay
        if kind == "brownout" and rule.delay_ns > 0:
            return Decision("delay", delay_ns=rule.delay_ns)
        applied_prob = rule.applied_prob
        if applied_prob >= 1.0:
            applied = True
        elif applied_prob <= 0.0:
            applied = False
        else:
            applied = self._rng.random() < applied_prob
        return Decision("drop", applied=applied)

    # -- scheduled environment faults ------------------------------------
    def _run_scheduled(self, seq: int, now: int) -> None:
        while self._fired < len(self._scheduled):
            _, rule = self._scheduled[self._fired]
            if rule.at_verb > seq:
                return
            self._fired += 1
            if rule.kind == "poke":
                self._poke_bytes(rule.addr, rule.data)
                self._record(now, "env", "poke", "-", rule.addr)
            elif rule.kind == "flip":
                self._random_flip(rule, now)
            else:  # crash_mn
                self._crash(rule.mn)
                self._record(now, "env", "crash_mn", "-",
                             make_addr(rule.mn, 64))

    def _poke_bytes(self, addr: int, data: bytes) -> None:
        """Raw byte write, bypassing allocator/sanitizer bookkeeping -
        this is physical corruption, not a protocol access."""
        memory = self._memories[addr_mn(addr)]
        offset = addr_offset(addr)
        end = offset + len(data)
        if end > len(memory._data):
            memory._data.extend(bytes(end - len(memory._data)))
        memory._data[offset:end] = data

    def _random_flip(self, rule: FaultRule, now: int) -> None:
        rng = self._rng
        if rule.addr is not None:
            addr = rule.addr
        else:
            mn_ids = sorted(self._memories)
            mn = rule.mn if rule.mn is not None else rng.choice(mn_ids)
            memory = self._memories[mn]
            bump = memory.footprint_bytes()
            if bump <= 64:
                return
            addr = make_addr(mn, rng.randrange(64, bump))
        memory = self._memories[addr_mn(addr)]
        offset = addr_offset(addr)
        mask = rule.xor if rule.xor else (1 << rng.randrange(8))
        for i in range(rule.length):
            if offset + i >= len(memory._data):
                break
            memory._data[offset + i] ^= mask
        self._record(now, "env", "flip", "-", addr)

    def _crash(self, mn: int) -> None:
        memory = self._memories[mn]
        end = min(memory._bump, len(memory._data))
        if end > 64:
            memory._data[64:end] = bytes(end - 64)
        self.dead_mns.add(mn)
