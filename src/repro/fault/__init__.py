"""Deterministic fault injection for the disaggregated-memory fabric.

``repro.fault`` is the chaos substrate: a seeded :class:`FaultPlan` of
declarative rules (drop / delay / duplicate a verb's completion, fail a
CAS with a stale snapshot, flip bits, blank an MN region, NIC brown-out
windows) is attached to a cluster via ``Cluster.attach_faults(plan)``,
mirroring ``attach_sanitizer``.  Executors created after the attach
consult the resulting :class:`FaultInjector` on every verb, so Sphinx,
SMART, RACE and B+ clients are all covered without per-index code.

The package also owns :class:`RetryPolicy` - the one retry/backoff/
timeout policy shared by every client - so containment behaviour is
uniform: any injected fault surfaces to a client as
:class:`repro.errors.InjectedFault`, is retried under the policy, and
exhaustion raises :class:`repro.errors.RetryLimitExceeded` carrying the
fault trace.
"""

from .inject import FaultEvent, FaultInjector
from .plan import (
    FaultPlan,
    FaultRule,
    brownout,
    crash_cn,
    crash_mn,
    delay,
    drop,
    duplicate,
    flip,
    poke,
    stale_cas,
)
from .retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "brownout",
    "crash_cn",
    "crash_mn",
    "delay",
    "drop",
    "duplicate",
    "flip",
    "poke",
    "stale_cas",
]
