"""YCSB benchmark: datasets, workload mixes, closed-loop runner."""

from .datasets import Dataset, make_dataset, make_email_dataset, make_u64_dataset
from .runner import RunResult, bulk_load, run_workload, warm_clients
from .workloads import WORKLOADS, WorkloadSpec, workload

__all__ = [
    "Dataset",
    "make_dataset",
    "make_email_dataset",
    "make_u64_dataset",
    "RunResult",
    "bulk_load",
    "run_workload",
    "warm_clients",
    "WORKLOADS",
    "WorkloadSpec",
    "workload",
]
