"""Drive YCSB workloads against an index on the simulated cluster.

The runner reproduces the paper's methodology (Sec. V-A/V-C):

* the dataset is bulk-loaded untimed;
* per-CN caches are warmed (the paper's clients run long enough for
  caches to reach steady state; we warm explicitly so short simulated
  runs measure steady-state behaviour);
* ``workers`` closed-loop clients - the paper's coroutines - are spread
  evenly over the CNs and executed as simulation processes;
* throughput is completed operations over simulated time, latency is
  per-operation simulated time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import accumulate as _accumulate
from typing import Dict, List, Optional

from ..dm.cluster import Cluster
from ..dm.rdma import OpStats
from ..errors import (
    ClientCrash,
    ConfigError,
    InjectedFault,
    MNUnavailable,
    RetryLimitExceeded,
    StaleEpoch,
)
from ..obs.counters import Counters, client_counters
from ..sim.resources import LatencyRecorder
from ..util.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from .datasets import Dataset
from .workloads import ZIPFIAN_THETA, WorkloadSpec


@dataclass
class RunResult:
    """Outcome of one timed workload run."""

    system: str
    workload: str
    dataset: str
    workers: int
    ops: int
    sim_ns: int
    latency: LatencyRecorder
    op_stats: OpStats
    nic_utilization: Dict[str, float] = field(default_factory=dict)
    client_metrics: Counters = field(default_factory=Counters)
    latency_by_op: Dict[str, LatencyRecorder] = field(default_factory=dict)
    # Chaos accounting: ops that surfaced a clean failure under fault
    # injection, and the injector's fired-fault counters.  Both stay at
    # their defaults when no FaultPlan is attached, keeping row() (and
    # with it every baseline comparison) byte-identical to fault-free
    # runs.
    failed_ops: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    # Workers killed mid-run by ``crash_cn`` (their unfinished ops count
    # into failed_ops, so goodput reflects the lost capacity).
    crashed_workers: int = 0
    # The subset of failed_ops that died in degraded mode - on a dead
    # MN group (MNUnavailable) or a failover fence (StaleEpoch) - as
    # opposed to transient chaos retries.  Zero on fault-free runs.
    degraded_ops: int = 0
    # Host-side performance of producing this result (wall seconds, engine
    # events, ...).  Filled by the harness grid runner; not part of row(),
    # which only carries simulated-world outputs.
    perf: Optional[dict] = None
    # Observability (--profile): the per-op breakdown and the finished
    # repro.obs.Tracer that produced it.  Both stay None when no tracer
    # is attached; neither is part of row().
    profile: Optional[dict] = None
    trace: Optional[object] = None
    # Multi-tenancy: per-tenant goodput/latency rows (see
    # repro.tenancy.TenancyController.tenant_rows).  None when the run
    # had no tenancy attached; not part of row(), so single-tenant
    # results stay byte-identical to the pre-tenancy runner.
    tenants: Optional[List[dict]] = None

    @property
    def throughput_mops(self) -> float:
        """Throughput in million operations per (simulated) second."""
        if self.sim_ns == 0:
            return 0.0
        return self.ops / (self.sim_ns / 1e9) / 1e6

    @property
    def goodput_mops(self) -> float:
        """Successfully completed operations per simulated second - what
        ``--chaos`` reports alongside raw throughput."""
        if self.sim_ns == 0:
            return 0.0
        return (self.ops - self.failed_ops) / (self.sim_ns / 1e9) / 1e6

    @property
    def avg_latency_us(self) -> float:
        return self.latency.mean() / 1e3

    @property
    def p99_latency_us(self) -> float:
        return self.latency.percentile(99) / 1e3

    def verb_counters(self) -> Counters:
        """The executor-level verb totals in the shared facade shape."""
        return Counters.from_opstats(self.op_stats)

    @property
    def round_trips_per_op(self) -> float:
        return self.verb_counters()["round_trips"] / self.ops \
            if self.ops else 0.0

    @property
    def messages_per_op(self) -> float:
        return self.verb_counters()["messages"] / self.ops \
            if self.ops else 0.0

    def row(self) -> dict:
        return {
            "system": self.system,
            "workload": self.workload,
            "dataset": self.dataset,
            "workers": self.workers,
            "ops": self.ops,
            "throughput_mops": round(self.throughput_mops, 4),
            "avg_latency_us": round(self.avg_latency_us, 3),
            "p99_latency_us": round(self.p99_latency_us, 3),
            "round_trips_per_op": round(self.round_trips_per_op, 3),
            "messages_per_op": round(self.messages_per_op, 3),
        }


def _value(seq: int, size: int) -> bytes:
    """A distinguishable fixed-size value payload."""
    stamp = seq.to_bytes(8, "little")
    return (stamp * (size // 8 + 1))[:size]


def bulk_load(cluster: Cluster, index, dataset: Dataset,
              value_size: int = 64) -> None:
    """Insert the dataset untimed through one client per CN round-robin,
    so every CN's local caches see a share of the tree."""
    num_cns = cluster.config.num_cns
    executors = [cluster.direct_executor() for _ in range(num_cns)]
    clients = [index.client(cn) for cn in range(num_cns)]
    for i, key in enumerate(dataset.keys):
        cn = i % num_cns
        executors[cn].run(clients[cn].insert(key, _value(i, value_size)))


def warm_clients(cluster: Cluster, index, spec: WorkloadSpec,
                 dataset: Dataset, warmup_ops_per_cn: int,
                 seed: int = 99) -> None:
    """Run untimed searches on every CN to bring caches to steady state."""
    if warmup_ops_per_cn <= 0:
        return
    for cn in range(cluster.config.num_cns):
        rng = random.Random(seed + cn)
        chooser = _make_chooser(spec, dataset, rng)
        client = index.client(cn)
        executor = cluster.direct_executor()
        for _ in range(warmup_ops_per_cn):
            key = dataset.keys[chooser.next() % len(dataset.keys)]
            executor.run(client.search(key))


def _make_chooser(spec: WorkloadSpec, dataset: Dataset,
                  rng: random.Random):
    n = len(dataset.keys)
    if spec.distribution == "zipfian":
        return ScrambledZipfianGenerator(n, ZIPFIAN_THETA, rng)
    if spec.distribution == "uniform":
        return UniformGenerator(n, rng)
    if spec.distribution == "latest":
        return LatestGenerator(n, ZIPFIAN_THETA, rng)
    raise ConfigError(f"bad distribution {spec.distribution!r}")


class _SharedRunState:
    """State shared by all workers of one run (keys seen, insert pool)."""

    def __init__(self, dataset: Dataset, spec: WorkloadSpec, seed: int):
        self.keys: List[bytes] = list(dataset.keys)
        self.pool: List[bytes] = list(dataset.insert_pool)
        self.spec = spec
        self.seed = seed
        self.insert_seq = len(self.keys)

    def next_insert_key(self) -> Optional[bytes]:
        if not self.pool:
            return None
        key = self.pool.pop()
        self.keys.append(key)
        self.insert_seq += 1
        return key


def _worker(cluster: Cluster, index, state: _SharedRunState, wid: int,
            cn: int, ops: int, latency: LatencyRecorder, stats: OpStats,
            latency_by_op: Dict[str, LatencyRecorder],
            failed: Optional[Dict[str, int]] = None):
    """One closed-loop client coroutine (a simulation process)."""
    spec = state.spec
    rng = random.Random(state.seed * 7919 + wid)
    chooser = _make_chooser(spec, _DatasetView(state), rng)
    client = index.client(cn)
    executor = cluster.sim_executor(cn, stats)
    engine = cluster.engine
    mix = spec.mix()
    ops_names = [k for k, v in mix.items() if v > 0]
    weights = [mix[k] for k in ops_names]
    # Pre-accumulated weights: random.choices() otherwise rebuilds the
    # cumulative list on every op.  Same bisect, same rng.random() draw,
    # so the op sequence is unchanged.
    cum_weights = list(_accumulate(weights))
    for i in range(ops):
        op_name = rng.choices(ops_names, cum_weights=cum_weights, k=1)[0]
        start = engine.now
        try:
            if op_name == "read":
                key = state.keys[chooser.next() % len(state.keys)]
                yield from executor.run(client.search(key))
            elif op_name == "update":
                key = state.keys[chooser.next() % len(state.keys)]
                yield from executor.run(
                    client.update(key, _value(wid * ops + i,
                                              spec.value_size)))
            elif op_name == "insert":
                key = state.next_insert_key()
                if key is None:  # pool exhausted: degrade to an update
                    key = state.keys[chooser.next() % len(state.keys)]
                    yield from executor.run(
                        client.update(key, _value(i, spec.value_size)))
                else:
                    yield from executor.run(
                        client.insert(key, _value(state.insert_seq,
                                                  spec.value_size)))
                    if isinstance(chooser, LatestGenerator):
                        chooser.advance()
            elif op_name == "scan":
                key = state.keys[chooser.next() % len(state.keys)]
                length = rng.randint(1, spec.scan_max_len)
                yield from executor.run(client.scan_count(key, length))
            elif op_name == "rmw":
                key = state.keys[chooser.next() % len(state.keys)]
                value = yield from executor.run(client.search(key))
                new = _value(i, spec.value_size) if value is None else \
                    bytes(reversed(value))
                yield from executor.run(client.update(key, new))
        except (MNUnavailable, StaleEpoch):
            # Degraded-mode failure: the op routed to a dead MN group
            # (and every replica, if any, was also down) or raced a
            # failover fence.  Fail-fast by design - one typed error
            # per op, no retry storm - and counted apart from chaos
            # retries so rack tables can show outage cost distinctly.
            if failed is None:
                raise
            failed["ops"] += 1
            failed["degraded"] += 1
        except (RetryLimitExceeded, InjectedFault):
            # Clean per-op failure under fault injection: count it
            # against goodput and keep the closed loop running.  With no
            # plan attached these exceptions stay fatal, as before.
            if failed is None:
                raise
            failed["ops"] += 1
        except ClientCrash:
            # crash_cn killed this worker: its dying op and everything it
            # would still have run count against goodput, and the closed
            # loop ends here - a dead client issues no more verbs.
            if failed is None:
                raise
            failed["ops"] += ops - i
            failed["crashed"] += 1
            latency.record(engine.now - start)
            return
        elapsed = engine.now - start
        latency.record(elapsed)
        latency_by_op.setdefault(op_name, LatencyRecorder()).record(elapsed)


class _DatasetView:
    """Adapter so _make_chooser sizes distributions off the live key list."""

    def __init__(self, state: _SharedRunState):
        self.keys = state.keys


class _TenantLane:
    """One worker's per-tenant op machinery (rng, chooser, executor).

    Each (worker, tenant) pair draws from its own seeded rng so a
    tenant's op stream is a deterministic function of (seed, wid,
    tenant) alone - reordering tenants inside a worker, or adding a
    tenant, never perturbs another tenant's stream.
    """

    __slots__ = ("rng", "chooser", "executor", "ops_names", "cum_weights",
                 "spec", "served")

    def __init__(self, cluster, state: _SharedRunState, wid: int, cn: int,
                 tenant: int, spec, stats: OpStats):
        self.spec = spec
        self.rng = random.Random(state.seed * 7919 + wid * 104729 + tenant)
        self.chooser = _make_chooser(spec, _DatasetView(state), self.rng)
        self.executor = cluster.sim_executor(cn, stats)
        mix = spec.mix()
        self.ops_names = [k for k, v in mix.items() if v > 0]
        self.cum_weights = list(_accumulate(mix[k] for k in self.ops_names))
        self.served = 0


def _tenant_worker(cluster: Cluster, index, state: _SharedRunState,
                   wid: int, cn: int, ops: int, controller,
                   latency: LatencyRecorder,
                   latency_by_op: Dict[str, LatencyRecorder],
                   failed: Optional[Dict[str, int]] = None):
    """One closed-loop client multiplexing the roster's tenants.

    The shared :class:`repro.tenancy.TenancyController` decides *which*
    tenant's op runs next (weighted-fair over every tenant whose token
    bucket has a token) and *when* (sleeping until the earliest refill
    when all buckets are empty); this worker then runs the op exactly
    like :func:`_worker` does, charging verbs and latency to the
    tenant's own stores as well as the run-level ones.
    """
    engine = cluster.engine
    client = index.client(cn)
    lanes: Dict[int, _TenantLane] = {}
    completed = 0
    while completed < ops:
        tenant, wait_ns = controller.acquire(engine.now)
        if tenant < 0:
            yield engine.timeout(wait_ns)
            continue
        lane = lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(cluster, state, wid, cn, tenant,
                               controller.workload_specs[tenant],
                               controller.op_stats[tenant])
            lanes[tenant] = lane
        spec = lane.spec
        rng = lane.rng
        chooser = lane.chooser
        executor = lane.executor
        op_name = rng.choices(lane.ops_names,
                              cum_weights=lane.cum_weights, k=1)[0]
        i = lane.served
        lane.served += 1
        controller.ops_done[tenant] += 1
        start = engine.now
        try:
            if op_name == "read":
                key = state.keys[chooser.next() % len(state.keys)]
                yield from executor.run(client.search(key))
            elif op_name == "update":
                key = state.keys[chooser.next() % len(state.keys)]
                yield from executor.run(
                    client.update(key, _value(wid * ops + i,
                                              spec.value_size)))
            elif op_name == "insert":
                key = state.next_insert_key()
                if key is None:  # pool exhausted: degrade to an update
                    key = state.keys[chooser.next() % len(state.keys)]
                    yield from executor.run(
                        client.update(key, _value(i, spec.value_size)))
                else:
                    yield from executor.run(
                        client.insert(key, _value(state.insert_seq,
                                                  spec.value_size)))
                    if isinstance(chooser, LatestGenerator):
                        chooser.advance()
            elif op_name == "scan":
                key = state.keys[chooser.next() % len(state.keys)]
                length = rng.randint(1, spec.scan_max_len)
                yield from executor.run(client.scan_count(key, length))
            elif op_name == "rmw":
                key = state.keys[chooser.next() % len(state.keys)]
                value = yield from executor.run(client.search(key))
                new = _value(i, spec.value_size) if value is None else \
                    bytes(reversed(value))
                yield from executor.run(client.update(key, new))
        except (MNUnavailable, StaleEpoch):
            # Degraded-mode failure (dead group / failover fence),
            # charged to the issuing tenant's failure count, degraded
            # count, and retry budget alike.
            if failed is None:
                raise
            failed["ops"] += 1
            failed["degraded"] += 1
            controller.failed_ops[tenant] += 1
            controller.degraded_ops[tenant] += 1
            controller.charge_retry(tenant)
        except (RetryLimitExceeded, InjectedFault):
            if failed is None:
                raise
            failed["ops"] += 1
            controller.failed_ops[tenant] += 1
            controller.charge_retry(tenant)
        except ClientCrash:
            # The dying op is charged to the tenant that issued it; the
            # capacity this dead worker would still have contributed is
            # charged to the run, not to any one tenant.
            if failed is None:
                raise
            failed["ops"] += ops - completed
            failed["crashed"] += 1
            controller.failed_ops[tenant] += 1
            latency.record(engine.now - start)
            controller.latency[tenant].record(engine.now - start)
            return
        elapsed = engine.now - start
        latency.record(elapsed)
        controller.latency[tenant].record(elapsed)
        latency_by_op.setdefault(op_name, LatencyRecorder()).record(elapsed)
        completed += 1


def _recovery_daemon(cluster: Cluster, index, manager):
    """Online lease-reclamation sweep (a simulation process).

    Spawned by :func:`run_workload` whenever a
    :class:`repro.recover.RecoveryManager` is attached: every
    ``lease_ns`` of simulated time it reclaims expired leases so a
    ``crash_cn`` victim's orphaned locks stall survivors for at most one
    lease period instead of wedging the run.  The fsck repair walk wants
    a quiescent tree, so the daemon defers it (``repair=False``);
    callers run it after the workload if they need it.  With no expired
    leases a wakeup issues zero verbs, so the daemon never perturbs the
    fault schedule of a healthy run.
    """
    engine = cluster.engine
    interval = max(1, manager.config.lease_ns)
    while True:
        yield engine.timeout(interval)
        if not manager.expired_leases():
            continue
        try:
            manager.recover(index=index, repair=False)
        except (RetryLimitExceeded, ClientCrash):
            # The pass itself runs under chaos: out of retry budget, or
            # the coordinator was the crash victim.  Next tick retries
            # with a fresh executor.
            continue


def run_workload(cluster: Cluster, index, spec: WorkloadSpec,
                 dataset: Dataset, *, system: str = "index",
                 workers: int = 12, ops: int = 6_000,
                 warmup_ops_per_cn: int = 0, seed: int = 0,
                 time_limit_ns: int = 10_000_000_000_000,
                 tenancy=None) -> RunResult:
    """Execute one timed run and collect throughput/latency/verb stats.

    ``tenancy`` (a :class:`repro.tenancy.TenancyController`) switches the
    workers to tenant-multiplexed mode: the controller's weighted-fair
    scheduler and token buckets decide which tenant each op belongs to,
    verbs and latency are charged per tenant, and the result carries
    ``tenants`` rows.  With ``tenancy=None`` the runner takes the
    original code path and its results are byte-identical to the
    pre-tenancy runner (see tests/test_tenancy.py).
    """
    if workers < 1:
        raise ConfigError("need at least one worker")
    warm_clients(cluster, index, spec, dataset, warmup_ops_per_cn, seed)
    num_cns = cluster.config.num_cns
    state = _SharedRunState(dataset, spec, seed)
    latency = LatencyRecorder()
    latency_by_op: Dict[str, LatencyRecorder] = {}
    stats = OpStats()
    cluster.reset_nic_stats()
    engine = cluster.engine
    start_ns = engine.now
    per_worker = ops // workers
    actual_ops = per_worker * workers
    failed = {"ops": 0, "crashed": 0, "degraded": 0} \
        if cluster.injector is not None else None
    if cluster.recovery is not None:
        engine.process(_recovery_daemon(cluster, index, cluster.recovery),
                       name="recoveryd")
    processes = []
    for wid in range(workers):
        cn = wid % num_cns
        if tenancy is None:
            gen = _worker(cluster, index, state, wid, cn, per_worker,
                          latency, stats, latency_by_op, failed)
        else:
            gen = _tenant_worker(cluster, index, state, wid, cn,
                                 per_worker, tenancy, latency,
                                 latency_by_op, failed)
        processes.append(engine.process(gen, name=f"worker{wid}"))
    for process in processes:
        engine.run_until_complete(process, limit=start_ns + time_limit_ns)
    sim_ns = engine.now - start_ns
    nic_util = {}
    for mn, nic in cluster.mn_nics.items():
        nic_util[f"mn{mn}"] = round(nic.server.busy_time
                                    / max(sim_ns, 1), 4)
    for cn, nic in cluster.cn_nics.items():
        nic_util[f"cn{cn}"] = round(nic.server.busy_time
                                    / max(sim_ns, 1), 4)
    metrics = Counters.aggregate(
        client_counters(index.client(cn)) for cn in range(num_cns))
    if tenancy is not None:
        # The tenant workers charged their verbs to per-tenant OpStats;
        # fold them into the run-level totals the row() metrics read.
        tenancy.merge_opstats_into(stats)
    return RunResult(system=system, workload=spec.name,
                     dataset=dataset.name, workers=workers, ops=actual_ops,
                     sim_ns=sim_ns, latency=latency, op_stats=stats,
                     nic_utilization=nic_util, client_metrics=metrics,
                     latency_by_op=latency_by_op,
                     failed_ops=failed["ops"] if failed else 0,
                     crashed_workers=failed["crashed"] if failed else 0,
                     degraded_ops=failed["degraded"] if failed else 0,
                     faults=dict(cluster.injector.counters)
                     if cluster.injector is not None else {},
                     tenants=tenancy.tenant_rows(sim_ns)
                     if tenancy is not None else None)
