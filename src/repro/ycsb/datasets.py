"""Key datasets for the evaluation (paper Sec. V-A).

* ``u64``: 8-byte fixed-length integers drawn uniformly at random,
  encoded big-endian (binary-comparable, prefix-free).
* ``email``: the paper uses a public 300M-address email dump, which is
  not redistributable here; we substitute a synthetic generator that
  matches the properties that matter for ART structure - variable length
  (2-32 bytes, mean about 19), heavy shared prefixes (popular first
  names / handles) and a skewed domain distribution.  See DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..art.keys import encode_str, encode_u64
from ..errors import InvalidArgument

_FIRST = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "liz", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kim", "paul", "emily",
    "andrew", "donna", "joshua", "michelle", "ken", "dorothy", "kevin",
    "carol", "brian", "amanda", "george", "melissa", "edward", "deborah",
    "wang", "li", "zhang", "liu", "chen", "yang", "zhao", "huang", "zhou",
    "wu", "xu", "sun", "hu", "zhu", "gao", "lin", "he", "guo", "ma", "luo",
]
_LAST = [
    "smith", "jones", "brown", "lee", "wilson", "taylor", "khan", "singh",
    "garcia", "miller", "davis", "lopez", "gonzalez", "chen", "kim",
    "nguyen", "patel", "mueller", "silva", "santos", "ali", "ahmed",
    "sato", "suzuki", "tanaka", "ito", "kobayashi", "kato", "yamada",
    "park", "choi", "jung", "kang", "cho", "yoon", "lim", "han", "oh",
]
_DOMAINS = [
    # (domain, weight): skewed like real providers.
    ("gmail.com", 40), ("yahoo.com", 18), ("hotmail.com", 12),
    ("qq.com", 8), ("163.com", 6), ("outlook.com", 5), ("aol.com", 3),
    ("icloud.com", 2), ("mail.ru", 2), ("gmx.de", 1), ("web.de", 1),
    ("protonmail.com", 1), ("yandex.ru", 1),
]
_SEPARATORS = ["", ".", "_", "-"]


@dataclass
class Dataset:
    """A loaded key set plus the pool of extra keys YCSB inserts draw on."""

    name: str
    keys: List[bytes]          # loaded into the index before the run
    insert_pool: List[bytes]   # unseen keys consumed by insert operations

    def __deepcopy__(self, memo):
        # Treated as frozen once built: loaders hand out fresh lists and
        # the run path copies keys/insert_pool into per-run state instead
        # of mutating these.  Sharing one Dataset across benchmark
        # snapshot restores avoids re-walking ~80k key objects per cell.
        return self

    @property
    def size(self) -> int:
        return len(self.keys)

    def average_key_len(self) -> float:
        return sum(len(k) for k in self.keys) / len(self.keys)


def make_u64_dataset(n: int, seed: int = 1, insert_pool: int = 0) -> Dataset:
    """Unique uniform 64-bit keys (encoded), plus an optional insert pool."""
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n + insert_pool:
        seen.add(rng.getrandbits(64))
    ordered = list(seen)
    rng.shuffle(ordered)
    encoded = [encode_u64(v) for v in ordered]
    return Dataset("u64", encoded[:n], encoded[n:])


def _random_email(rng: random.Random) -> str:
    first = rng.choice(_FIRST)
    style = rng.random()
    if style < 0.35:
        local = f"{first}{rng.choice(_SEPARATORS)}{rng.choice(_LAST)}"
    elif style < 0.65:
        local = f"{first}{rng.randrange(1, 10_000)}"
    elif style < 0.85:
        local = f"{first[0]}{rng.choice(_SEPARATORS)}{rng.choice(_LAST)}" \
                f"{rng.randrange(100)}"
    else:
        local = f"{first}{rng.choice(_SEPARATORS)}{rng.choice(_LAST)}" \
                f"{rng.randrange(100)}"
    domains, weights = zip(*_DOMAINS)
    domain = rng.choices(domains, weights=weights, k=1)[0]
    email = f"{local}@{domain}"
    return email[:31]  # paper: 2-32 bytes


def make_email_dataset(n: int, seed: int = 2,
                       insert_pool: int = 0) -> Dataset:
    """Unique synthetic email-address keys (terminated, prefix-free)."""
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n + insert_pool:
        seen.add(_random_email(rng))
    # Sort before the seeded shuffle: str-set iteration order follows
    # PYTHONHASHSEED, so ``list(seen)`` gave every *process* a different
    # key order (and thus different trees and different measured tables).
    ordered = sorted(seen)
    rng.shuffle(ordered)
    encoded = [encode_str(e) for e in ordered]
    return Dataset("email", encoded[:n], encoded[n:])


def make_dataset(name: str, n: int, seed: int = 1,
                 insert_pool: int = 0) -> Dataset:
    if name == "u64":
        return make_u64_dataset(n, seed, insert_pool)
    if name == "email":
        return make_email_dataset(n, seed, insert_pool)
    raise InvalidArgument(f"unknown dataset {name!r}")
