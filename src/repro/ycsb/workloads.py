"""YCSB workload definitions (paper Sec. V-A).

The paper evaluates workloads A-E plus a 100%-insert LOAD, with a zipfian
(0.99) request distribution and 64-byte values.  Workload D reads with the
*latest* distribution; the paper pairs it with 5% updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError

ZIPFIAN_THETA = 0.99
DEFAULT_VALUE_SIZE = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix + request distribution of one YCSB workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    scan_max_len: int = 100
    value_size: int = DEFAULT_VALUE_SIZE

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"workload {self.name}: mix sums to {total}")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ConfigError(f"bad distribution {self.distribution!r}")

    def mix(self) -> Dict[str, float]:
        return {"read": self.read, "update": self.update,
                "insert": self.insert, "scan": self.scan, "rmw": self.rmw}


WORKLOADS: Dict[str, WorkloadSpec] = {
    "LOAD": WorkloadSpec("LOAD", insert=1.0),
    "A": WorkloadSpec("A", read=0.50, update=0.50),
    "B": WorkloadSpec("B", read=0.95, update=0.05),
    "C": WorkloadSpec("C", read=1.00),
    "D": WorkloadSpec("D", read=0.95, update=0.05, distribution="latest"),
    "E": WorkloadSpec("E", scan=0.95, insert=0.05),
    # Standard YCSB-F, included beyond the paper for completeness.
    "F": WorkloadSpec("F", read=0.50, rmw=0.50),
}


def workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name.upper()]
    except KeyError:
        raise ConfigError(f"unknown workload {name!r}") from None
