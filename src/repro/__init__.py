"""Reproduction of Sphinx (DAC 2025): a hybrid index for disaggregated
memory with a succinct filter cache, on a simulated RDMA substrate.

Public entry points:

* :mod:`repro.dm` - the simulated disaggregated-memory cluster.
* :mod:`repro.core` - the Sphinx index client.
* :mod:`repro.baselines` - SMART and ART-on-DM comparison systems.
* :mod:`repro.ycsb` - workload generators and the benchmark runner.
* :mod:`repro.bench` - harnesses regenerating every figure in the paper.

Convenience re-exports below cover the quickstart path::

    from repro import Cluster, ClusterConfig, SphinxConfig, SphinxIndex
"""

from .baselines import ArtDmIndex, SmartConfig, SmartIndex
from .core import SphinxConfig, SphinxIndex
from .dm import Cluster, ClusterConfig

__version__ = "1.0.0"

__all__ = [
    "ArtDmIndex",
    "SmartConfig",
    "SmartIndex",
    "SphinxConfig",
    "SphinxIndex",
    "Cluster",
    "ClusterConfig",
    "__version__",
]
