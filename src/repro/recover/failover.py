"""MN-group failover and anti-entropy for replicated racks (DESIGN.md §14).

A replicated rack (``ClusterSpec.replicas > 0``) keeps K replica groups
per shard; this module supplies the control plane that makes the
replicas worth their verbs:

* **Failure detection.**  :meth:`FailoverManager.dead_groups` reads the
  fault injector's ``dead_mns`` set: any group with a crashed MN is a
  dead group (a blanked MN guts the cell spread across the group).

* **Failover.**  :meth:`FailoverManager.failover` retires the dead
  group from the shard ring, then per shard: promotes the **freshest**
  live replica (minimal recorded write lag, ties to the lowest gid) to
  primary, bumps the shard's epoch - fencing every write that routed
  against the deposed primary (:class:`repro.errors.StaleEpoch`) - and
  flips the router's materialized ``assignment``.  A shard whose
  migration *source* died is left to the migration (its sweep recovers
  values from replicas and lands them at the destination); a shard with
  no live replica left forfeits its keys explicitly rather than
  silently serving a blank cell.  Re-replication of every degraded
  shard is then scheduled through the :class:`.rebalance.Rebalancer`'s
  ``sync_replicas`` machinery.

* **Anti-entropy.**  :meth:`FailoverManager.anti_entropy` checksum-
  compares one shard's primary against each live replica (a CRC over
  the sorted key/value stream, then a per-key diff on mismatch) and
  repairs divergence by re-applying the primary's values - the backstop
  for replica applies lost to chaos.  Everything is reported through
  the rack's Counters facade (``repro.obs``).

* **The daemon.**  :meth:`FailoverManager.daemon` is the online loop
  the rack runner spawns next to recoveryd: every ``interval_ns`` it
  fails over any newly dead group, then sweeps one shard - lagging
  shards first, else round-robin - so repair bandwidth is bounded and
  the schedule is a pure function of the seeded simulation state.

Like every recover component, the manager issues verbs through a
*timed* executor: failover and repair traffic competes for NIC
bandwidth with the tenants it protects.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from ..dm.rack import Rack
from ..dm.rdma import OpStats
from ..errors import (
    ClientCrash,
    InjectedFault,
    MNUnavailable,
    RetryLimitExceeded,
)
from .rebalance import Rebalancer

_TRANSIENT = (RetryLimitExceeded, InjectedFault)


def _digest(items: List[Tuple[bytes, Optional[bytes]]]) -> int:
    """CRC32 over a sorted key/value stream - the per-shard checksum the
    anti-entropy sweep compares before diffing key by key."""
    crc = 0
    for key, value in items:
        crc = zlib.crc32(key, crc)
        crc = zlib.crc32(value if value is not None else b"\x00<missing>",
                         crc)
    return crc


class FailoverManager:
    """Promotes replicas over dead MN groups and repairs divergence."""

    def __init__(self, rack: Rack, rebalancer: Optional[Rebalancer] = None,
                 *, cn_id: int = 0, interval_ns: int = 2_000_000):
        self.rack = rack
        self.cn_id = cn_id
        self.interval_ns = interval_ns
        self.rebalancer = rebalancer if rebalancer is not None \
            else Rebalancer(rack, cn_id=cn_id)
        #: Verb totals of every failover/anti-entropy pass (timed).
        self.op_stats = OpStats()
        #: ``[(shard, dead_gid, new_gid, epoch), ...]`` promotions.
        self.promotions: List[Tuple[int, int, int, int]] = []
        #: Keys lost because a shard's primary died with no live replica
        #: (replication exhausted - K simultaneous failures).
        self.forfeited: List[Tuple[int, bytes]] = []
        #: Promotions that raced an in-flight migration (the property
        #: suite asserts its crash schedule actually lands mid-copy).
        self.mid_migration_failovers = 0

    def _executor(self):
        return self.rack.cluster.sim_executor(self.cn_id, self.op_stats)

    # -- failure detection -------------------------------------------------
    def dead_groups(self) -> List[int]:
        """Live groups with at least one crashed MN, in gid order."""
        injector = self.rack.cluster.injector
        if injector is None or not injector.dead_mns:
            return []
        dead_mns = injector.dead_mns
        out = []
        for gid in self.rack.live_groups():
            if gid in self.rack.failed_groups:
                continue
            if any(mn in dead_mns for mn in self.rack.group_view(gid).mn_ids):
                out.append(gid)
        return out

    # -- failover ----------------------------------------------------------
    def failover(self, gid: int):
        """Retire dead group ``gid``, promote replicas for every shard it
        owned, and re-replicate every shard it degraded (a simulation
        process)."""
        rack = self.rack
        if gid in rack.failed_groups:
            return
        rack.repl.inc("failovers")
        rack.failed_groups.add(gid)
        rack.retired_groups.add(gid)
        if gid in rack.shards.groups:
            rack.shards.commit_leave(gid)
        touched = []
        for shard in range(rack.spec.num_shards):
            migration = rack.migrations.get(shard)
            if rack.shards.assignment[shard] == gid:
                if migration is not None and migration.src == gid:
                    # Mid-migration source death: the sweep recovers the
                    # remaining values from the replicas and the router
                    # flips to the destination when it converges - a
                    # promotion here would fight the migration.
                    self.mid_migration_failovers += 1
                    rack.repl.inc("mid_migration_failovers")
                else:
                    self._promote(shard, gid)
                    touched.append(shard)
            if gid in rack.shards.replica_assignment[shard]:
                rack.shards.replica_assignment[shard] = [
                    g for g in rack.shards.replica_assignment[shard]
                    if g != gid]
                rack.replica_lag[shard].pop(gid, None)
                touched.append(shard)
        for shard in sorted(set(touched)):
            yield from self.rebalancer.sync_replicas(shard)

    def _promote(self, shard: int, dead_gid: int) -> None:
        """Flip ``shard`` to its freshest live replica and fence the old
        primary's epoch."""
        rack = self.rack
        live = rack.live_replicas(shard)
        if not live:
            # Replication exhausted: the committed keys died with the
            # primary.  Forfeit them explicitly (the registry must not
            # claim keys no live cell holds) and re-home the empty shard
            # on the ring so future inserts land somewhere live.
            lost = sorted(rack.registry[shard])
            self.forfeited.extend((shard, key) for key in lost)
            rack.repl.inc("failover_forfeited_keys", len(lost))
            rack.registry[shard].clear()
            new = next((g for g in rack.shards.owner_chain(shard)
                        if g not in rack.failed_groups
                        and g not in rack.retired_groups), None)
            if new is None:
                return
        else:
            lag = rack.replica_lag[shard]
            new = min(live, key=lambda g: (lag.get(g, 0), g))
        rack.epochs[shard] += 1
        rack.shards.assignment[shard] = new
        rack.shards.replica_assignment[shard] = [
            g for g in rack.shards.replica_assignment[shard] if g != new]
        rack.replica_lag[shard].pop(new, None)
        self.promotions.append((shard, dead_gid, new, rack.epochs[shard]))
        rack.repl.inc("promotions")

    # -- anti-entropy ------------------------------------------------------
    def anti_entropy(self, shard: int):
        """Checksum-compare ``shard``'s primary against each live replica
        and repair divergence from the primary (a simulation process).
        Returns the number of keys repaired."""
        rack = self.rack
        if not rack.spec.replicas or shard in rack.migrations:
            return 0
        primary = rack.shards.assignment[shard]
        if primary in rack.failed_groups:
            return 0
        replicas = rack.live_replicas(shard)
        if not replicas:
            return 0
        executor = self._executor()
        pclient = rack.group_index(primary).client(self.cn_id)
        keys = sorted(rack.registry[shard])
        pvals: Dict[bytes, Optional[bytes]] = {}
        try:
            for key in keys:
                pvals[key] = yield from executor.run(pclient.search(key))
        except _TRANSIENT + (MNUnavailable, ClientCrash):
            rack.repl.inc("anti_entropy_aborts")
            return 0
        pdigest = _digest([(k, pvals[k]) for k in keys])
        repaired = 0
        for gid in replicas:
            rclient = rack.group_index(gid).client(self.cn_id)
            rvals: Dict[bytes, Optional[bytes]] = {}
            try:
                for key in keys:
                    rvals[key] = yield from executor.run(rclient.search(key))
            except _TRANSIENT + (MNUnavailable, ClientCrash):
                rack.repl.inc("anti_entropy_aborts")
                continue
            rack.repl.inc("anti_entropy_compares")
            if _digest([(k, rvals[k]) for k in keys]) == pdigest:
                rack.replica_lag[shard].pop(gid, None)
                continue
            rack.repl.inc("anti_entropy_checksum_mismatches")
            clean = True
            for key in keys:
                if rvals[key] == pvals[key] or pvals[key] is None:
                    continue
                try:
                    yield from executor.run(rclient.insert(key, pvals[key]))
                    repaired += 1
                except _TRANSIENT + (MNUnavailable,):
                    clean = False
                except ClientCrash:
                    executor = self._executor()
                    clean = False
            if clean:
                rack.replica_lag[shard].pop(gid, None)
        if repaired:
            rack.repl.inc("anti_entropy_repaired_keys", repaired)
        return repaired

    # -- orchestration -----------------------------------------------------
    def settle(self):
        """Drain all outstanding failover work: fail over any dead group,
        reconcile every replica set, then run one full anti-entropy pass.
        The rack runner drives this to completion after traffic ends so
        the post-run fsck sees replicas at rest, not mid-repair."""
        for gid in self.dead_groups():
            yield from self.failover(gid)
        if self.rack.spec.replicas:
            yield from self.rebalancer.sync_all_replicas()
            for shard in range(self.rack.spec.num_shards):
                yield from self.anti_entropy(shard)

    def daemon(self):
        """The online loop (replicationd): spawn as an engine process."""
        rack = self.rack
        engine = rack.cluster.engine
        cursor = 0
        while True:
            yield engine.timeout(self.interval_ns)
            for gid in self.dead_groups():
                yield from self.failover(gid)
            if not rack.spec.replicas:
                continue
            dirty = [s for s in range(rack.spec.num_shards)
                     if rack.replica_lag[s] and s not in rack.migrations]
            if dirty:
                shard = dirty[0]
            else:
                shard = cursor
                cursor = (cursor + 1) % rack.spec.num_shards
            yield from self.anti_entropy(shard)

    # -- reporting ---------------------------------------------------------
    def counters(self):
        """The rack's replication counters (the obs facade)."""
        return self.rack.repl
