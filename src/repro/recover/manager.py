"""Lease table and recovery manager (DESIGN.md §9).

Protocol summary
----------------

Lock-acquiring CASes across the index protocols carry a ``lease`` tag
(:class:`repro.dm.rdma.CasOp`): ``("node",)`` for ART node headers,
``("leaf",)`` for leaf in-place-update locks, ``("hash", seg_addr,
local_depth)`` for hash-table split group locks.  Lock-releasing verbs
carry ``("release",)``.  When a :class:`RecoveryManager` is attached to
the cluster, executors call :meth:`LeaseTable.on_verb` for every tagged
verb, so the table always knows **who** holds **which** remote lock word
and **since when** - state the 8-byte lock words themselves have no room
for.

After a crash (``crash_cn`` kills a client mid-operation, abandoning its
locks) a survivor calls :meth:`RecoveryManager.recover`:

1. every expired lease - owner crashed, or held for ``lease_ns`` or more
   - is reclaimed: re-read the word, and if it still holds the recorded
   locked value, CAS it back to Idle (node/leaf kinds);
2. ``hash`` leases delegate to
   :meth:`repro.race.client.RaceClient.recover_segment`, which decides
   roll-forward vs roll-back from remote state alone;
3. with an index given, an online ``fsck --repair`` pass fixes what lock
   reclamation cannot see (reachable Invalid leaves, missing INHT
   entries).

Recovery is quiescent-by-convention: run it while no *live* client is
mutating (survivors naturally stall on the orphaned locks anyway).  The
recovery pass itself runs under the same fault injector as regular
clients, so its verbs can be dropped or NAKed - every step retries
through the shared :class:`repro.fault.RetryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..dm.memory import addr_mn
from ..dm.rdma import CasOp, ReadOp
from ..errors import ConfigError, InjectedFault, MNUnavailable, RetryLimitExceeded
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..util.bits import u64_from_bytes

# Where the status lives inside each kind's lock word (STATUS_IDLE is 0
# for both layouts, so clearing the field unlocks):
_NODE_STATUS_MASK = 0x3    # art.layout.Header: status in bits 0-1
_LEAF_STATUS_MASK = 0xFF   # art.layout.leaf_status_word: bits 0-7


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables for lease expiry and repair."""

    lease_ns: int = 2_000_000      # lease lifetime; >= this age == expired
    repair: bool = True            # run fsck --repair when an index is given
    retry: RetryPolicy = DEFAULT_RETRY

    def validate(self) -> None:
        if self.lease_ns < 0:
            raise ConfigError("lease_ns must be non-negative")
        self.retry.validate()


@dataclass(frozen=True)
class LeaseRecord:
    """One held remote lock, as observed from the acquiring CAS."""

    addr: int                 # global address of the lock word
    owner: str                # executor client_id that won the CAS
    epoch: int                # engine time at acquisition
    word: int                 # the locked value the CAS installed
    kind: str                 # "node" | "leaf" | "hash"
    meta: Tuple[int, ...]     # kind extras; hash: (seg_addr, local_depth)


class LeaseTable:
    """Live leases keyed by lock-word address.

    Fed by executors (:meth:`on_verb`); a lock word is held by at most
    one client at a time, so the address is a sufficient key.
    """

    def __init__(self) -> None:
        self._leases: Dict[int, LeaseRecord] = {}
        self.acquired = 0
        self.released = 0

    def __len__(self) -> int:
        return len(self._leases)

    def records(self) -> List[LeaseRecord]:
        return list(self._leases.values())

    def get(self, addr: int) -> Optional[LeaseRecord]:
        return self._leases.get(addr)

    def drop(self, addr: int) -> None:
        if self._leases.pop(addr, None) is not None:
            self.released += 1

    def on_verb(self, client_id: str, verb, result, now: int) -> None:
        """Executor hook: called for every verb carrying a lease tag,
        *after* it applied, with its result and the engine time."""
        tag = verb.lease
        if tag[0] == "release":
            # A release CAS that lost did not release anything (e.g. a
            # split-undo CAS racing another client); a release WRITE is
            # unconditional (the writer owns the word).
            if isinstance(verb, CasOp) and not result[0]:
                return
            if self._leases.pop(verb.addr, None) is not None:
                self.released += 1
            return
        if not result[0]:
            return  # lost the acquiring CAS: no lock, no lease
        self._leases[verb.addr] = LeaseRecord(
            verb.addr, client_id, now, verb.desired, tag[0], tuple(tag[1:]))
        self.acquired += 1


@dataclass
class RecoveryReport:
    """Outcome of one :meth:`RecoveryManager.recover` pass."""

    reclaimed: int = 0    # node/leaf locks CASed back to Idle
    released: int = 0     # lock already released remotely; lease dropped
    raced: int = 0        # word moved under us; someone else resolved it
    unreachable: int = 0  # lease on a crashed MN (or no client); left live
    skipped: int = 0      # leases not yet expired (owner alive and timely)
    segments: Dict[int, str] = field(default_factory=dict)
    fsck: Optional[object] = None   # FsckReport from the repair pass

    def summary(self) -> str:
        seg = ", ".join(f"{addr:#x}:{status}"
                        for addr, status in sorted(self.segments.items()))
        tail = f" [{seg}]" if seg else ""
        fsck = "" if self.fsck is None else f"; {self.fsck.summary()}"
        return (f"recover: {self.reclaimed} reclaimed, "
                f"{self.released} released, {self.raced} raced, "
                f"{self.unreachable} unreachable, "
                f"{self.skipped} skipped{tail}{fsck}")


class RecoveryManager:
    """Orphan-lock reclamation and online repair for one cluster."""

    def __init__(self, cluster, config: Optional[RecoveryConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else RecoveryConfig()
        self.config.validate()
        self.lease_table = LeaseTable()
        self._declared_dead: Set[str] = set()
        self.recoveries = 0
        self.last_report: Optional[RecoveryReport] = None

    # -- membership ------------------------------------------------------
    def declare_dead(self, client_id: str) -> None:
        """Manually mark a client crashed (tests / external detectors);
        ``crash_cn`` victims are picked up from the injector directly."""
        self._declared_dead.add(client_id)

    def dead_clients(self) -> Set[str]:
        dead = set(self._declared_dead)
        injector = self.cluster.injector
        if injector is not None:
            dead |= injector.crashed_clients
        return dead

    def expired_leases(self, now: Optional[int] = None) -> List[LeaseRecord]:
        """Leases eligible for reclamation: the owner is known dead, or
        the lease has been held for ``lease_ns`` or more (``>=``: a lease
        expires *exactly* at its deadline, not one tick after)."""
        now = self.cluster.engine.now if now is None else now
        dead = self.dead_clients()
        return [lease for lease in self.lease_table.records()
                if lease.owner in dead
                or now - lease.epoch >= self.config.lease_ns]

    # -- recovery --------------------------------------------------------
    def _run(self, executor, thunk):
        """Drive one recovery op generator, retrying injected faults
        through the shared policy (the recovery pass runs under the same
        chaotic network as everyone else)."""
        retry = self.config.retry
        for _attempt in range(retry.max_retries):
            try:
                return executor.run(thunk())
            except InjectedFault:
                continue
        raise RetryLimitExceeded("recovery op exceeded retry budget")

    @staticmethod
    def _idle_word(lease: LeaseRecord) -> int:
        if lease.kind == "node":
            return lease.word & ~_NODE_STATUS_MASK
        if lease.kind == "leaf":
            return lease.word & ~_LEAF_STATUS_MASK
        raise ConfigError(f"no idle form for lease kind {lease.kind!r}")

    def _reclaim(self, lease: LeaseRecord):
        """Op generator: expire one node/leaf lease.

        Only reclaims if the word still holds the exact locked value the
        lease recorded - anything else means the owner (or a previous
        recovery) already moved it, and the CAS-expected discipline makes
        the reclaim safe against the owner's own late unlock racing us:
        exactly one of the two writes can win.
        """
        word = u64_from_bytes((yield ReadOp(lease.addr, 8)))
        if word != lease.word:
            return "released"
        swapped, _old = yield CasOp(lease.addr, lease.word,
                                    self._idle_word(lease),
                                    lease=("release",))
        return "reclaimed" if swapped else "raced"

    @staticmethod
    def _clients_by_mn(race_clients: Iterable, index) -> Dict[int, object]:
        """Resolve hash-table clients per MN: explicit ones win; a Sphinx
        index contributes its INHT clients (the same discovery rule fsck
        uses)."""
        clients: Dict[int, object] = {}
        if index is not None and hasattr(index, "inht"):
            inht = index.client(0).inht
            clients.update(inht._clients)
        for client in race_clients:
            clients[client.info.mn_id] = client
        return clients

    def recover(self, index=None, race_clients: Iterable = (),
                now: Optional[int] = None,
                repair: Optional[bool] = None) -> RecoveryReport:
        """One full recovery pass; see the module docstring.

        ``index`` (optional) enables the fsck repair stage and INHT
        client discovery; ``race_clients`` supplies hash-table clients
        for standalone-RACE recovery; ``now`` overrides the engine clock
        for lease-age tests; ``repair`` overrides ``config.repair`` (the
        in-run recovery daemon reclaims locks online but defers the fsck
        walk, which wants a quiescent tree, to after the run).
        """
        report = RecoveryReport()
        now = self.cluster.engine.now if now is None else now
        executor = self.cluster.direct_executor()
        expired = self.expired_leases(now)
        report.skipped = len(self.lease_table) - len(expired)
        segments: Dict[int, int] = {}
        for lease in expired:
            if lease.kind == "hash":
                seg_addr, depth = lease.meta
                segments.setdefault(seg_addr, depth)
                continue
            try:
                outcome = self._run(executor,
                                    lambda l=lease: self._reclaim(l))
            except MNUnavailable:
                report.unreachable += 1   # lease kept: MN may come back
                continue
            if outcome == "reclaimed":
                report.reclaimed += 1     # the release CAS popped the lease
            elif outcome == "released":
                report.released += 1
                self.lease_table.drop(lease.addr)
            else:
                report.raced += 1
                self.lease_table.drop(lease.addr)
        clients = self._clients_by_mn(race_clients, index)
        for seg_addr, depth in sorted(segments.items()):
            client = clients.get(addr_mn(seg_addr))
            if client is None:
                report.segments[seg_addr] = "no_client"
                report.unreachable += 1
                continue
            try:
                status = self._run(
                    executor,
                    lambda c=client, s=seg_addr, d=depth:
                        c.recover_segment(s, d))
            except MNUnavailable:
                report.segments[seg_addr] = "unreachable"
                report.unreachable += 1
                continue
            report.segments[seg_addr] = status
            for lease in self.lease_table.records():
                if lease.kind == "hash" and lease.meta \
                        and lease.meta[0] == seg_addr:
                    self.lease_table.drop(lease.addr)
        repair = self.config.repair if repair is None else repair
        if index is not None and repair:
            from ..tools import fsck   # local import: tools sits above us
            report.fsck = fsck.check_index(self.cluster, index, repair=True)
        self.recoveries += 1
        self.last_report = report
        return report

    # -- observability ---------------------------------------------------
    def counters(self):
        """Snapshot into the shared :class:`repro.obs.Counters` shape."""
        from ..obs.counters import Counters
        data = {
            "leases_live": len(self.lease_table),
            "leases_acquired": self.lease_table.acquired,
            "leases_released": self.lease_table.released,
            "recoveries": self.recoveries,
        }
        report = self.last_report
        if report is not None:
            data["locks_reclaimed"] = report.reclaimed
            data["locks_raced"] = report.raced
            data["leases_unreachable"] = report.unreachable
            data["segments_rolled_forward"] = sum(
                1 for s in report.segments.values() if s == "rolled_forward")
            data["segments_rolled_back"] = sum(
                1 for s in report.segments.values() if s == "rolled_back")
        return Counters(data)
