"""Crash recovery for the simulated DM testbed (DESIGN.md §9).

Remote lock words have no spare bits for an owner or epoch, so leases
live CN-side: executors report every lease-tagged lock verb into a
:class:`LeaseTable`, and a :class:`RecoveryManager` (attached via
:meth:`repro.dm.cluster.Cluster.attach_recovery`) expires orphaned
leases, CAS-reclaims the locks they cover, rolls crashed hash-table
splits forward or back, and drives ``fsck --repair`` for anything
structural the lock protocol alone cannot mend.
"""

from .failover import FailoverManager
from .manager import (
    LeaseRecord,
    LeaseTable,
    RecoveryConfig,
    RecoveryManager,
    RecoveryReport,
)
from .rebalance import Rebalancer

__all__ = [
    "FailoverManager",
    "LeaseRecord",
    "LeaseTable",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryReport",
    "Rebalancer",
]
