"""Online shard rebalancing for rack-scale clusters (DESIGN.md §13-14).

When an MN group joins or leaves a :class:`repro.dm.rack.Rack`, the
shards the consistent-hash ring reassigns must move while traffic runs.
The :class:`Rebalancer` migrates one shard at a time with the copy
protocol the router understands:

1. publish a :class:`~repro.dm.rack.Migration` for the shard - from this
   instant the router serves a key from the destination iff it is in the
   migration's ``copied`` set, and writes brand-new keys straight to the
   destination;
2. sweep the shard's key registry in sorted order, copying each pending
   key (read from source, insert at destination, mark copied, delete at
   source) through a *timed* executor, so a migration competes for NIC
   bandwidth like any tenant.  The router flip (``copied.add``) happens
   *after* the destination copy is durable and *before* the source copy
   is removed, so a concurrent reader always finds the key in whichever
   cell it is routed to - the source delete runs while readers are
   already served by the destination;
3. repeat the sweep until it finds nothing pending (concurrent deletes
   un-mark keys; concurrent inserts self-mark), then flip
   ``assignment[shard]`` and retire the migration.

Routing never jumps ahead of the data: every key is served by exactly
one cell at every instant, which is the invariant the post-run fsck and
the possible-state oracle check.  A value updated at the source after
its copy departs is lost to the copy - last-writer-wins at copy time -
the same relaxation online resharding systems document; the differential
oracle treats both the pre- and post-copy value as possible.

Under chaos the sweep degrades, never wedges, and the two degradation
modes are accounted separately:

* a retryable fault skips the key until the next sweep, and a key whose
  copy keeps failing across ``max_key_attempts`` sweeps is forfeited as
  **chaos damage** (``forfeited_chaos``): chaos-era "applied" write
  drops can leave a key in a state no online retry resolves (only
  ``fsck --repair`` can), and a migration must converge rather than
  sweep such a key forever;
* an ``MNUnavailable`` source (crashed MN group) forfeits the key as
  **source-died** (``forfeited_dead``) *unless the rack replicates*
  (``spec.replicas > 0``), in which case the sweep recovers the key's
  value from a live replica and the copy proceeds - a crash mid-
  migration loses nothing;
* with replication, an ``MNUnavailable`` *destination* aborts the
  migration outright: copied keys are restored to the source from the
  replicas and the shard stays where it was (the failover manager
  retires the dead destination; :meth:`Rebalancer.leave` re-plans any
  move an abort interrupted).

:meth:`Rebalancer.sync_replicas` is the replica-set reconciler the same
machinery exposes to the failover manager: it moves a shard's replica
set to whatever the current ring's successor chain picks, copying keys
to newly chosen replica groups and dropping the shard's keys from
groups that lost the role.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dm.rack import Migration, Rack
from ..dm.rdma import OpStats
from ..errors import (
    ClientCrash,
    InjectedFault,
    MNUnavailable,
    RetryLimitExceeded,
)

_TRANSIENT = (RetryLimitExceeded, InjectedFault)


class Rebalancer:
    """Migrates shards between a rack's MN groups while traffic runs."""

    def __init__(self, rack: Rack, cn_id: int = 0,
                 max_key_attempts: int = 8):
        self.rack = rack
        self.cn_id = cn_id
        self.max_key_attempts = max_key_attempts
        #: Verb totals of every migration this rebalancer ran (timed, so
        #: migration traffic shows up in NIC utilization like any tenant).
        self.op_stats = OpStats()
        #: ``[(shard, src, dst, keys_moved), ...]`` of finished moves.
        self.completed: List[Tuple[int, int, int, int]] = []
        #: Keys whose copy kept failing (chaos damage) and whose data was
        #: forfeited so the migration could converge.
        self.forfeited_chaos: List[Tuple[int, bytes]] = []
        #: Keys forfeited because their source cell died with no replica
        #: to recover from (always empty when ``spec.replicas > 0`` and
        #: the replica chain survives).
        self.forfeited_dead: List[Tuple[int, bytes]] = []
        #: ``[(shard, src, dst), ...]`` of migrations aborted because the
        #: destination group died mid-copy (replicated racks only).
        self.aborted: List[Tuple[int, int, int]] = []
        #: Groups mid-drain: still ring members, but no longer eligible
        #: replica targets (their keys are on the way out).
        self.draining: set = set()

    @property
    def forfeited(self) -> List[Tuple[int, bytes]]:
        """Every forfeited key, both modes lumped (legacy accessor)."""
        return self.forfeited_chaos + self.forfeited_dead

    def _executor(self):
        return self.rack.cluster.sim_executor(self.cn_id, self.op_stats)

    # -- membership changes (simulation processes) -------------------------
    def join(self, gid: Optional[int] = None):
        """Provision a fresh MN group (unless ``gid`` names one already
        provisioned) and migrate the shards the ring moves onto it."""
        rack = self.rack
        if gid is None:
            gid = rack.add_group()
        moves = rack.shards.plan_join(gid)
        rack.shards.commit_join(gid)
        for shard, src, dst in moves:
            if rack.shards.assignment[shard] != src:
                # A failover promotion re-homed the shard while earlier
                # moves ran; this plan entry is stale.
                continue
            yield from self.migrate_shard(shard, src, dst)
        if rack.spec.replicas:
            yield from self.sync_all_replicas()
        return gid

    def leave(self, gid: Optional[int] = None):
        """Drain ``gid`` (default: lowest live group) to the owners the
        shrunk ring picks, then retire it."""
        rack = self.rack
        if gid is None:
            gid = rack.live_groups()[0]
        self.draining.add(gid)
        # A group that crashed before its drain started was already
        # commit_left by the failover manager; nothing is left to plan.
        moves = rack.shards.plan_leave(gid) \
            if gid in rack.shards.groups else []
        for shard, src, dst in moves:
            if rack.shards.assignment[shard] != src:
                # The failover manager promoted this shard off the
                # (crashed) draining group while an earlier move ran;
                # its data lives at the new primary, so draining the
                # stale source would forfeit live keys.
                continue
            yield from self.migrate_shard(shard, src, dst)
        if gid in rack.shards.groups:
            # The failover manager commit_leaves a group the instant it
            # dies; a planned drain of a group that crashed mid-drain
            # must not commit it out of the ring twice.
            rack.shards.commit_leave(gid)
        if rack.spec.replicas:
            # A destination death can abort a drain move; re-plan any
            # shard still assigned to the leaving group against the
            # shrunk ring until the group is fully drained.
            # Intrinsic protocol bound, not a retry budget: each round
            # re-plans against a ring that lost at least one candidate,
            # so the rounds are bounded by the (tiny) group count.
            for _attempt in range(3):  # lint: disable=L006
                stuck = [] if gid in rack.failed_groups \
                    else rack.shards.shards_of(gid)
                if not stuck:
                    break
                for shard in stuck:
                    dst = self._pick_owner(shard, exclude={gid})
                    if dst is None:
                        break
                    yield from self.migrate_shard(shard, gid, dst)
            yield from self.sync_all_replicas()
        rack.retired_groups.add(gid)
        self.draining.discard(gid)
        return gid

    def _pick_owner(self, shard: int, exclude=()) -> Optional[int]:
        """First group on the current ring chain that can own ``shard``."""
        rack = self.rack
        banned = set(exclude) | rack.failed_groups | rack.retired_groups
        for gid in rack.shards.owner_chain(shard):
            if gid not in banned:
                return gid
        return None

    # -- replica recovery helpers ------------------------------------------
    def _read_from_replicas(self, shard: int, key: bytes, executor):
        """Recover ``key``'s value from the freshest live replica chain;
        returns ``None`` when no live replica holds it."""
        rack = self.rack
        for gid in rack.live_replicas(shard):
            client = rack.group_index(gid).client(self.cn_id)
            try:
                value = yield from executor.run(client.search(key))
            except (MNUnavailable,) + _TRANSIENT:
                continue
            if value is not None:
                rack.repl.inc("replica_recovered_reads")
                return value
        return None

    def _abort_migration(self, migration: Migration, executor):
        """Destination died mid-copy: restore copied keys to the source
        and retire the migration without flipping.  Source copies are
        deleted only after a replicated migration completes, so the
        common case finds every copied key still at the source; replicas
        back up anything the source lost."""
        rack = self.rack
        shard = migration.shard
        src_client = rack.group_index(migration.src).client(self.cn_id)
        for key in sorted(rack.registry[shard] & migration.copied):
            try:
                value = yield from executor.run(src_client.search(key))
            except _TRANSIENT + (MNUnavailable,):
                value = None
            except ClientCrash:
                executor = self._executor()
                value = None
            if value is not None:
                continue              # the source never lost it
            value = yield from self._read_from_replicas(shard, key, executor)
            if value is None:
                rack.registry[shard].discard(key)
                self.forfeited_dead.append((shard, key))
                continue
            try:
                yield from executor.run(src_client.insert(key, value))
            except _TRANSIENT + (MNUnavailable,):
                rack.registry[shard].discard(key)
                self.forfeited_dead.append((shard, key))
            except ClientCrash:
                executor = self._executor()
        del rack.migrations[shard]
        self.aborted.append((shard, migration.src, migration.dst))
        rack.repl.inc("migrations_aborted")

    def sync_all_replicas(self):
        """Reconcile every shard's replica set to the current ring."""
        for shard in range(self.rack.spec.num_shards):
            yield from self.sync_replicas(shard)

    def sync_replicas(self, shard: int):
        """Move ``shard``'s replica set to the current ring's successor-
        chain picks: copy the shard's keys to groups gaining the replica
        role, drop them from live groups losing it.  Returns the number
        of keys copied.  A no-op at K=0 and whenever the materialized
        set already matches - the common case, so calling this for every
        shard after a membership change stays cheap."""
        rack = self.rack
        if not rack.spec.replicas:
            return 0
        exclude = rack.retired_groups | rack.failed_groups | self.draining
        desired = rack.shards.desired_replicas(shard, exclude=exclude)
        current = rack.shards.replica_assignment[shard]
        if desired == current:
            return 0
        primary = rack.shards.assignment[shard]
        executor = self._executor()
        copied = 0
        for gid in [g for g in desired if g not in current]:
            dst_client = rack.group_index(gid).client(self.cn_id)
            for key in sorted(rack.registry[shard]):
                value = None
                try:
                    pclient = rack.group_index(primary).client(self.cn_id)
                    value = yield from executor.run(pclient.search(key))
                except MNUnavailable:
                    value = yield from self._read_from_replicas(
                        shard, key, executor)
                except _TRANSIENT:
                    pass
                except ClientCrash:
                    executor = self._executor()
                if value is None:
                    # Unreadable right now: leave the replica lagging and
                    # let anti-entropy repair it.
                    lag = rack.replica_lag[shard]
                    lag[gid] = lag.get(gid, 0) + 1
                    continue
                try:
                    yield from executor.run(dst_client.insert(key, value))
                    copied += 1
                except _TRANSIENT + (MNUnavailable,):
                    lag = rack.replica_lag[shard]
                    lag[gid] = lag.get(gid, 0) + 1
                except ClientCrash:
                    executor = self._executor()
        for gid in [g for g in current if g not in desired]:
            rack.replica_lag[shard].pop(gid, None)
            if gid == primary or gid in rack.failed_groups \
                    or gid in rack.retired_groups:
                # A promoted replica keeps its data (it *is* the
                # primary's data now); dead/retiring cells keep theirs
                # for the coroner.
                continue
            dst_client = rack.group_index(gid).client(self.cn_id)
            for key in sorted(rack.registry[shard]):
                try:
                    yield from executor.run(dst_client.delete(key))
                except _TRANSIENT + (MNUnavailable,):
                    pass
                except ClientCrash:
                    executor = self._executor()
        rack.shards.replica_assignment[shard] = desired
        if copied:
            rack.repl.inc("rereplicated_keys", copied)
        return copied

    def migrate_shard(self, shard: int, src: int, dst: int):
        """Copy one shard from group ``src`` to ``dst`` (see protocol
        above); a simulation process, composable with ``yield from``."""
        rack = self.rack
        migration = Migration(shard=shard, src=src, dst=dst)
        rack.migrations[shard] = migration
        src_client = rack.group_index(src).client(self.cn_id)
        dst_client = rack.group_index(dst).client(self.cn_id)
        executor = self._executor()
        moved = 0
        failures: dict = {}
        # Replicated racks retire source copies only after the whole
        # shard is moved: if the destination is also the shard's replica
        # group, a per-key source delete would leave both live copies of
        # a copied key on one group mid-migration, and that group's
        # death would forfeit it.  Deferring the deletes keeps the
        # source a full fallback for the abort path.  K=0 keeps the
        # original per-key delete (and its verb schedule) exactly.
        deferred_deletes: List[bytes] = []

        def transient_forfeit(key: bytes) -> None:
            # Transient: leave the key pending; the next sweep retries
            # it - up to the per-key budget, past which the damage is
            # beyond online repair and the key's data is forfeit (fsck
            # finds the debris).
            failures[key] = failures.get(key, 0) + 1
            if failures[key] >= self.max_key_attempts:
                migration.copied.add(key)
                rack.registry[shard].discard(key)
                self.forfeited_chaos.append((shard, key))

        while True:
            pending = sorted(rack.registry[shard] - migration.copied)
            if not pending:
                break
            for key in pending:
                recovered = False
                try:
                    value = yield from executor.run(src_client.search(key))
                except _TRANSIENT:
                    transient_forfeit(key)
                    continue
                except MNUnavailable:
                    if rack.spec.replicas:
                        value = yield from self._read_from_replicas(
                            shard, key, executor)
                        recovered = value is not None
                    if not recovered:
                        # The source cell is gone and nothing replicates
                        # it: the key's data is forfeit, but the
                        # migration must still converge - mark it copied
                        # and move on.
                        migration.copied.add(key)
                        rack.registry[shard].discard(key)
                        self.forfeited_dead.append((shard, key))
                        continue
                except ClientCrash:
                    # The coordinator CN was a crash victim: continue the
                    # sweep with a fresh executor, as the recovery
                    # manager's daemons do.
                    executor = self._executor()
                    continue
                try:
                    if value is not None:
                        yield from executor.run(dst_client.insert(key, value))
                except _TRANSIENT:
                    transient_forfeit(key)
                    continue
                except MNUnavailable:
                    if rack.spec.replicas:
                        yield from self._abort_migration(migration, executor)
                        return
                    migration.copied.add(key)
                    rack.registry[shard].discard(key)
                    self.forfeited_dead.append((shard, key))
                    continue
                except ClientCrash:
                    executor = self._executor()
                    continue
                # The copy is durable at the destination: flip the router
                # first, then retire the source copy - readers in the
                # delete window are already served by the destination.
                migration.copied.add(key)
                if value is not None:
                    moved += 1
                    if recovered:
                        # The source cell is dead; there is no copy to
                        # retire there.
                        continue
                    if rack.spec.replicas:
                        deferred_deletes.append(key)
                        continue
                    try:
                        yield from executor.run(src_client.delete(key))
                    except _TRANSIENT + (MNUnavailable,):
                        # The key is already routed to the destination;
                        # a source copy that outlives a faulted delete is
                        # an orphan in a cell that is either about to
                        # retire or internally consistent without it.
                        pass
                    except ClientCrash:
                        executor = self._executor()
        rack.shards.assignment[shard] = dst
        del rack.migrations[shard]
        for key in deferred_deletes:
            # Unconditional: even a key concurrently deleted or updated
            # mid-migration must lose its (stale) source copy.
            try:
                yield from executor.run(src_client.delete(key))
            except _TRANSIENT + (MNUnavailable,):
                pass
            except ClientCrash:
                executor = self._executor()
        self.completed.append((shard, src, dst, moved))
        if rack.spec.replicas:
            yield from self.sync_replicas(shard)
