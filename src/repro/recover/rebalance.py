"""Online shard rebalancing for rack-scale clusters (DESIGN.md §13).

When an MN group joins or leaves a :class:`repro.dm.rack.Rack`, the
shards the consistent-hash ring reassigns must move while traffic runs.
The :class:`Rebalancer` migrates one shard at a time with the copy
protocol the router understands:

1. publish a :class:`~repro.dm.rack.Migration` for the shard - from this
   instant the router serves a key from the destination iff it is in the
   migration's ``copied`` set, and writes brand-new keys straight to the
   destination;
2. sweep the shard's key registry in sorted order, copying each pending
   key (read from source, insert at destination, mark copied, delete at
   source) through a *timed* executor, so a migration competes for NIC
   bandwidth like any tenant.  The router flip (``copied.add``) happens
   *after* the destination copy is durable and *before* the source copy
   is removed, so a concurrent reader always finds the key in whichever
   cell it is routed to - the source delete runs while readers are
   already served by the destination;
3. repeat the sweep until it finds nothing pending (concurrent deletes
   un-mark keys; concurrent inserts self-mark), then flip
   ``assignment[shard]`` and retire the migration.

Routing never jumps ahead of the data: every key is served by exactly
one cell at every instant, which is the invariant the post-run fsck and
the possible-state oracle check.  A value updated at the source after
its copy departs is lost to the copy - last-writer-wins at copy time -
the same relaxation online resharding systems document; the differential
oracle treats both the pre- and post-copy value as possible.

Under chaos the sweep degrades, never wedges: a retryable fault skips
the key until the next sweep, and an ``MNUnavailable`` source (crashed
MN group) forfeits the key's data but still marks it copied so the
migration can complete - exactly what ``crash_mn`` means for a
non-replicated cell.  A key whose copy keeps failing across
``max_key_attempts`` sweeps is forfeited the same way: chaos-era
"applied" write drops can leave a key in a state no online retry
resolves (only ``fsck --repair`` can), and a migration must converge
rather than sweep such a key forever.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dm.rack import Migration, Rack
from ..dm.rdma import OpStats
from ..errors import (
    ClientCrash,
    InjectedFault,
    MNUnavailable,
    RetryLimitExceeded,
)


class Rebalancer:
    """Migrates shards between a rack's MN groups while traffic runs."""

    def __init__(self, rack: Rack, cn_id: int = 0,
                 max_key_attempts: int = 8):
        self.rack = rack
        self.cn_id = cn_id
        self.max_key_attempts = max_key_attempts
        #: Verb totals of every migration this rebalancer ran (timed, so
        #: migration traffic shows up in NIC utilization like any tenant).
        self.op_stats = OpStats()
        #: ``[(shard, src, dst, keys_moved), ...]`` of finished moves.
        self.completed: List[Tuple[int, int, int, int]] = []
        #: Keys whose copy kept failing (chaos damage) and whose data was
        #: forfeited so the migration could converge.
        self.forfeited: List[Tuple[int, bytes]] = []

    def _executor(self):
        return self.rack.cluster.sim_executor(self.cn_id, self.op_stats)

    # -- membership changes (simulation processes) -------------------------
    def join(self, gid: Optional[int] = None):
        """Provision a fresh MN group (unless ``gid`` names one already
        provisioned) and migrate the shards the ring moves onto it."""
        rack = self.rack
        if gid is None:
            gid = rack.add_group()
        moves = rack.shards.plan_join(gid)
        rack.shards.commit_join(gid)
        for shard, src, dst in moves:
            yield from self.migrate_shard(shard, src, dst)
        return gid

    def leave(self, gid: Optional[int] = None):
        """Drain ``gid`` (default: lowest live group) to the owners the
        shrunk ring picks, then retire it."""
        rack = self.rack
        if gid is None:
            gid = rack.live_groups()[0]
        moves = rack.shards.plan_leave(gid)
        for shard, src, dst in moves:
            yield from self.migrate_shard(shard, src, dst)
        rack.shards.commit_leave(gid)
        rack.retired_groups.add(gid)
        return gid

    def migrate_shard(self, shard: int, src: int, dst: int):
        """Copy one shard from group ``src`` to ``dst`` (see protocol
        above); a simulation process, composable with ``yield from``."""
        rack = self.rack
        migration = Migration(shard=shard, src=src, dst=dst)
        rack.migrations[shard] = migration
        src_client = rack.group_index(src).client(self.cn_id)
        dst_client = rack.group_index(dst).client(self.cn_id)
        executor = self._executor()
        moved = 0
        failures: dict = {}
        while True:
            pending = sorted(rack.registry[shard] - migration.copied)
            if not pending:
                break
            for key in pending:
                try:
                    value = yield from executor.run(src_client.search(key))
                    if value is not None:
                        yield from executor.run(
                            dst_client.insert(key, value))
                except (RetryLimitExceeded, InjectedFault):
                    # Transient: leave the key pending; the next sweep
                    # retries it - up to the per-key budget, past which
                    # the damage is beyond online repair and the key's
                    # data is forfeit (fsck finds the debris).
                    failures[key] = failures.get(key, 0) + 1
                    if failures[key] >= self.max_key_attempts:
                        migration.copied.add(key)
                        rack.registry[shard].discard(key)
                        self.forfeited.append((shard, key))
                    continue
                except MNUnavailable:
                    # The source cell is gone: the key's data is forfeit
                    # (non-replicated cell), but the migration must still
                    # converge - mark it copied and move on.
                    migration.copied.add(key)
                    rack.registry[shard].discard(key)
                    continue
                except ClientCrash:
                    # The coordinator CN was a crash victim: continue the
                    # sweep with a fresh executor, as the recovery
                    # manager's daemons do.
                    executor = self._executor()
                    continue
                # The copy is durable at the destination: flip the router
                # first, then retire the source copy - readers in the
                # delete window are already served by the destination.
                migration.copied.add(key)
                if value is not None:
                    moved += 1
                    try:
                        yield from executor.run(src_client.delete(key))
                    except (RetryLimitExceeded, InjectedFault,
                            MNUnavailable):
                        # The key is already routed to the destination;
                        # a source copy that outlives a faulted delete is
                        # an orphan in a cell that is either about to
                        # retire or internally consistent without it.
                        pass
                    except ClientCrash:
                        executor = self._executor()
        rack.shards.assignment[shard] = dst
        del rack.migrations[shard]
        self.completed.append((shard, src, dst, moved))
