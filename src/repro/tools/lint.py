"""Repo-invariant lint: static AST checks for the protocol idioms that
keep this codebase honest.

The simulator can only catch what a workload happens to execute; these
rules catch the same classes of bug at rest:

* **L001** - direct ``Memory`` data-plane access (``read``/``write``/
  ``read_u64``/``write_u64``/``cas_u64``/``faa_u64`` on a memory object)
  outside ``repro/dm/`` and ``repro/tools/``.  Protocol code must go
  through verb generators so executors (and DMSan) see every access;
  host-side control-plane exceptions carry an explicit pragma.
* **L002** - a ``yield CasOp(...)`` whose result is discarded.  A CAS
  that nobody checks is a lock/claim that may silently have failed.
* **L003** - an empty ``Batch([])`` literal.  The runtime rejects empty
  doorbells too (see :class:`repro.dm.rdma.Batch`); the lint catches the
  obvious literal before anything runs.
* **L004** - ``raise`` of a builtin exception type.  Library errors must
  derive from :class:`repro.errors.ReproError` so callers can catch
  library failures without masking programming errors.
* **L005** - a compiled ``.pyc`` file tracked by git.  Bytecode is
  interpreter-specific build output; committing it bloats diffs and can
  shadow source changes.  ``.gitignore`` keeps new ones out; this rule
  fails the build if one sneaks back in.
* **L006** - a bare retry loop in protocol code: ``for ... in range(<
  literal>)`` whose body yields verbs.  Every bounded remote-op loop
  must take its bound (and backoff) from the one shared
  :class:`repro.fault.RetryPolicy` - magic-number retry budgets drift
  apart and make timeout behaviour impossible to reason about globally.
  Loops whose bound is intrinsic to the protocol (not a tunable) carry a
  pragma with a justification.  Infrastructure layers (dm/sim/obs/bench/
  ycsb) are exempt: their loops pace engine events, not client retries.

L001, L002, and L006 run over the CFGs built by :mod:`repro.analysis`
(the same graphs dmverify's flow rules use), so each statement is
checked exactly once and the exemption lists live in one place
(``repro.analysis.rules``).  L003/L004 remain a plain AST visitor and
L005 a git query.  ``python -m repro.tools.dmverify`` layers the
path-sensitive S-rules on top; S004 is the semantic upgrade of L006
(constants are propagated, ``while`` counters count) and honors
``# lint: disable=L006`` pragmas at the same site.

Suppressions: append ``# lint: disable=L001`` to the offending line, or
put ``# lint: disable-file=L001`` in the first ten lines of a file.
Run as ``python -m repro.tools.lint [--format=text|json] [paths...]``;
exits non-zero when findings remain.
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis import rules as _rules
from repro.analysis.cfg import build_cfgs
from repro.analysis.findings import (Finding, Suppressions, dedupe,
                                     sort_key)

_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "ValueError", "KeyError", "TypeError", "RuntimeError",
    "IndexError", "LookupError", "ArithmeticError", "OSError",
    "AttributeError", "MemoryError",
})

#: Directories whose files own the data plane and may touch Memory
#: directly.  Canonical list lives in repro.analysis.rules.
_L001_EXEMPT_PARTS = _rules.L001_EXEMPT_PARTS

#: Layers whose loops pace engine/bench events rather than client-side
#: protocol retries; L006 only governs the latter.
_L006_EXEMPT_PARTS = _rules.L006_EXEMPT_PARTS


class _Visitor(ast.NodeVisitor):
    """L003 (empty Batch literal) and L004 (builtin raise)."""

    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "Batch" \
                and len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            if isinstance(arg, (ast.List, ast.Tuple)) and not arg.elts:
                self.findings.append(Finding(
                    self.rel, node.lineno, "L003",
                    "empty Batch literal: a doorbell needs >= 1 verb"))
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            self.findings.append(Finding(
                self.rel, node.lineno, "L004",
                f"raise of builtin {name}: library errors must derive "
                f"from ReproError (see repro.errors)"))
        self.generic_visit(node)


def lint_file(path: Path, root: Optional[Path] = None) -> List[Finding]:
    rel = str(path.relative_to(root)) if root else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rel, exc.lineno or 0, "L000",
                        f"syntax error: {exc.msg}")]
    cfgs = build_cfgs(tree, modname=rel)
    raw = _rules.lint_rules(
        cfgs,
        l001_exempt=_rules.is_exempt(rel, _L001_EXEMPT_PARTS),
        l006_exempt=_rules.is_exempt(rel, _L006_EXEMPT_PARTS))
    findings = [Finding(rel, item.line, item.rule, item.message)
                for item in raw]
    visitor = _Visitor(rel)
    visitor.visit(tree)
    findings.extend(visitor.findings)
    suppressions = Suppressions.for_source("lint", source)
    kept = [f for f in findings
            if not suppressions.suppressed(f.rule, f.line)]
    return dedupe(sorted(kept, key=sort_key))


def lint_paths(paths: Sequence[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for base in paths:
        base = base.resolve()
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                findings.extend(lint_file(file, base.parent))
        else:
            findings.extend(lint_file(base, base.parent))
    return findings


def lint_tracked_pyc(start: Optional[Path] = None) -> List[Finding]:
    """L005: ``.pyc`` files tracked by git.

    Resolves the repository containing ``start`` (default: this package)
    and asks ``git ls-files`` for tracked bytecode.  Outside a git
    checkout - an sdist, a plain copy - there is nothing to check and
    the rule passes silently.
    """
    where = (start if start is not None else Path(__file__)).resolve()
    if where.is_file():
        where = where.parent
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=where,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return []
    if top.returncode != 0:
        return []
    root = top.stdout.strip()
    tracked = subprocess.run(
        ["git", "ls-files", "--", "*.pyc"], cwd=root,
        capture_output=True, text=True, timeout=30)
    if tracked.returncode != 0:
        return []
    return [Finding(path, 0, "L005",
                    "tracked .pyc: bytecode is build output, untrack it "
                    "(git rm --cached) - __pycache__/ is gitignored")
            for path in sorted(tracked.stdout.splitlines()) if path]


def default_target() -> Path:
    """The installed ``repro`` package (what CI lints)."""
    return Path(__file__).resolve().parent.parent


def main(argv: Optional[Iterable[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    paths: List[str] = []
    for arg in args:
        if arg in ("--format=text", "--format=json"):
            fmt = arg.split("=", 1)[1]
        elif arg == "--format" or arg.startswith("--format="):
            print("lint: error: --format requires =text or =json",
                  file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    targets = [Path(p) for p in paths] if paths else [default_target()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for target in missing:
            print(f"lint: error: no such file or directory: {target}",
                  file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    findings.extend(lint_tracked_pyc(targets[0]))
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if fmt == "json":
        payload = {
            "tool": "lint",
            "version": 1,
            "targets": [str(t) for t in targets],
            "counts": counts,
            "findings": [f.to_json() for f in findings],
            "clean": not findings,
            "exit_code": 1 if findings else 0,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        breakdown = ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
        print(f"lint: {len(findings)} finding(s) ({breakdown})")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
