"""Repo-invariant lint: static AST checks for the protocol idioms that
keep this codebase honest.

The simulator can only catch what a workload happens to execute; these
rules catch the same classes of bug at rest:

* **L001** - direct ``Memory`` data-plane access (``read``/``write``/
  ``read_u64``/``write_u64``/``cas_u64``/``faa_u64`` on a memory object)
  outside ``repro/dm/`` and ``repro/tools/``.  Protocol code must go
  through verb generators so executors (and DMSan) see every access;
  host-side control-plane exceptions carry an explicit pragma.
* **L002** - a ``yield CasOp(...)`` whose result is discarded.  A CAS
  that nobody checks is a lock/claim that may silently have failed.
* **L003** - an empty ``Batch([])`` literal.  The runtime rejects empty
  doorbells too (see :class:`repro.dm.rdma.Batch`); the lint catches the
  obvious literal before anything runs.
* **L004** - ``raise`` of a builtin exception type.  Library errors must
  derive from :class:`repro.errors.ReproError` so callers can catch
  library failures without masking programming errors.
* **L005** - a compiled ``.pyc`` file tracked by git.  Bytecode is
  interpreter-specific build output; committing it bloats diffs and can
  shadow source changes.  ``.gitignore`` keeps new ones out; this rule
  fails the build if one sneaks back in.
* **L006** - a bare retry loop in protocol code: ``for ... in range(<
  literal>)`` whose body yields verbs.  Every bounded remote-op loop
  must take its bound (and backoff) from the one shared
  :class:`repro.fault.RetryPolicy` - magic-number retry budgets drift
  apart and make timeout behaviour impossible to reason about globally.
  Loops whose bound is intrinsic to the protocol (not a tunable) carry a
  pragma with a justification.  Infrastructure layers (dm/sim/obs/bench/
  ycsb) are exempt: their loops pace engine events, not client retries.

Suppressions: append ``# lint: disable=L001`` to the offending line, or
put ``# lint: disable-file=L001`` in the first ten lines of a file.
Run as ``python -m repro.tools.lint [paths...]``; exits non-zero when
findings remain.
"""

from __future__ import annotations

import ast
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set

_DATA_PLANE_METHODS = frozenset(
    {"read", "write", "read_u64", "write_u64", "cas_u64", "faa_u64"})
_MEMORY_NAME = re.compile(r"(^|_)(mem|memory|memories)($|_|\b)")
_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "ValueError", "KeyError", "TypeError", "RuntimeError",
    "IndexError", "LookupError", "ArithmeticError", "OSError",
    "AttributeError", "MemoryError",
})
_LINE_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*disable-file=([A-Z0-9,\s]+)")

#: Directories (relative to the package root) whose files own the
#: data plane and may touch Memory directly.
_L001_EXEMPT_PARTS = ("repro/dm/", "repro/tools/", "repro/san/",
                      "repro/fault/")

#: Layers whose loops pace engine/bench events rather than client-side
#: protocol retries; L006 only governs the latter.
_L006_EXEMPT_PARTS = _L001_EXEMPT_PARTS + (
    "repro/sim/", "repro/obs/", "repro/bench/", "repro/ycsb/")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _receiver_names(node: ast.expr) -> Set[str]:
    """Identifier fragments appearing in an attribute call's receiver."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _looks_like_memory(node: ast.expr) -> bool:
    return any(_MEMORY_NAME.search(name) for name in _receiver_names(node))


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str, source: str):
        self.rel = rel
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self.file_disabled = self._file_pragmas()
        normalized = rel.replace("\\", "/")
        self.l001_exempt = any(part in normalized
                               for part in _L001_EXEMPT_PARTS)
        self.l006_exempt = any(part in normalized
                               for part in _L006_EXEMPT_PARTS)

    def _file_pragmas(self) -> Set[str]:
        disabled: Set[str] = set()
        for line in self.lines[:10]:
            match = _FILE_PRAGMA.search(line)
            if match:
                disabled.update(
                    r.strip() for r in match.group(1).split(","))
        return disabled

    def _suppressed(self, rule: str, lineno: int) -> bool:
        if rule in self.file_disabled:
            return True
        if 1 <= lineno <= len(self.lines):
            match = _LINE_PRAGMA.search(self.lines[lineno - 1])
            if match and rule in {r.strip()
                                  for r in match.group(1).split(",")}:
                return True
        return False

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if not self._suppressed(rule, node.lineno):
            self.findings.append(
                Finding(self.rel, node.lineno, rule, message))

    # -- L001: data-plane bypass ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if not self.l001_exempt and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _DATA_PLANE_METHODS \
                and _looks_like_memory(node.func.value):
            self._emit(
                "L001", node,
                f"direct Memory.{node.func.attr}() bypasses the executors "
                f"(and DMSan); go through verb generators, or pragma a "
                f"control-plane exception")
        # L003: empty doorbell literal.
        if isinstance(node.func, ast.Name) and node.func.id == "Batch" \
                and len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            if isinstance(arg, (ast.List, ast.Tuple)) and not arg.elts:
                self._emit("L003", node,
                           "empty Batch literal: a doorbell needs >= 1 verb")
        self.generic_visit(node)

    # -- L002: discarded CAS result ------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Yield) and value.value is not None:
            yielded = value.value
            if isinstance(yielded, ast.Call) \
                    and isinstance(yielded.func, ast.Name) \
                    and yielded.func.id == "CasOp":
                self._emit(
                    "L002", node,
                    "CAS result discarded: the swapped flag must be "
                    "consumed (an unchecked CAS is a lock that may have "
                    "silently failed)")
        self.generic_visit(node)

    # -- L006: bare retry loops ----------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if not self.l006_exempt and isinstance(node.iter, ast.Call) \
                and isinstance(node.iter.func, ast.Name) \
                and node.iter.func.id == "range" \
                and node.iter.args \
                and all(isinstance(a, ast.Constant)
                        for a in node.iter.args):
            yields_verbs = any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for child in node.body for sub in ast.walk(child))
            if yields_verbs:
                self._emit(
                    "L006", node,
                    "bare retry loop: a bounded loop that yields verbs "
                    "must take its bound from RetryPolicy (see "
                    "repro.fault.retry), or pragma an intrinsic protocol "
                    "bound with a justification")
        self.generic_visit(node)

    # -- L004: builtin exceptions --------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            self._emit(
                "L004", node,
                f"raise of builtin {name}: library errors must derive "
                f"from ReproError (see repro.errors)")
        self.generic_visit(node)


def lint_file(path: Path, root: Path | None = None) -> List[Finding]:
    rel = str(path.relative_to(root)) if root else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rel, exc.lineno or 0, "L000",
                        f"syntax error: {exc.msg}")]
    linter = _Linter(path, rel, source)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.rule))


def lint_paths(paths: Sequence[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for base in paths:
        base = base.resolve()
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                findings.extend(lint_file(file, base.parent))
        else:
            findings.extend(lint_file(base, base.parent))
    return findings


def lint_tracked_pyc(start: Path | None = None) -> List[Finding]:
    """L005: ``.pyc`` files tracked by git.

    Resolves the repository containing ``start`` (default: this package)
    and asks ``git ls-files`` for tracked bytecode.  Outside a git
    checkout - an sdist, a plain copy - there is nothing to check and
    the rule passes silently.
    """
    where = (start if start is not None else Path(__file__)).resolve()
    if where.is_file():
        where = where.parent
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=where,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return []
    if top.returncode != 0:
        return []
    root = top.stdout.strip()
    tracked = subprocess.run(
        ["git", "ls-files", "--", "*.pyc"], cwd=root,
        capture_output=True, text=True, timeout=30)
    if tracked.returncode != 0:
        return []
    return [Finding(path, 0, "L005",
                    "tracked .pyc: bytecode is build output, untrack it "
                    "(git rm --cached) - __pycache__/ is gitignored")
            for path in sorted(tracked.stdout.splitlines()) if path]


def default_target() -> Path:
    """The installed ``repro`` package (what CI lints)."""
    return Path(__file__).resolve().parent.parent


def main(argv: Iterable[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    targets = [Path(a) for a in args] if args else [default_target()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for target in missing:
            print(f"lint: error: no such file or directory: {target}",
                  file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    findings.extend(lint_tracked_pyc(targets[0]))
    for finding in findings:
        print(finding.render())
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if findings:
        breakdown = ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
        print(f"lint: {len(findings)} finding(s) ({breakdown})")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
