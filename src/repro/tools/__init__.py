"""Operational tooling: offline consistency checking (fsck)."""

from .fsck import FsckReport, check_index, check_sphinx, check_tree

__all__ = ["FsckReport", "check_index", "check_sphinx", "check_tree"]
