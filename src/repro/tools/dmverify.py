"""DMVerify CLI: path-sensitive static verification of the protocol
layer.

Usage::

    python -m repro.tools.dmverify [--format=text|json] [paths...]

With no paths, verifies the installed ``repro`` package (what CI
gates).  Exit codes mirror lint: 0 clean, 1 findings, 2 usage error.

Rules (see DESIGN.md section 10 for the catalog with examples):

* **S001** - lock acquired (lock CAS, segment-split CAS, or an acquire
  helper) but not released on some path, including exception exits.
  Findings carry a path witness: the acquire, the flag tests, and the
  exit that leaks.
* **S002** - lock-acquiring CAS (unlocked -> locked transition) with
  no lease tag; crash recovery cannot reclaim what it cannot see.
* **S003** - remote write through a released lock key: mutations of a
  locked structure must stay inside the acquire/release window.
* **S004** - retry loop with a magic constant bound (semantic upgrade
  of lint L006: constants are propagated, `while` counters count).
* **S005** - verb constructed but never yielded: invisible to the
  executor, the fault injector, and the tracer.
* **S006** - a class playing an ``attach_*`` hook role whose methods
  do not match the executor callback interface.

Suppressions: ``# dmverify: disable=S001`` on the line, or
``# dmverify: disable-file=S001`` in the first ten lines.  Rules that
upgrade a lint rule also honor the older pragma at the same site
(``# lint: disable=L006`` silences S004).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from repro.analysis import Report, analyze_paths


def default_target() -> Path:
    """The installed ``repro`` package (what CI verifies)."""
    return Path(__file__).resolve().parent.parent


def render_text(report: Report) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
        lines.extend(finding.render_witness())
    if report.findings:
        breakdown = ", ".join(f"{rule}={count}" for rule, count
                              in sorted(report.counts().items()))
        lines.append(f"dmverify: {len(report.findings)} finding(s) "
                     f"({breakdown})")
    else:
        lines.append(f"dmverify: clean ({report.files} files, "
                     f"{report.functions} functions analyzed)")
    return "\n".join(lines)


def main(argv: Iterable[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    paths: List[str] = []
    for arg in args:
        if arg in ("--format=text", "--format=json"):
            fmt = arg.split("=", 1)[1]
        elif arg == "--format":
            print("dmverify: error: --format requires =text or =json",
                  file=sys.stderr)
            return 2
        elif arg.startswith("-"):
            print(f"dmverify: error: unknown option: {arg}",
                  file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    targets = [Path(p) for p in paths] if paths else [default_target()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for target in missing:
            print(f"dmverify: error: no such file or directory: "
                  f"{target}", file=sys.stderr)
        return 2
    report = analyze_paths(targets)
    if fmt == "json":
        payload = report.to_json(targets=[str(t) for t in targets])
        payload["exit_code"] = 0 if report.clean else 1
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
