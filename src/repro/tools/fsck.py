"""Offline consistency checker for on-MN index structures.

Like a filesystem's fsck: walks the tree directly in simulated MN memory
(no client, no clock) and validates every structural invariant the
protocols rely on.  Used by the concurrency test-suite as ground truth
after chaotic interleavings, and available to users debugging their own
workloads.

Checked invariants
------------------

Tree:
* headers decode, node types are legal, status is Idle/Locked (a
  *reachable* Invalid node is an error - type switches must unlink first);
* depths strictly increase along every path;
* the 42-bit header prefix hash matches the node's real prefix (recovered
  from any leaf below it);
* no duplicate partial bytes among a node's occupied slots;
* small-node append cursors: occupied slots fit below the cursor, cursor
  within capacity;
* leaves: checksum valid, status Idle/Locked, key consistent with every
  ancestor's (depth, partial) constraint, no duplicate keys in the tree.

Sphinx extras:
* every reachable inner node (except the root) has a hash-table entry at
  its prefix pointing to its address with the right node type and fp2;
* hash-table entries pointing at Invalid/retired nodes are counted as
  tolerated garbage (reported, not errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..art.keys import common_prefix_len
from ..art.layout import (
    NODE256,
    NODE_CAPACITY,
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    decode_leaf,
    decode_node,
    node_size,
)
from ..dm.cluster import Cluster
from ..dm.memory import addr_mn, addr_offset
from ..errors import ReproError
from ..util.hashing import prefix_hash42


@dataclass
class FsckReport:
    """Outcome of one consistency check."""

    inner_nodes: int = 0
    leaves: int = 0
    max_depth: int = 0
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    inht_checked: int = 0
    inht_missing: int = 0
    inht_stale_tolerated: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERRORS"
        return (f"fsck: {status} - {self.inner_nodes} inner nodes, "
                f"{self.leaves} leaves, depth {self.max_depth}, "
                f"{len(self.warnings)} warnings, "
                f"INHT {self.inht_checked} checked / "
                f"{self.inht_missing} missing")


def _read_node_raw(cluster: Cluster, addr: int, node_type: int):
    memory = cluster.memories[addr_mn(addr)]
    return decode_node(memory.read(addr_offset(addr), node_size(node_type)))


def _read_leaf_raw(cluster: Cluster, addr: int, units: int):
    memory = cluster.memories[addr_mn(addr)]
    return decode_leaf(memory.read(addr_offset(addr), units * 64))


def check_tree(cluster: Cluster, root_addr: int,
               report: Optional[FsckReport] = None
               ) -> Tuple[FsckReport, Dict[bytes, int]]:
    """Validate the tree rooted at ``root_addr``.

    Returns (report, {inner_prefix: node_addr}) - the prefix map feeds
    the INHT cross-check.
    """
    report = report if report is not None else FsckReport()
    prefixes: Dict[bytes, int] = {}
    seen_keys: Set[bytes] = set()
    visited: Set[int] = set()

    def walk(addr: int, node_type: int, path) -> Optional[bytes]:
        """Recursive DFS; returns a witness key from the subtree."""
        if addr in visited:
            report.error(f"node {addr:#x} reachable twice (cycle/alias)")
            return None
        visited.add(addr)
        try:
            view = _read_node_raw(cluster, addr, node_type)
        except ReproError as exc:
            report.error(f"node {addr:#x} undecodable: {exc}")
            return None
        header = view.header
        report.inner_nodes += 1
        report.max_depth = max(report.max_depth, header.depth)
        if header.node_type != node_type:
            report.error(f"node {addr:#x}: slot said type {node_type}, "
                         f"header says {header.node_type}")
            return None
        if header.status == STATUS_INVALID:
            report.error(f"node {addr:#x}: reachable but Invalid")
            return None
        if header.status not in (STATUS_IDLE, STATUS_LOCKED):
            report.error(f"node {addr:#x}: bad status {header.status}")
        if path and header.depth <= path[-1][0]:
            report.error(f"node {addr:#x}: depth {header.depth} does not "
                         f"increase past ancestor depth {path[-1][0]}")
            return None
        capacity = NODE_CAPACITY[header.node_type]
        if header.node_type != NODE256:
            if header.count > capacity:
                report.error(f"node {addr:#x}: cursor {header.count} "
                             f"exceeds capacity {capacity}")
            for i, word in enumerate(view.words):
                if i >= header.count and word & (1 << 63):
                    report.error(f"node {addr:#x}: occupied slot {i} at/"
                                 f"past append cursor {header.count}")
        occupied = view.occupied_slots()
        partials = [s.partial for s in occupied]
        if len(partials) != len(set(partials)):
            report.error(f"node {addr:#x}: duplicate partial bytes "
                         f"{sorted(partials)}")
        witness: Optional[bytes] = None
        for slot in occupied:
            child_path = path + [(header.depth, slot.partial)]
            if slot.is_leaf:
                leaf = _read_leaf_raw(cluster, slot.addr, slot.size_class)
                report.leaves += 1
                if leaf.status == STATUS_INVALID:
                    report.error(f"leaf {slot.addr:#x}: reachable but "
                                 "Invalid (delete did not clear slot)")
                    continue
                if not leaf.checksum_ok:
                    if leaf.status == STATUS_LOCKED:
                        report.warn(f"leaf {slot.addr:#x}: torn under an "
                                    "in-flight lock")
                    else:
                        report.error(f"leaf {slot.addr:#x}: checksum "
                                     "mismatch at rest")
                    continue
                bad = False
                for depth, partial in child_path:
                    if len(leaf.key) <= depth or leaf.key[depth] != partial:
                        report.error(
                            f"leaf {slot.addr:#x} key {leaf.key!r} violates "
                            f"ancestor constraint (depth {depth}, "
                            f"partial {partial})")
                        bad = True
                        break
                if bad:
                    continue
                if leaf.key in seen_keys:
                    report.error(f"duplicate key {leaf.key!r}")
                seen_keys.add(leaf.key)
                if witness is None:
                    witness = leaf.key
            else:
                sub = walk(slot.addr, slot.size_class, child_path)
                if witness is None and sub is not None:
                    witness = sub
        # Prefix-hash check needs real bytes: recover from a witness leaf.
        if witness is not None:
            prefix = witness[:header.depth]
            if prefix_hash42(prefix) != header.prefix_hash:
                report.error(f"node {addr:#x}: prefix hash mismatch for "
                             f"recovered prefix {prefix!r}")
            else:
                prefixes[prefix] = addr
        elif occupied:
            report.warn(f"node {addr:#x}: no live leaves below; prefix "
                        "unverifiable")
        return witness

    walk(root_addr, NODE256, [])
    return report, prefixes


def check_sphinx(cluster: Cluster, index, report: Optional[FsckReport] = None
                 ) -> FsckReport:
    """Full check of a Sphinx index: tree + inner-node hash table."""
    report, prefixes = check_tree(cluster, index.root_addr, report)
    inht_client = index.client(0).inht
    executor = cluster.direct_executor()
    for prefix, node_addr in prefixes.items():
        if prefix == b"":
            continue  # the root has no hash-table entry (known statically)
        report.inht_checked += 1
        matches = executor.run(inht_client.lookup(prefix))
        live = [entry for _slot, entry in matches
                if entry.addr == node_addr]
        stale = [entry for _slot, entry in matches
                 if entry.addr != node_addr]
        if not live:
            report.inht_missing += 1
            report.error(f"INHT: no entry for reachable prefix {prefix!r} "
                         f"-> node {node_addr:#x}")
        report.inht_stale_tolerated += len(stale)
    return report


def check_index(cluster: Cluster, index) -> FsckReport:
    """Dispatch: Sphinx gets the INHT cross-check, baselines tree-only."""
    if hasattr(index, "inht"):
        return check_sphinx(cluster, index)
    report, _prefixes = check_tree(cluster, index.root_addr)
    return report
