"""Offline consistency checker for on-MN index structures.

Like a filesystem's fsck: walks the tree directly in simulated MN memory
(no client, no clock) and validates every structural invariant the
protocols rely on.  Used by the concurrency test-suite as ground truth
after chaotic interleavings, by :class:`repro.recover.RecoveryManager`
as its online repair stage, and available to users debugging their own
workloads (``python -m repro.tools.fsck`` runs a self-contained crash
scenario - see :func:`main`).

Checked invariants
------------------

Tree:
* headers decode, node types are legal, status is Idle/Locked (a
  *reachable* Invalid node is an error - type switches must unlink first);
* depths strictly increase along every path;
* the 42-bit header prefix hash matches the node's real prefix (recovered
  from any leaf below it);
* no duplicate partial bytes among a node's occupied slots;
* small-node append cursors: occupied slots fit below the cursor, cursor
  within capacity;
* leaves: checksum valid, status Idle/Locked, key consistent with every
  ancestor's (depth, partial) constraint, no duplicate keys in the tree.

Sphinx extras:
* every reachable inner node (except the root) has a hash-table entry at
  its prefix pointing to its address with the right node type and fp2;
* hash-table entries pointing at Invalid/retired nodes are counted as
  tolerated garbage (reported, not errors);
* a raw enumeration of every table segment catches **orphan** entries -
  occupied INHT slots whose target node is Invalid, undecodable, or not
  reachable from the tree at all (half-installed by a crashed client).

Repair
------

Some defects carry enough context to fix online; they are reported as
structured :class:`Finding` records alongside the human-readable error
strings, and ``check_index(..., repair=True)`` (the CLI's ``--repair``)
applies them through a :class:`~repro.dm.rdma.DirectExecutor` - CAS-
discipline only, so a racing live client can never be half-overwritten:

* ``invalid_leaf`` - a reachable Invalid leaf (crashed delete): CAS the
  parent slot clear;
* ``inht_missing`` - a reachable inner node with no hash-table entry
  (crashed insert/split): re-insert the entry;
* ``inht_orphan`` - an occupied table entry with no live target: CAS the
  entry clear;
* ``orphan_lock`` - a node/leaf/group lock held at rest: reported but
  **not** repaired here; only the lease table knows whether the owner is
  dead (see DESIGN.md §9).

MNs marked crashed by the fault injector (``crash_mn``) are skipped with
a warning rather than reported as a forest of errors: their memory was
blanked, and nothing behind a dead MN is repairable until it returns.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, \
    Tuple

from ..art.keys import common_prefix_len
from ..art.layout import (
    HashEntry,
    Header,
    NODE256,
    NODE_CAPACITY,
    NODE_TYPES,
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    decode_leaf,
    decode_node,
    node_size,
)
from ..dm.cluster import Cluster
from ..dm.memory import addr_mn, addr_offset
from ..dm.rdma import CasOp
from ..errors import ReproError
from ..race.layout import DIR_ENTRY
from ..util.bits import u64_from_bytes
from ..util.hashing import prefix_hash42

_OCC = 1 << 63


@dataclass(frozen=True)
class Finding:
    """A structured defect record (the machine-readable twin of an entry
    in ``FsckReport.errors``/``warnings``)."""

    kind: str          # invalid_leaf | inht_missing | inht_orphan | orphan_lock
    addr: int          # address the finding anchors to
    detail: str
    repairable: bool
    meta: tuple = ()   # repair context, kind-specific


@dataclass
class FsckReport:
    """Outcome of one consistency check."""

    inner_nodes: int = 0
    leaves: int = 0
    max_depth: int = 0
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    inht_checked: int = 0
    inht_missing: int = 0
    inht_stale_tolerated: int = 0
    inht_entries: int = 0
    inht_orphans: int = 0
    findings: List[Finding] = field(default_factory=list)
    repaired: int = 0
    reachable: Dict[bytes, Tuple[int, int]] = field(default_factory=dict)
    reachable_nodes: Set[int] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return not self.errors

    @property
    def unrepairable(self) -> List[Finding]:
        return [f for f in self.findings if not f.repairable]

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def find(self, kind: str, addr: int, detail: str, repairable: bool,
             meta: tuple = ()) -> None:
        self.findings.append(Finding(kind, addr, detail, repairable, meta))

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERRORS"
        repaired = f", {self.repaired} repaired" if self.repaired else ""
        return (f"fsck: {status} - {self.inner_nodes} inner nodes, "
                f"{self.leaves} leaves, depth {self.max_depth}, "
                f"{len(self.warnings)} warnings, "
                f"INHT {self.inht_checked} checked / "
                f"{self.inht_missing} missing{repaired}")


def _dead_mns(cluster: Cluster) -> Set[int]:
    injector = cluster.injector
    return set() if injector is None else set(injector.dead_mns)


def _read_node_raw(cluster: Cluster, addr: int, node_type: int):
    memory = cluster.memories[addr_mn(addr)]
    return decode_node(memory.read(addr_offset(addr), node_size(node_type)))


def _read_leaf_raw(cluster: Cluster, addr: int, units: int):
    memory = cluster.memories[addr_mn(addr)]
    return decode_leaf(memory.read(addr_offset(addr), units * 64))


def collect_leaves(cluster: Cluster, root_addr: int) -> Dict[bytes, bytes]:
    """Best-effort offline ``{key: value}`` enumeration of one cell.

    A light sibling of :func:`check_tree` for the rack's replica-
    agreement stage: pure memory walks (no clock, no verbs, no injector
    RNG), collecting every valid, checksum-ok leaf and silently skipping
    dead MNs and undecodable structure - structural damage is
    :func:`check_tree`'s job, not this walk's.
    """
    out: Dict[bytes, bytes] = {}
    visited: Set[int] = set()
    dead = _dead_mns(cluster)

    def walk(addr: int, node_type: int) -> None:
        if addr in visited or addr_mn(addr) in dead:
            return
        visited.add(addr)
        try:
            view = _read_node_raw(cluster, addr, node_type)
        except ReproError:
            return
        if view.header.status == STATUS_INVALID:
            return
        for slot in view.occupied_slots():
            if slot.is_leaf:
                if addr_mn(slot.addr) in dead:
                    continue
                try:
                    leaf = _read_leaf_raw(cluster, slot.addr,
                                          slot.size_class)
                except ReproError:
                    continue
                if leaf.status != STATUS_INVALID and leaf.checksum_ok:
                    out[leaf.key] = leaf.value
            else:
                walk(slot.addr, slot.size_class)

    walk(root_addr, NODE256)
    return out


def check_tree(cluster: Cluster, root_addr: int,
               report: Optional[FsckReport] = None
               ) -> Tuple[FsckReport, Dict[bytes, int]]:
    """Validate the tree rooted at ``root_addr``.

    Returns (report, {inner_prefix: node_addr}) - the prefix map feeds
    the INHT cross-check.  ``report.reachable`` additionally carries the
    node type per prefix (repair needs it) and ``report.reachable_nodes``
    every visited inner-node address (the orphan walk needs it).
    """
    report = report if report is not None else FsckReport()
    prefixes: Dict[bytes, int] = {}
    seen_keys: Set[bytes] = set()
    visited: Set[int] = set()
    dead = _dead_mns(cluster)

    def walk(addr: int, node_type: int, path) -> Optional[bytes]:
        """Recursive DFS; returns a witness key from the subtree."""
        if addr in visited:
            report.error(f"node {addr:#x} reachable twice (cycle/alias)")
            return None
        visited.add(addr)
        if addr_mn(addr) in dead:
            report.warn(f"node {addr:#x}: MN {addr_mn(addr)} crashed; "
                        "subtree skipped")
            return None
        try:
            view = _read_node_raw(cluster, addr, node_type)
        except ReproError as exc:
            report.error(f"node {addr:#x} undecodable: {exc}")
            return None
        header = view.header
        report.inner_nodes += 1
        report.max_depth = max(report.max_depth, header.depth)
        if header.node_type != node_type:
            report.error(f"node {addr:#x}: slot said type {node_type}, "
                         f"header says {header.node_type}")
            return None
        if header.status == STATUS_INVALID:
            report.error(f"node {addr:#x}: reachable but Invalid")
            return None
        if header.status not in (STATUS_IDLE, STATUS_LOCKED):
            report.error(f"node {addr:#x}: bad status {header.status}")
        if header.status == STATUS_LOCKED:
            report.find("orphan_lock", addr,
                        f"node {addr:#x} locked at rest", repairable=False)
        capacity = NODE_CAPACITY[header.node_type]
        if header.node_type != NODE256:
            if header.count > capacity:
                report.error(f"node {addr:#x}: cursor {header.count} "
                             f"exceeds capacity {capacity}")
            for i, word in enumerate(view.words):
                if i >= header.count and word & _OCC:
                    report.error(f"node {addr:#x}: occupied slot {i} at/"
                                 f"past append cursor {header.count}")
        slot_indexes = [i for i, w in enumerate(view.words) if w & _OCC]
        occupied = view.occupied_slots()
        partials = [s.partial for s in occupied]
        if len(partials) != len(set(partials)):
            report.error(f"node {addr:#x}: duplicate partial bytes "
                         f"{sorted(partials)}")
        witness: Optional[bytes] = None
        for index, slot in zip(slot_indexes, occupied):
            child_path = path + [(header.depth, slot.partial)]
            slot_addr = addr + 8 + index * 8
            if slot.is_leaf:
                if addr_mn(slot.addr) in dead:
                    report.warn(f"leaf {slot.addr:#x}: MN crashed; skipped")
                    continue
                leaf = _read_leaf_raw(cluster, slot.addr, slot.size_class)
                report.leaves += 1
                if leaf.status == STATUS_INVALID:
                    report.error(f"leaf {slot.addr:#x}: reachable but "
                                 "Invalid (delete did not clear slot)")
                    report.find("invalid_leaf", slot.addr,
                                f"reachable Invalid leaf under {addr:#x}",
                                repairable=True,
                                meta=(slot_addr, slot.pack()))
                    continue
                if leaf.status == STATUS_LOCKED:
                    report.find("orphan_lock", slot.addr,
                                f"leaf {slot.addr:#x} locked at rest",
                                repairable=False)
                if not leaf.checksum_ok:
                    if leaf.status == STATUS_LOCKED:
                        report.warn(f"leaf {slot.addr:#x}: torn under an "
                                    "in-flight lock")
                    else:
                        report.error(f"leaf {slot.addr:#x}: checksum "
                                     "mismatch at rest")
                    continue
                bad = False
                for depth, partial in child_path:
                    if len(leaf.key) <= depth or leaf.key[depth] != partial:
                        report.error(
                            f"leaf {slot.addr:#x} key {leaf.key!r} violates "
                            f"ancestor constraint (depth {depth}, "
                            f"partial {partial})")
                        bad = True
                        break
                if bad:
                    continue
                if leaf.key in seen_keys:
                    report.error(f"duplicate key {leaf.key!r}")
                seen_keys.add(leaf.key)
                if witness is None:
                    witness = leaf.key
            else:
                sub = walk(slot.addr, slot.size_class, child_path)
                if witness is None and sub is not None:
                    witness = sub
        # Prefix-hash check needs real bytes: recover from a witness leaf.
        if witness is not None:
            prefix = witness[:header.depth]
            if prefix_hash42(prefix) != header.prefix_hash:
                report.error(f"node {addr:#x}: prefix hash mismatch for "
                             f"recovered prefix {prefix!r}")
            else:
                prefixes[prefix] = addr
                report.reachable[prefix] = (addr, header.node_type)
        elif occupied:
            report.warn(f"node {addr:#x}: no live leaves below; prefix "
                        "unverifiable")
        return witness

    walk(root_addr, NODE256, [])
    report.reachable_nodes |= visited
    return report, prefixes


def _walk_tables_raw(cluster: Cluster, index, report: FsckReport) -> None:
    """Enumerate every occupied INHT entry straight from segment memory
    and flag orphans - entries whose target node is not reachable from
    the tree *and* not live (crashed half-installs, unretired garbage).
    Locked group headers are reported as orphan-lock findings."""
    dead = _dead_mns(cluster)
    reachable = report.reachable_nodes
    for mn, info in sorted(index.inht.tables.items()):
        if mn in dead:
            report.warn(f"INHT table on MN {mn}: MN crashed; skipped")
            continue
        memory = cluster.memories[mn]
        params = info.params
        dir_raw = memory.read(addr_offset(info.dir_addr),
                              params.directory_slots * 8)
        segments: Dict[int, int] = {}
        for idx in range(params.directory_slots):
            entry = DIR_ENTRY.unpack(
                u64_from_bytes(dir_raw[idx * 8: idx * 8 + 8]))
            if entry["occupied"]:
                segments.setdefault(entry["addr"], entry["local_depth"])
        for seg_addr in sorted(segments):
            seg_raw = memory.read(addr_offset(seg_addr), params.segment_size)
            for g in range(params.groups_per_segment):
                base = params.group_offset(g)
                header = u64_from_bytes(seg_raw[base:base + 8])
                if (header >> 8) & 1:
                    report.find(
                        "orphan_lock", seg_addr + base,
                        f"table group {seg_addr + base:#x} locked at rest",
                        repairable=False, meta=(seg_addr, header & 0xFF))
                for s in range(params.slots_per_group):
                    off = base + 8 + s * 8
                    word = u64_from_bytes(seg_raw[off:off + 8])
                    if not word & _OCC:
                        continue
                    report.inht_entries += 1
                    entry = HashEntry.unpack(word)
                    if entry.addr in reachable:
                        continue
                    slot_addr = seg_addr + off
                    detail = _classify_orphan(cluster, entry, dead)
                    if detail is None:
                        continue  # live-but-unvisited (e.g. dead-MN skip)
                    report.inht_orphans += 1
                    report.warn(f"INHT entry {slot_addr:#x} -> "
                                f"{entry.addr:#x}: {detail}")
                    report.find("inht_orphan", slot_addr,
                                f"entry -> {entry.addr:#x}: {detail}",
                                repairable=True, meta=(word,))


def _classify_orphan(cluster: Cluster, entry,
                     dead: Set[int]) -> Optional[str]:
    """Why an unreachable INHT entry is garbage, or None if unknowable."""
    mn = addr_mn(entry.addr)
    if mn in dead:
        return None
    memory = cluster.memories[mn]
    try:
        word = memory.read_u64(addr_offset(entry.addr))
        header = Header.unpack(word)
    except ReproError:
        return "target undecodable"
    if header.status == STATUS_INVALID:
        return "target node Invalid (retired)"
    if header.node_type not in NODE_TYPES:
        return "target not a node"
    return "target unreachable from the tree"


def check_sphinx(cluster: Cluster, index, report: Optional[FsckReport] = None
                 ) -> FsckReport:
    """Full check of a Sphinx index: tree + inner-node hash table."""
    report, prefixes = check_tree(cluster, index.root_addr, report)
    inht_client = index.client(0).inht
    executor = cluster.direct_executor()
    dead = _dead_mns(cluster)
    for prefix, node_addr in prefixes.items():
        if prefix == b"":
            continue  # the root has no hash-table entry (known statically)
        table_mn = inht_client._client_for(prefix).info.mn_id
        if table_mn in dead:
            report.warn(f"INHT check for {prefix!r} skipped: MN "
                        f"{table_mn} crashed")
            continue
        report.inht_checked += 1
        try:
            matches = executor.run(inht_client.lookup(prefix))
        except ReproError:
            # A bucket stuck behind an abandoned split lock: recovery's
            # job, not fsck's - report the lock, skip the cross-check.
            report.warn(f"INHT check for {prefix!r} skipped: bucket "
                        "unreadable (locked group?)")
            continue
        live = [entry for _slot, entry in matches
                if entry.addr == node_addr]
        stale = [entry for _slot, entry in matches
                 if entry.addr != node_addr]
        if not live:
            report.inht_missing += 1
            report.error(f"INHT: no entry for reachable prefix {prefix!r} "
                         f"-> node {node_addr:#x}")
            _addr, node_type = report.reachable[prefix]
            report.find("inht_missing", node_addr,
                        f"no INHT entry for prefix {prefix!r}",
                        repairable=True, meta=(prefix, node_type))
        report.inht_stale_tolerated += len(stale)
    _walk_tables_raw(cluster, index, report)
    return report


def repair_findings(cluster: Cluster, index,
                    report: FsckReport) -> Tuple[int, int]:
    """Apply every repairable finding in ``report``.

    Returns (repaired, failed).  Repairs go through a DirectExecutor
    with CAS discipline - a finding whose on-MN state moved since the
    check simply fails its CAS and is left for the next pass.
    """
    executor = cluster.direct_executor()
    inht_client = None
    if hasattr(index, "inht"):
        inht_client = index.client(0).inht
    repaired = failed = 0
    for finding in report.findings:
        if not finding.repairable:
            continue
        ok = False
        if finding.kind == "invalid_leaf":
            slot_addr, slot_word = finding.meta

            def clear_slot(addr: int = slot_addr,
                           word: int = slot_word
                           ) -> Iterator[CasOp]:
                swapped, _ = yield CasOp(addr, word, 0)
                return swapped

            ok = executor.run(clear_slot())
        elif finding.kind == "inht_orphan":
            (entry_word,) = finding.meta

            def clear_entry(addr: int = finding.addr,
                            word: int = entry_word
                            ) -> Iterator[CasOp]:
                swapped, _ = yield CasOp(addr, word, 0)
                return swapped

            ok = executor.run(clear_entry())
        elif finding.kind == "inht_missing" and inht_client is not None:
            prefix, node_type = finding.meta
            executor.run(inht_client.insert(prefix, finding.addr, node_type))
            ok = True
        if ok:
            repaired += 1
        else:
            failed += 1
    return repaired, failed


def check_index(cluster: Cluster, index, repair: bool = False) -> FsckReport:
    """Dispatch: Sphinx gets the INHT cross-check, baselines tree-only.

    With ``repair=True``, repairable findings are applied and the check
    re-run; the returned (post-repair) report carries ``repaired``.
    """
    def run() -> FsckReport:
        if hasattr(index, "inht"):
            return check_sphinx(cluster, index)
        report, _prefixes = check_tree(cluster, index.root_addr)
        return report

    report = run()
    if not repair or not any(f.repairable for f in report.findings):
        return report
    repaired, _failed = repair_findings(cluster, index, report)
    report = run()
    report.repaired = repaired
    return report


# -- CLI ---------------------------------------------------------------------

EXIT_CLEAN = 0
EXIT_REPAIRED = 1
EXIT_UNREPAIRABLE = 2


def _build_scenario(keys: int, seed: int,
                    crash_verb: int) -> Tuple[Any, Any, Any]:
    """A self-contained Sphinx workload; with ``crash_verb`` > 0 a
    ``crash_cn`` fault kills the churn client mid-run, leaving orphan
    locks and half-writes for fsck/recovery to find."""
    import random

    from ..art import encode_u64
    from ..core import SphinxConfig, SphinxIndex
    from ..dm import ClusterConfig
    from ..errors import ClientCrash, InjectedFault, RetryLimitExceeded
    from ..fault import FaultPlan, crash_cn

    cluster = Cluster(ClusterConfig(mn_capacity_bytes=64 << 20))
    index = SphinxIndex(cluster, SphinxConfig(filter_budget_bytes=1 << 14))
    client = index.client(0)
    loader = cluster.direct_executor()
    rng = random.Random(seed)
    key_bytes = [encode_u64(rng.getrandbits(64)) for _ in range(keys)]
    for i, key in enumerate(key_bytes):
        loader.run(client.insert(key, f"v{i}".encode()))
    manager = cluster.attach_recovery()
    if crash_verb > 0:
        cluster.attach_faults(FaultPlan(
            rules=(crash_cn(crash_verb, applied_prob=0.5),), seed=seed))
        churn = cluster.direct_executor()
        try:
            for _ in range(100_000):
                key = rng.choice(key_bytes)
                roll = rng.random()
                if roll < 0.5:
                    churn.run(client.insert(key, b"x" * rng.randrange(1, 64)))
                elif roll < 0.75:
                    churn.run(client.update(key, b"y" * rng.randrange(1, 64)))
                else:
                    churn.run(client.delete(key))
        except ClientCrash:
            pass
        except (InjectedFault, RetryLimitExceeded):
            pass
    return cluster, index, manager


def _exit_code(report: FsckReport, dry_run: bool, recovered: bool) -> int:
    if dry_run:
        if report.clean and not report.findings:
            return EXIT_CLEAN
        if report.findings and all(f.repairable for f in report.findings):
            return EXIT_REPAIRED
        return EXIT_UNREPAIRABLE
    if not report.clean or report.unrepairable:
        # Unrepairable findings (e.g. an orphaned lock, which only lease
        # recovery may clear) fail the check even when they are
        # warning-level: exit 2 tells the operator to run --recover.
        return EXIT_UNREPAIRABLE
    if report.repaired or recovered:
        return EXIT_REPAIRED
    return EXIT_CLEAN


def report_json(report: FsckReport, exit_code: int,
                recovery_summary: Optional[str] = None
                ) -> Dict[str, Any]:
    """Machine-readable twin of the text output; ``exit_code`` mirrors
    the process exit status (0 clean / 1 repaired / 2 unrepairable)."""
    return {
        "tool": "fsck",
        "version": 1,
        "exit_code": exit_code,
        "clean": report.clean,
        "summary": report.summary(),
        "inner_nodes": report.inner_nodes,
        "leaves": report.leaves,
        "max_depth": report.max_depth,
        "inht": {
            "checked": report.inht_checked,
            "missing": report.inht_missing,
            "stale_tolerated": report.inht_stale_tolerated,
            "entries": report.inht_entries,
            "orphans": report.inht_orphans,
        },
        "errors": list(report.errors),
        "warnings": list(report.warnings),
        "findings": [{"kind": f.kind, "addr": f.addr, "detail": f.detail,
                      "repairable": f.repairable}
                     for f in report.findings],
        "repaired": report.repaired,
        "recovery": recovery_summary,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fsck",
        description="Consistency-check (and optionally repair) a Sphinx "
                    "index in a self-contained scenario.")
    parser.add_argument("--keys", type=int, default=400,
                        help="keys to load (default 400)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload/fault seed")
    parser.add_argument("--crash-verb", type=int, default=0,
                        help="kill the churn client at this verb count "
                             "(0 = no crash)")
    parser.add_argument("--recover", action="store_true",
                        help="run lease-based recovery before checking")
    parser.add_argument("--repair", action="store_true",
                        help="apply repairable findings, then re-check")
    parser.add_argument("--dry-run", action="store_true",
                        help="report findings without writing anything")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default text)")
    parser.add_argument("--max-exit", type=int, metavar="CODE",
                        choices=(0, 1, 2),
                        help="tolerate fsck exit codes up to CODE by "
                             "exiting 0 for them (e.g. --max-exit 1 "
                             "accepts clean and repaired).  Unlike a "
                             "shell-side '|| test $? -le 1', a non-fsck "
                             "failure (import error, crash) still exits "
                             "nonzero.")
    args = parser.parse_args(argv)

    cluster, index, manager = _build_scenario(args.keys, args.seed,
                                              args.crash_verb)
    recovery_summary = None
    if args.recover:
        recovery = manager.recover(index=index)
        recovery_summary = recovery.summary()
        if args.format == "text":
            print(recovery_summary)
    repair = args.repair and not args.dry_run
    report = check_index(cluster, index, repair=repair)
    recovered = bool(args.recover and manager.last_report is not None
                     and manager.last_report.reclaimed)
    code = _exit_code(report, args.dry_run, recovered)
    # --max-exit folds tolerated codes to 0 at the process boundary only;
    # the JSON report keeps the true fsck verdict.
    status = 0 if args.max_exit is not None and code <= args.max_exit \
        else code
    if args.format == "json":
        import json
        print(json.dumps(report_json(report, code, recovery_summary),
                         indent=2, sort_keys=True))
        return status
    print(report.summary())
    for finding in report.findings:
        action = ("repairable" if finding.repairable else "unrepairable")
        print(f"  [{finding.kind}] {finding.addr:#x}: {finding.detail} "
              f"({action})")
    return status


if __name__ == "__main__":
    sys.exit(main())
