"""Baseline: SMART (Luo et al., OSDI'23) - ART on DM with node caching.

We reproduce the two design points the paper measures SMART by:

* **Node-256 preallocation.**  Every inner node is physically a Node-256
  (2056 B) regardless of its fanout.  Inner-node addresses are therefore
  stable for the node's whole lifetime (no type switches), which is what
  makes CN-side node caching coherent - at the cost of the 2.1-3.0x MN
  memory blow-up shown in Fig 6.
* **Node-based CN cache.**  Clients cache inner-node snapshots in a
  byte-budgeted LRU.  An operation walks the cached path as far as it can,
  re-reads the deepest cached node remotely (the validation read implied
  by SMART's reverse-check mechanism), and continues the traversal
  remotely from there.  Because addresses are stable, a stale cached slot
  can only be *missing* a recent child or pointing at a since-replaced
  leaf slot - both cases stop the local walk early and are corrected by
  the fresh read, never mislead it.

Scans use doorbell batching, as in SMART.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..art.layout import NODE256, STATUS_INVALID, NodeView
from ..core.remote_art import RETRY, OpContext, RemoteArtTree
from ..dm.cluster import Cluster
from ..errors import ReproError
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..util.hashing import prefix_hash42
from .cache import NodeCache


@dataclass(frozen=True)
class SmartConfig:
    cache_budget_bytes: int = 20 << 20
    """CN-side node-cache budget (paper: 20 MB, 200 MB for SMART+C)."""

    retry: RetryPolicy = DEFAULT_RETRY
    """The unified retry/backoff/timeout policy (see repro.fault.retry)."""


class SmartIndex:
    """Cluster-wide SMART state (root; nodes are all Node-256)."""

    def __init__(self, cluster: Cluster, config: SmartConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else SmartConfig()
        self.root_addr = RemoteArtTree.create_root(cluster)
        self._clients: Dict[int, SmartClient] = {}

    def client(self, cn_id: int) -> "SmartClient":
        if cn_id not in self._clients:
            self._clients[cn_id] = SmartClient(self, cn_id)
        return self._clients[cn_id]


class SmartClient(RemoteArtTree):
    """One compute node's SMART client (workers share the node cache)."""

    def __init__(self, index: SmartIndex, cn_id: int):
        super().__init__(index.cluster, index.root_addr,
                         retry=index.config.retry)
        self.index = index
        self.cn_id = cn_id
        self.cache = NodeCache(index.config.cache_budget_bytes)

    # -- policy: every inner node is a preallocated Node-256 -------------
    def node_type_for(self, child_count: int) -> int:
        return NODE256

    def grown_type(self, node_type: int) -> int:  # pragma: no cover
        raise ReproError("SMART nodes are Node-256 and never grow")

    # -- cache maintenance -------------------------------------------------
    def note_visited(self, addr: int, view: NodeView) -> None:
        self.cache.put(addr, view)

    def counters(self):
        """Tree metrics plus the node-cache counters, in the shared
        :class:`repro.obs.Counters` shape."""
        counters = super().counters()
        counters.merge({
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_evictions": self.cache.evictions,
        })
        return counters

    def invalidate_hint(self, addr: int) -> None:
        self.cache.drop(addr)

    # -- locate: local cache walk, optimistically trusted ------------------
    def locate_start(self, ctx: OpContext):
        """Walk the CN node cache as deep as it goes and hand the engine
        the deepest cached node *without* a network round trip.

        The engine treats the returned view as untrusted: positive
        results and CAS-guarded mutations proceed directly (SMART's
        coherence argument - preallocated Node-256s never move, so cached
        pointers stay valid and staleness only manifests as a missing
        recent child or a replaced leaf slot, both caught by the
        reverse checks / CAS failures); negative verdicts trigger a
        refresh first.  On retries (``ctx.attempt > 0``) the stop node is
        re-read remotely, healing whatever staleness caused the retry.
        """
        key = ctx.key
        stop_addr, stop_view = self.root_addr, self.cache.get(self.root_addr)
        if stop_view is not None:
            cur_addr, cur = self.root_addr, stop_view
            while True:
                depth = cur.header.depth
                if depth >= len(key):
                    break
                slot = cur.find_child(key[depth])
                if slot is None or slot.is_leaf:
                    break
                child = self.cache.get(slot.addr)
                if child is None:
                    break
                cheader = child.header
                if cheader.status == STATUS_INVALID:
                    self.cache.drop(slot.addr)
                    break
                if (cheader.depth > ctx.limit
                        or cheader.depth >= len(key)
                        or cheader.prefix_hash
                        != prefix_hash42(key[:cheader.depth])):
                    break
                cur_addr, cur = slot.addr, child
            stop_addr, stop_view = cur_addr, cur
        if stop_view is not None and ctx.attempt == 0:
            return stop_addr, stop_view, False  # trust the cache for now
        # Cold cache or a retry: validate the stop node remotely.
        fresh = yield from self._read_node(stop_addr, NODE256)
        if fresh is None or fresh.header.status == STATUS_INVALID:
            self.cache.drop(stop_addr)
            if stop_addr == self.root_addr:
                return RETRY
            fresh = yield from self._read_node(self.root_addr, NODE256)
            if fresh is None:
                return RETRY
            return self.root_addr, fresh, True
        return stop_addr, fresh, True

    # -- introspection -----------------------------------------------------
    def cn_cache_bytes(self) -> int:
        return self.cache.bytes

    def cache_stats(self) -> dict:
        return self.cache.stats()
