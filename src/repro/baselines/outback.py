"""Outback-style baseline: a CN-resident MPH directory, 1-RTT point reads.

Outback (PAPERS.md) dissolves the index traversal entirely: compute
nodes hold a minimal-perfect-hash directory mapping every loaded key
straight to its memory-node leaf address, so a point read is a *single*
RDMA READ - the theoretical floor Sphinx's filter cache approaches from
the other side.  The price is staleness: the MPH is built over a static
key set, so inserts, deletes and out-of-place moves punch holes in it
and the directory must absorb them until a seeded rebuild folds them in.

The model here:

* The directory (:class:`repro.core.leaf_locator.MinimalPerfectHash`)
  lives at the index and is shared by every client - modelling
  replicated per-CN directories with instantaneous update broadcast
  (real Outback piggybacks directory deltas on RPC responses; the
  simulation collapses that propagation delay to zero, which only
  *flatters* the baseline's staleness story and is called out in
  DESIGN.md).  Storage is compact int arrays with fingerprint bits, so
  a key outside the directory false-routes with probability
  ``2**-fp_bits`` and is caught by the leaf's own key check - one
  wasted round trip, bounded by the fingerprint width.

* New keys overflow into a CN-local ``delta`` dict; deletes tombstone
  their MPH slot; out-of-place value growth patches the slot's packed
  leaf ref in place (the "incremental" part: a moved leaf invalidates
  exactly its own directory entry, nothing else).  Once the overflow
  exceeds ``rebuild_min``/``rebuild_frac`` the whole directory is
  rebuilt deterministically over the live key set with the same base
  seed - same keys, same seed, same tables, bit for bit.

* Leaves are the shared 64-B-aligned checksummed blobs of
  :mod:`repro.core.leaf`, with the same CAS lock word protocol, so MN
  memory accounting and the value path match the ART-family systems.

The index keeps the construction key list CN-side purely for rebuilds
and scans (a real deployment would stream the key set back from MN leaf
pages); the *serving* path never consults it - point lookups route
through the MPH + fingerprint exactly as the compact directory would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..art.layout import (
    STATUS_IDLE,
    STATUS_INVALID,
    decode_leaf,
    encode_leaf,
    leaf_units_for,
)
from ..core import leaf as leaf_ops
from ..core.leaf_locator import (
    MinimalPerfectHash,
    pack_leaf_ref,
    unpack_leaf_ref,
)
from ..dm.cluster import Cluster
from ..dm.rdma import Batch, LocalCompute, ReadOp, WriteOp
from ..errors import InjectedFault, RetryLimitExceeded
from ..fault.retry import DEFAULT_RETRY, RetryPolicy

LEAF_ALIGN = 64

_RETRY = object()


@dataclass(frozen=True)
class OutbackConfig:
    """Tunables of the Outback-style directory index."""

    dir_seed: int = 0x0B1A5
    """Base seed of the MPH construction (rebuilds reuse it, so the
    directory is a pure function of the live key set)."""

    dir_fp_bits: int = 16
    """Fingerprint bits per directory slot: an absent key false-routes
    (costing one wasted READ) with probability ``2**-dir_fp_bits``."""

    rebuild_min: int = 256
    rebuild_frac: int = 4
    """A rebuild triggers once delta + tombstones exceed
    ``max(rebuild_min, directory_size // rebuild_frac)``."""

    rebuild_ns_per_key: int = 40
    """CN CPU charged per live key when a rebuild runs (hash + placement
    are local compute; no verbs are issued)."""

    retry: RetryPolicy = DEFAULT_RETRY
    """The unified retry/backoff/timeout policy (see repro.fault.retry)."""


class OutbackIndex:
    """Cluster-wide Outback index: the shared directory + MN leaves.

    Deliberately exposes neither ``root_addr`` nor ``inht`` - there is
    no tree to walk; :func:`repro.tools.fsck.check_index` has nothing to
    check here and its dispatch must not mistake this for an ART index.
    """

    def __init__(self, cluster: Cluster, config: OutbackConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else OutbackConfig()
        self.directory: Optional[MinimalPerfectHash] = None
        self._mph_keys: List[bytes] = []
        """Construction key set of the current directory (rebuild/scan
        bookkeeping only - never consulted by point lookups)."""
        self._mph_members: frozenset = frozenset()
        """Membership view of ``_mph_keys``: slot patches must be gated
        on true membership, because a fingerprint collision would let a
        *new* key's publish clobber the colliding victim's slot."""
        self.delta: Dict[bytes, Tuple[int, int]] = {}
        """Overflow directory: keys committed after the last rebuild."""
        self.tombstones: int = 0
        """Directory slots zeroed by deletes since the last rebuild."""
        self.rebuilds = 0
        self.version = 0
        """Bumped per rebuild; clients snapshot it to detect that a
        rebuild folded their pending delta entries in."""
        self._clients: Dict[int, OutbackClient] = {}

    def client(self, cn_id: int) -> "OutbackClient":
        if cn_id not in self._clients:
            self._clients[cn_id] = OutbackClient(self, cn_id)
        return self._clients[cn_id]

    # -- directory operations (CN-local, zero verbs) -----------------------
    def dir_lookup(self, key: bytes) -> Optional[Tuple[int, int]]:
        """Resolve ``key`` to a hinted ``(leaf addr, units)``.

        The delta is authoritative for post-rebuild keys; MPH routing
        for unknown keys may false-route on a fingerprint collision -
        callers must verify the leaf's stored key.
        """
        hit = self.delta.get(key)
        if hit is not None:
            return hit
        if self.directory is None:
            return None
        slot = self.directory.slot_of(key)
        if slot is None:
            return None
        word = self.directory.values[slot]
        if word == 0:
            return None  # tombstoned
        return unpack_leaf_ref(word)

    def dir_publish(self, key: bytes, addr: int, units: int) -> None:
        """Commit ``key``'s leaf ref (insert or out-of-place move).

        Callers only publish after verifying the key's leaf (or having
        created it), so an MPH slot match here is genuine, never a
        fingerprint collision.
        """
        if key in self.delta:
            self.delta[key] = (addr, units)
            return
        if self.directory is not None and key in self._mph_members:
            slot = self.directory.slot_of(key)
            if slot is not None and self.directory.values[slot] != 0:
                self.directory.values[slot] = pack_leaf_ref(addr, units)
                return
        self.delta[key] = (addr, units)

    def dir_remove(self, key: bytes) -> None:
        """Drop ``key`` from the directory (delete path)."""
        if self.delta.pop(key, None) is not None:
            return
        if self.directory is None or key not in self._mph_members:
            return
        slot = self.directory.slot_of(key)
        if slot is not None and self.directory.values[slot] != 0:
            self.directory.values[slot] = 0
            self.tombstones += 1

    def live_pairs(self) -> List[Tuple[bytes, int, int]]:
        """Every committed ``(key, addr, units)``, sorted by key
        (rebuild input and scan index; deterministic by construction)."""
        pairs: Dict[bytes, Tuple[int, int]] = {}
        if self.directory is not None:
            for key in self._mph_keys:
                if key in self.delta:
                    continue
                slot = self.directory.slot_of(key)
                word = self.directory.values[slot] if slot is not None else 0
                if word:
                    pairs[key] = unpack_leaf_ref(word)
        pairs.update(self.delta)
        return [(key, addr, units)
                for key, (addr, units) in sorted(pairs.items())]

    def overflow(self) -> int:
        return len(self.delta) + self.tombstones

    def rebuild_due(self) -> bool:
        threshold = max(self.config.rebuild_min,
                        len(self._mph_keys) // self.config.rebuild_frac)
        return self.overflow() > threshold

    def rebuild(self) -> int:
        """Fold delta + tombstones into a fresh seeded MPH; returns the
        number of live keys hashed (the caller charges CN compute)."""
        pairs = self.live_pairs()
        keys = [key for key, _a, _u in pairs]
        if keys:
            mph = MinimalPerfectHash.build(keys, seed=self.config.dir_seed,
                                           fp_bits=self.config.dir_fp_bits)
            for key, addr, units in pairs:
                mph.values[mph.slot_of(key)] = pack_leaf_ref(addr, units)
            self.directory = mph
        else:
            self.directory = None
        self._mph_keys = keys
        self._mph_members = frozenset(keys)
        self.delta = {}
        self.tombstones = 0
        self.rebuilds += 1
        self.version += 1
        return len(keys)

    def dir_bytes(self) -> int:
        """CN-side footprint of the compact directory + delta overflow."""
        total = 0
        if self.directory is not None:
            total += self.directory.size_bytes()
        # Delta entries cost roughly one dict slot: key + packed ref.
        for key in self.delta:
            total += len(key) + 16
        return total


class OutbackClient:
    """One compute node's Outback client (op generators)."""

    def __init__(self, index: OutbackIndex, cn_id: int):
        self.index = index
        self.cn_id = cn_id
        self.config = index.config
        self.cluster = index.cluster
        import random as _random
        self._rng = _random.Random(0x0B ^ cn_id)
        self.metrics = {"searches": 0, "inserts": 0, "updates": 0,
                        "deletes": 0, "scans": 0, "restarts": 0,
                        "dir_hits": 0, "dir_misses": 0, "false_routes": 0,
                        "torn_rereads": 0, "lock_failures": 0}

    def counters(self):
        """Snapshot into the shared :class:`repro.obs.Counters` shape."""
        from ..obs.counters import Counters
        counters = Counters(self.metrics)
        counters.merge({
            "dir_rebuilds": self.index.rebuilds,
            "dir_delta_keys": len(self.index.delta),
            "dir_tombstones": self.index.tombstones,
        })
        return counters

    # -- small helpers -----------------------------------------------------
    def _backoff(self, attempt: int) -> int:
        return self.config.retry.backoff_delay(self._rng, attempt)

    def _alloc_leaf(self, key: bytes, value: bytes) -> Tuple[int, int]:
        units = leaf_units_for(len(key), len(value))
        addr = self.cluster.alloc_for_leaf(key, units * LEAF_ALIGN)
        return addr, units

    def _free_leaf(self, addr: int, units: int) -> None:
        self.cluster.free(addr, units * LEAF_ALIGN, leaf_ops.LEAF_CATEGORY)

    def _maybe_rebuild(self):
        """Run a deterministic directory rebuild when the overflow is
        over budget (CN-local compute; zero verbs)."""
        if not self.index.rebuild_due():
            return
        hashed = self.index.rebuild()
        if self.config.rebuild_ns_per_key:
            yield LocalCompute(self.config.rebuild_ns_per_key * hashed)

    # -- search ------------------------------------------------------------
    def search(self, key: bytes):
        """Op generator: value for ``key`` or None.

        Directory hit: exactly one READ round trip (the tentpole).
        Directory miss: zero round trips - the replicated directory is
        authoritative for absence.  A fingerprint collision routes to
        some other key's leaf; the stored-key check converts it into a
        clean None at the cost of that one wasted READ.
        """
        self.metrics["searches"] += 1
        for attempt in range(self.config.retry.max_retries):
            hinted = self.index.dir_lookup(key)
            if hinted is None:
                self.metrics["dir_misses"] += 1
                return None
            self.metrics["dir_hits"] += 1
            addr, units = hinted
            try:
                data = yield ReadOp(addr, units * LEAF_ALIGN)
            except InjectedFault:
                self.metrics["restarts"] += 1
                yield LocalCompute(self._backoff(attempt))
                continue
            leaf = decode_leaf(data)
            if leaf.checksum_ok:
                if leaf.status == STATUS_INVALID:
                    return None  # raced a delete: linearize after it
                if leaf.key != key:
                    self.metrics["false_routes"] += 1
                    return None  # fingerprint collision, provably absent
                return leaf.value
            # Torn read (raced an in-place writer): re-read, bounded by
            # the one retry policy.
            self.metrics["torn_rereads"] += 1
            yield LocalCompute(self.config.retry.torn_read_delay(attempt))
        raise RetryLimitExceeded(f"outback search({key!r})", addr=0)

    # -- insert / update -----------------------------------------------------
    def insert(self, key: bytes, value: bytes):
        """Op generator: upsert; True if the key was new."""
        self.metrics["inserts"] += 1
        result = yield from self._upsert(key, value)
        return result

    def update(self, key: bytes, value: bytes):
        """Op generator: overwrite; False when absent."""
        self.metrics["updates"] += 1
        if self.index.dir_lookup(key) is None:
            return False
        result = yield from self._upsert(key, value)
        return True if result is not None else False

    def _upsert(self, key: bytes, value: bytes):
        for attempt in range(self.config.retry.max_retries):
            hinted = self.index.dir_lookup(key)
            try:
                if hinted is None:
                    outcome = yield from self._insert_new(key, value)
                else:
                    outcome = yield from self._overwrite(key, value, hinted)
            except InjectedFault:
                outcome = _RETRY
            if outcome is not _RETRY:
                return outcome
            self.metrics["restarts"] += 1
            yield LocalCompute(self._backoff(attempt))
        raise RetryLimitExceeded(f"outback upsert({key!r})", addr=0)

    def _insert_new(self, key: bytes, value: bytes):
        addr, units = self._alloc_leaf(key, value)
        yield WriteOp(addr, encode_leaf(key, value, units=units))
        # The publish decides the race: if another client committed the
        # key while our WRITE was in flight, ours is the loser - drop
        # the orphan leaf and retry as an overwrite.
        if self.index.dir_lookup(key) is not None:
            self._free_leaf(addr, units)
            return _RETRY
        self.index.dir_publish(key, addr, units)
        yield from self._maybe_rebuild()
        return True

    def _overwrite(self, key: bytes, value: bytes,
                   hinted: Tuple[int, int]):
        addr, units = hinted
        leaf = yield from leaf_ops.read_leaf(addr, units,
                                             retry=self.config.retry)
        if leaf.status == STATUS_INVALID:
            return _RETRY  # raced a delete; re-resolve via the directory
        if leaf.key != key:
            # Fingerprint collision on a never-committed key: this is
            # somebody else's leaf, so the key is genuinely absent.
            self.metrics["false_routes"] += 1
            new_addr, new_units = self._alloc_leaf(key, value)
            yield WriteOp(new_addr, encode_leaf(key, value, units=new_units))
            if self.index.dir_lookup(key) != hinted:
                self._free_leaf(new_addr, new_units)
                return _RETRY
            self.index.dir_publish(key, new_addr, new_units)
            yield from self._maybe_rebuild()
            return True
        if leaf.status != STATUS_IDLE:
            return _RETRY  # locked by a concurrent writer
        if leaf_units_for(len(key), len(value)) <= leaf.units:
            ok = yield from leaf_ops.in_place_update(addr, leaf, value)
            if not ok:
                self.metrics["lock_failures"] += 1
                return _RETRY
            return False
        # Out-of-place growth: lock the old leaf, publish the new one,
        # patch the directory slot (the "incremental invalidation"),
        # then invalidate + reclaim the old leaf.
        from ..art.layout import STATUS_LOCKED, leaf_status_word
        from ..dm.rdma import CasOp
        idle = leaf_status_word(STATUS_IDLE, leaf.units, len(leaf.key),
                                len(leaf.value))
        locked = leaf_status_word(STATUS_LOCKED, leaf.units, len(leaf.key),
                                  len(leaf.value))
        swapped, _old = yield CasOp(addr, idle, locked, lease=("leaf",))
        if not swapped:
            self.metrics["lock_failures"] += 1
            return _RETRY
        new_addr, new_units = self._alloc_leaf(key, value)
        invalid = leaf_status_word(STATUS_INVALID, leaf.units,
                                   len(leaf.key), len(leaf.value))
        yield Batch([
            WriteOp(new_addr, encode_leaf(key, value, units=new_units)),
            WriteOp(addr, invalid.to_bytes(8, "little"), lease=("release",)),
        ])
        self.index.dir_publish(key, new_addr, new_units)
        self._free_leaf(addr, leaf.units)
        return False

    # -- delete --------------------------------------------------------------
    def delete(self, key: bytes):
        """Op generator: remove ``key``; False if absent."""
        self.metrics["deletes"] += 1
        for attempt in range(self.config.retry.max_retries):
            hinted = self.index.dir_lookup(key)
            if hinted is None:
                return False
            addr, units = hinted
            try:
                leaf = yield from leaf_ops.read_leaf(addr, units,
                                                     retry=self.config.retry)
                if leaf.status == STATUS_INVALID:
                    return False  # raced another delete
                if leaf.key != key:
                    self.metrics["false_routes"] += 1
                    return False  # collision routing: genuinely absent
                if leaf.status != STATUS_IDLE:
                    ok = False  # locked by a writer: back off below
                else:
                    ok = yield from leaf_ops.invalidate_leaf(addr, leaf)
            except InjectedFault:
                self.metrics["restarts"] += 1
                yield LocalCompute(self._backoff(attempt))
                continue
            if not ok:
                self.metrics["lock_failures"] += 1
                yield LocalCompute(self._backoff(attempt))
                continue
            self.index.dir_remove(key)
            self._free_leaf(addr, leaf.units)
            yield from self._maybe_rebuild()
            return True
        raise RetryLimitExceeded(f"outback delete({key!r})", addr=0)

    # -- scan ----------------------------------------------------------------
    def scan_count(self, start_key: bytes, count: int):
        """First ``count`` pairs with key >= start_key.

        The MPH cannot answer range queries; the directory-assisted scan
        walks the replicated key list and doorbell-batches the leaf
        reads (real Outback delegates scans to an MN-side structure)."""
        self.metrics["scans"] += 1
        for attempt in range(self.config.retry.max_retries):
            try:
                result = yield from self._scan_once(start_key, count)
            except InjectedFault:
                self.metrics["restarts"] += 1
                yield LocalCompute(self._backoff(attempt))
                continue
            return result
        raise RetryLimitExceeded(f"outback scan({start_key!r})", addr=0)

    def _scan_once(self, start_key: bytes, count: int):
        targets = [(key, addr, units)
                   for key, addr, units in self.index.live_pairs()
                   if key >= start_key][:count + 8]
        results: List[Tuple[bytes, bytes]] = []
        while targets and len(results) < count:
            chunk, targets = targets[:count], targets[count:]
            blobs = yield Batch([ReadOp(addr, units * LEAF_ALIGN)
                                 for _key, addr, units in chunk])
            for (key, addr, units), blob in zip(chunk, blobs):
                leaf = decode_leaf(blob)
                if not leaf.checksum_ok:
                    leaf = yield from leaf_ops.read_leaf(
                        addr, units, retry=self.config.retry)
                if (leaf.checksum_ok and leaf.status != STATUS_INVALID
                        and leaf.key == key):
                    results.append((leaf.key, leaf.value))
        return results[:count]
