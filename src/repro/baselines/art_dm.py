"""Baseline: the original ART ported to disaggregated memory.

As in the paper's evaluation, this port uses one-sided RDMA verbs for all
index and data accesses but keeps ART's algorithm untouched: every
operation starts at the root and traverses the tree one node per round
trip, and scans read leaves sequentially (no doorbell batching) - the two
properties responsible for its poor DM performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..dm.cluster import Cluster
from ..core.remote_art import RemoteArtTree
from ..fault.retry import DEFAULT_RETRY, RetryPolicy


@dataclass(frozen=True)
class ArtDmConfig:
    retry: RetryPolicy = DEFAULT_RETRY
    """The unified retry/backoff/timeout policy (see repro.fault.retry)."""


class ArtDmIndex:
    """Cluster-wide state of the ART-on-DM baseline (just the tree)."""

    def __init__(self, cluster: Cluster, config: ArtDmConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else ArtDmConfig()
        self.root_addr = RemoteArtTree.create_root(cluster)
        self._clients: Dict[int, ArtDmClient] = {}

    def client(self, cn_id: int) -> "ArtDmClient":
        if cn_id not in self._clients:
            self._clients[cn_id] = ArtDmClient(self, cn_id)
        return self._clients[cn_id]


class ArtDmClient(RemoteArtTree):
    """A compute-node client: the engine defaults *are* plain ART-on-DM."""

    def __init__(self, index: ArtDmIndex, cn_id: int):
        super().__init__(index.cluster, index.root_addr,
                         retry=index.config.retry)
        self.index = index
        self.cn_id = cn_id
        self.scan_batched = False  # no doorbell batching in the port

    def cn_cache_bytes(self) -> int:
        return 0  # the port keeps no CN-side cache
