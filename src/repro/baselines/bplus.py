"""Extension baseline: a Sherman-style B+ tree on disaggregated memory.

The paper's introduction motivates ART-based indexes by contrast with
fixed-size-key B+ trees like Sherman (SIGMOD'22): a B+ tree must pad every
key to the maximum length, so variable-length keys (the email dataset)
inflate both node fan-in traffic and MN memory.  This module implements a
one-sided B+ tree faithful to that trade-off so the claim can be measured
(see ``benchmarks/test_extra_bplus.py``):

* fixed-width keys (configurable; email keys are padded to 32 B);
* internal and leaf nodes are flat arrays read in one RDMA READ;
* search descends level by level (one round trip per level) and reads the
  value blob last;
* writers use top-down *preemptive splitting* with header lock coupling:
  while descending, any full child is split before entering it, so splits
  never propagate upward and at most two node locks are held at a time;
* readers are lock-free and validate with the header version, retrying
  around in-flight writers.

Values live in the same 64-byte-aligned checksummed blobs as the ART
systems (reusing :mod:`repro.core.leaf`), which keeps the value path and
the memory accounting comparable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..art.layout import STATUS_IDLE, STATUS_INVALID
from ..core import leaf as leaf_ops
from ..dm.cluster import Cluster
from ..dm.memory import addr_mn, addr_offset
from ..dm.rdma import Batch, CasOp, LocalCompute, ReadOp, WriteOp
from ..errors import (ConfigError, InjectedFault, KeyCodecError,
                      RetryLimitExceeded)
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..util.bits import u64_to_bytes

BPLUS_CATEGORY = "bplus_node"

# Node header (8 bytes): status(2) | is_leaf(1) | count(10) | version(51)
_STATUS_MASK = 0x3
_LEAF_BIT = 1 << 2
_COUNT_SHIFT, _COUNT_MASK = 3, (1 << 10) - 1
_VERSION_SHIFT = 13


def _pack_header(status: int, is_leaf: bool, count: int, version: int) -> int:
    return (status | (_LEAF_BIT if is_leaf else 0)
            | (count << _COUNT_SHIFT)
            | ((version & ((1 << 51) - 1)) << _VERSION_SHIFT))


@dataclass(frozen=True)
class _Header:
    status: int
    is_leaf: bool
    count: int
    version: int

    @staticmethod
    def unpack(word: int) -> "_Header":
        return _Header(word & _STATUS_MASK, bool(word & _LEAF_BIT),
                       (word >> _COUNT_SHIFT) & _COUNT_MASK,
                       word >> _VERSION_SHIFT)

    def pack(self) -> int:
        return _pack_header(self.status, self.is_leaf, self.count,
                            self.version)


@dataclass(frozen=True)
class BplusConfig:
    """Geometry and limits of the remote B+ tree."""

    key_width: int = 8
    """Every key is padded to exactly this many bytes (the B+ tree's
    fundamental limitation for variable-length keys)."""

    order: int = 32
    """Maximum entries per node (fan-out)."""

    retry: RetryPolicy = DEFAULT_RETRY
    """The unified retry/backoff/timeout policy (see repro.fault.retry)."""

    @property
    def entry_size(self) -> int:
        return self.key_width + 8  # key + child/value address

    @property
    def node_size(self) -> int:
        # +1 slot: the B-link (high key, right sibling) entry that lets
        # lock-free readers recover from concurrent splits.
        return 8 + (self.order + 1) * self.entry_size

    @property
    def split_point(self) -> int:
        return self.order // 2


class _NodeView:
    """Decoded B+ node: sorted (key, addr) entries + B-link sibling."""

    __slots__ = ("header", "keys", "addrs", "link_key", "link_addr")

    def __init__(self, header: _Header, keys: List[bytes],
                 addrs: List[int], link_key: bytes = b"",
                 link_addr: int = 0):
        self.header = header
        self.keys = keys
        self.addrs = addrs
        self.link_key = link_key
        self.link_addr = link_addr

    def find_child_index(self, key: bytes) -> int:
        """Index of the child subtree for ``key`` (internal nodes):
        the last entry with separator <= key, else 0."""
        index = 0
        for i, sep in enumerate(self.keys):
            if sep <= key:
                index = i
            else:
                break
        return index

    def find_key_index(self, key: bytes) -> Optional[int]:
        for i, stored in enumerate(self.keys):
            if stored == key:
                return i
        return None


def _decode_node(config: BplusConfig, data: bytes) -> _NodeView:
    header = _Header.unpack(struct.unpack_from("<Q", data, 0)[0])
    keys: List[bytes] = []
    addrs: List[int] = []
    offset = 8
    for _ in range(header.count):
        keys.append(data[offset:offset + config.key_width])
        addrs.append(struct.unpack_from("<Q", data,
                                        offset + config.key_width)[0])
        offset += config.entry_size
    link_offset = 8 + config.order * config.entry_size
    link_key = data[link_offset:link_offset + config.key_width]
    link_addr = struct.unpack_from("<Q", data,
                                   link_offset + config.key_width)[0]
    return _NodeView(header, keys, addrs, link_key, link_addr)


def _encode_node(config: BplusConfig, status: int, is_leaf: bool,
                 version: int, entries: List[Tuple[bytes, int]],
                 link: Optional[Tuple[bytes, int]] = None) -> bytes:
    if len(entries) > config.order:
        raise ConfigError("too many entries for node order")
    out = bytearray(u64_to_bytes(_pack_header(status, is_leaf,
                                              len(entries), version)))
    for key, addr in entries:
        if len(key) != config.key_width:
            raise KeyCodecError("entry key width mismatch")
        out += key + struct.pack("<Q", addr)
    out += bytes(8 + config.order * config.entry_size - len(out))
    if link is not None:
        out += link[0] + struct.pack("<Q", link[1])
    out += bytes(config.node_size - len(out))
    return bytes(out)


class BplusIndex:
    """Cluster-wide B+ tree: a root pointer cell plus nodes on MNs."""

    def __init__(self, cluster: Cluster, config: BplusConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else BplusConfig()
        # The root pointer lives in a fixed 8-byte cell so that root
        # splits can swing it with a single CAS.
        self.root_ptr_addr = cluster.alloc(0, 8, BPLUS_CATEGORY)
        root_addr = self._alloc_node()
        self._write_node_direct(root_addr, STATUS_IDLE, True, 0, [])
        cluster.memories[0].write_u64(  # lint: disable=L001
            addr_offset(self.root_ptr_addr), root_addr)
        self._clients: Dict[int, BplusClient] = {}

    # -- control-plane helpers -------------------------------------------
    def _alloc_node(self) -> int:
        # Spread nodes round-robin over MNs.
        self._next_mn = (getattr(self, "_next_mn", -1) + 1) \
            % len(self.cluster.memories)
        return self.cluster.alloc(self._next_mn, self.config.node_size,
                                  BPLUS_CATEGORY)

    def _write_node_direct(self, addr: int, status: int, is_leaf: bool,
                           version: int,
                           entries: List[Tuple[bytes, int]]) -> None:
        image = _encode_node(self.config, status, is_leaf, version, entries)
        self.cluster.memories[addr_mn(addr)].write(  # lint: disable=L001
            addr_offset(addr), image)

    def client(self, cn_id: int) -> "BplusClient":
        if cn_id not in self._clients:
            self._clients[cn_id] = BplusClient(self, cn_id)
        return self._clients[cn_id]

    def pad_key(self, key: bytes) -> bytes:
        """Pad a variable-length key to the fixed width (the B+ tree
        tax); rejects keys that do not fit."""
        if len(key) > self.config.key_width:
            raise KeyCodecError(
                f"key of {len(key)} bytes exceeds the B+ tree's fixed "
                f"width {self.config.key_width}")
        return key + bytes(self.config.key_width - len(key))


class BplusClient:
    """One compute node's B+ tree client (op generators)."""

    def __init__(self, index: BplusIndex, cn_id: int):
        self.index = index
        self.cn_id = cn_id
        self.config = index.config
        self.cluster = index.cluster
        import random as _random
        self._rng = _random.Random(0xB9 ^ cn_id)
        self.metrics = {"searches": 0, "inserts": 0, "updates": 0,
                        "splits": 0, "restarts": 0}

    def counters(self):
        """Snapshot into the shared :class:`repro.obs.Counters` shape."""
        from ..obs.counters import Counters
        return Counters(self.metrics)

    # -- small helpers -----------------------------------------------------
    def _backoff(self, attempt: int) -> int:
        return self.config.retry.backoff_delay(self._rng, attempt)

    def _read_node(self, addr: int):
        data = yield ReadOp(addr, self.config.node_size)
        return _decode_node(self.config, data)

    def _read_root(self):
        root_addr = yield ReadOp(self.index.root_ptr_addr, 8)
        addr = struct.unpack("<Q", root_addr)[0]
        view = yield from self._read_node(addr)
        return addr, view

    def _lock(self, addr: int, header: _Header):
        idle = _Header(STATUS_IDLE, header.is_leaf, header.count,
                       header.version)
        locked = _Header(1, header.is_leaf, header.count, header.version)
        swapped, _ = yield CasOp(addr, idle.pack(), locked.pack(),
                                 lease=("node",))
        return swapped

    def _write_and_unlock(self, addr: int, is_leaf: bool, version: int,
                          entries: List[Tuple[bytes, int]],
                          link: Optional[Tuple[bytes, int]] = None):
        image = _encode_node(self.config, STATUS_IDLE, is_leaf,
                             version + 1, entries, link=link)
        yield WriteOp(addr, image, lease=("release",))

    # -- search -------------------------------------------------------------
    def search(self, key: bytes):
        """Op generator: value for ``key`` or None."""
        self.metrics["searches"] += 1
        key = self.index.pad_key(key)
        for attempt in range(self.config.retry.max_retries):
            try:
                result = yield from self._search_once(key)
            except InjectedFault:
                result = _RETRY
            if result is not _RETRY:
                return result
            self.metrics["restarts"] += 1
            yield LocalCompute(self._backoff(attempt))
        raise RetryLimitExceeded(f"bplus search({key!r})",
                                 addr=self.index.root_ptr_addr)

    def _search_once(self, key: bytes):
        _addr, view = yield from self._read_root()
        # Descent + B-link lateral-hop cap (tree geometry), not a retry
        # budget; genuine retries wrap this in the policy-bound caller.
        for _hop in range(512):  # lint: disable=L006
            if view.header.status == STATUS_INVALID:
                return _RETRY
            # B-link lateral move: a concurrent split may have shifted the
            # key range into the right sibling after we read the parent.
            if view.link_addr and view.link_key and key >= view.link_key:
                view = yield from self._read_node(view.link_addr)
                continue
            if view.header.is_leaf:
                index = view.find_key_index(key)
                if index is None:
                    return None
                leaf = yield from leaf_ops.read_leaf(view.addrs[index], 2)
                if leaf.status == STATUS_INVALID:
                    return _RETRY
                if leaf.key.ljust(self.config.key_width, b"\0") != key:
                    return _RETRY  # raced a value-blob replacement
                return leaf.value
            child = view.addrs[view.find_child_index(key)] \
                if view.keys else 0
            if child == 0:
                return None
            view = yield from self._read_node(child)
        return _RETRY

    # -- insert / update ------------------------------------------------------
    def insert(self, key: bytes, value: bytes):
        """Op generator: upsert; True if the key was new."""
        self.metrics["inserts"] += 1
        if 16 + self.config.key_width + len(value) > 128:
            raise ConfigError(
                "bplus value blobs are fixed at 128 B: value too large")
        key = self.index.pad_key(key)
        for attempt in range(self.config.retry.max_retries):
            try:
                result = yield from self._insert_once(key, value)
            except InjectedFault:
                result = _RETRY
            if result is not _RETRY:
                return result
            self.metrics["restarts"] += 1
            yield LocalCompute(self._backoff(attempt))
        raise RetryLimitExceeded(f"bplus insert({key!r})",
                                 addr=self.index.root_ptr_addr)

    def update(self, key: bytes, value: bytes):
        """Op generator: overwrite; False when absent."""
        self.metrics["updates"] += 1
        padded = self.index.pad_key(key)
        for attempt in range(self.config.retry.max_retries):
            try:
                result = yield from self._search_once(padded)
            except InjectedFault:
                result = _RETRY
            if result is _RETRY:
                yield LocalCompute(self._backoff(attempt))
                continue
            if result is None:
                return False
            yield from self.insert(key, value)  # upsert path overwrites
            return True
        raise RetryLimitExceeded(f"bplus update({key!r})",
                                 addr=self.index.root_ptr_addr)

    def _insert_once(self, key: bytes, value: bytes):
        """Top-down descent with preemptive splitting under lock coupling."""
        config = self.config
        root_addr, root = yield from self._read_root()
        # Lock the root (it anchors the lock coupling).
        locked = yield from self._lock(root_addr, root.header)
        if not locked:
            return _RETRY
        root = yield from self._read_node(root_addr)  # stable under lock
        if root.header.count >= config.order:
            yield from self._split_root(root_addr, root)
            return _RETRY
        cur_addr, cur = root_addr, root
        while not cur.header.is_leaf:
            if cur.link_addr and cur.link_key and key >= cur.link_key:
                # Lateral move: lock the right sibling, release current.
                sibling = yield from self._read_node(cur.link_addr)
                locked = yield from self._lock(cur.link_addr, sibling.header)
                if not locked:
                    yield from self._unlock_only(cur_addr, cur)
                    return _RETRY
                sibling = yield from self._read_node(cur.link_addr)
                yield from self._unlock_only(cur_addr, cur)
                if sibling.header.count >= config.order:
                    yield from self._unlock_only(cur.link_addr, sibling)
                    return _RETRY  # let a fresh descent split it
                cur_addr, cur = cur.link_addr, sibling
                continue
            child_index = cur.find_child_index(key) if cur.keys else 0
            if not cur.addrs:
                # Degenerate empty internal node cannot happen (roots
                # start as leaves); treat defensively.
                yield from self._write_and_unlock(
                    cur_addr, cur.header.is_leaf, cur.header.version,
                    list(zip(cur.keys, cur.addrs)))
                return _RETRY
            child_addr = cur.addrs[child_index]
            child = yield from self._read_node(child_addr)
            locked = yield from self._lock(child_addr, child.header)
            if not locked:
                yield from self._unlock_only(cur_addr, cur)
                return _RETRY
            child = yield from self._read_node(child_addr)
            if child.header.count >= config.order:
                yield from self._split_child(cur_addr, cur, child_index,
                                             child_addr, child)
                return _RETRY  # re-descend through the new shape
            # Hand over: unlock the parent, keep the child.
            yield from self._unlock_only(cur_addr, cur)
            cur_addr, cur = child_addr, child
        # At a locked, non-full leaf node; laterally move if a racing
        # split shifted our key range right while we were descending.
        if cur.link_addr and cur.link_key and key >= cur.link_key:
            yield from self._unlock_only(cur_addr, cur)
            return _RETRY
        entries = list(zip(cur.keys, cur.addrs))
        existing = cur.find_key_index(key)
        if existing is not None:
            blob_addr = cur.addrs[existing]
            leaf = yield from leaf_ops.read_leaf(blob_addr, 2)
            yield from self._unlock_only(cur_addr, cur)
            if leaf.status != STATUS_IDLE:
                return _RETRY
            ok = yield from leaf_ops.in_place_update(blob_addr, leaf, value)
            return False if ok else _RETRY
        blob_addr = self.cluster.alloc_for_leaf(key, 128)
        entries.append((key, blob_addr))
        entries.sort(key=lambda e: e[0])
        yield Batch([
            WriteOp(blob_addr, _leaf_image(key, value)),
        ])
        yield from self._write_and_unlock(
            cur_addr, True, cur.header.version, entries,
            link=(cur.link_key, cur.link_addr))
        return True

    def _unlock_only(self, addr: int, view: _NodeView):
        header = _Header(STATUS_IDLE, view.header.is_leaf,
                         view.header.count, view.header.version + 1)
        yield WriteOp(addr, u64_to_bytes(header.pack()), lease=("release",))

    def _split_child(self, parent_addr: int, parent: _NodeView,
                     child_index: int, child_addr: int, child: _NodeView):
        """Split a full child (both parent and child are locked)."""
        config = self.config
        entries = list(zip(child.keys, child.addrs))
        mid = config.split_point
        left, right = entries[:mid], entries[mid:]
        separator = right[0][0]
        right_addr = self.index._alloc_node()
        right_image = _encode_node(config, STATUS_IDLE,
                                   child.header.is_leaf, 0, right,
                                   link=(child.link_key, child.link_addr))
        left_image = _encode_node(config, STATUS_IDLE,
                                  child.header.is_leaf,
                                  child.header.version + 1, left,
                                  link=(separator, right_addr))
        parent_entries = list(zip(parent.keys, parent.addrs))
        parent_entries.insert(child_index + 1, (separator, right_addr))
        parent_image = _encode_node(config, STATUS_IDLE, False,
                                    parent.header.version + 1,
                                    parent_entries)
        # Publish right sibling, then rewrite child and parent (both
        # locked by us), releasing the locks with the rewrites.
        yield Batch([WriteOp(right_addr, right_image),
                     WriteOp(child_addr, left_image, lease=("release",)),
                     WriteOp(parent_addr, parent_image,
                             lease=("release",))])
        self.metrics["splits"] += 1

    def _split_root(self, root_addr: int, root: _NodeView):
        """Split a full root: move entries into two children, keep the
        root's address stable (the root pointer cell never changes)."""
        config = self.config
        entries = list(zip(root.keys, root.addrs))
        mid = config.split_point
        left, right = entries[:mid], entries[mid:]
        left_addr = self.index._alloc_node()
        right_addr = self.index._alloc_node()
        new_root_entries = [(bytes(config.key_width), left_addr),
                            (right[0][0], right_addr)]
        yield Batch([
            WriteOp(left_addr, _encode_node(
                config, STATUS_IDLE, root.header.is_leaf, 0, left,
                link=(right[0][0], right_addr))),
            WriteOp(right_addr, _encode_node(
                config, STATUS_IDLE, root.header.is_leaf, 0, right,
                link=(root.link_key, root.link_addr))),
        ])
        yield WriteOp(root_addr, _encode_node(
            config, STATUS_IDLE, False, root.header.version + 1,
            new_root_entries), lease=("release",))
        self.metrics["splits"] += 1

    # -- scan ------------------------------------------------------------------
    def scan_count(self, start_key: bytes, count: int):
        """First ``count`` pairs with key >= start_key (best effort)."""
        start = self.index.pad_key(start_key)
        for attempt in range(self.config.retry.max_retries):
            results: List[Tuple[bytes, bytes]] = []
            try:
                yield from self._scan_node_ptr(None, start, count, results)
            except InjectedFault:
                self.metrics["restarts"] += 1
                yield LocalCompute(self._backoff(attempt))
                continue
            return results[:count]
        raise RetryLimitExceeded(f"bplus scan({start_key!r})",
                                 addr=self.index.root_ptr_addr)

    def _scan_node_ptr(self, addr: Optional[int], start: bytes, count: int,
                       results: List[Tuple[bytes, bytes]]):
        if addr is None:
            addr_, view = yield from self._read_root()
        else:
            view = yield from self._read_node(addr)
        if view.header.is_leaf:
            if view.link_addr and view.link_key and start >= view.link_key:
                yield from self._scan_node_ptr(view.link_addr, start, count,
                                               results)
                return
            pending = [(k, a) for k, a in zip(view.keys, view.addrs)
                       if k >= start]
            if pending:
                blobs = yield Batch([ReadOp(a, 128) for _k, a in pending])
                for (_k, a), blob in zip(pending, blobs):
                    from ..art.layout import decode_leaf
                    leaf = decode_leaf(blob)
                    if leaf.checksum_ok and leaf.status == STATUS_IDLE:
                        results.append((leaf.key, leaf.value))
            return
        start_index = view.find_child_index(start) if view.keys else 0
        for i in range(start_index, len(view.addrs)):
            if len(results) >= count:
                return
            yield from self._scan_node_ptr(view.addrs[i], start, count,
                                           results)


def _leaf_image(key: bytes, value: bytes) -> bytes:
    from ..art.layout import encode_leaf
    return encode_leaf(key, value, units=2)


_RETRY = object()
