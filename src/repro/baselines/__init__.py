"""Comparison systems: SMART, ART-on-DM, and a B+ tree extension."""

from .art_dm import ArtDmClient, ArtDmConfig, ArtDmIndex
from .bplus import BplusClient, BplusConfig, BplusIndex
from .cache import NodeCache
from .outback import OutbackClient, OutbackConfig, OutbackIndex
from .smart import SmartClient, SmartConfig, SmartIndex

__all__ = [
    "ArtDmClient",
    "ArtDmConfig",
    "ArtDmIndex",
    "BplusClient",
    "BplusConfig",
    "BplusIndex",
    "NodeCache",
    "OutbackClient",
    "OutbackConfig",
    "OutbackIndex",
    "SmartClient",
    "SmartConfig",
    "SmartIndex",
]
