"""The node-based CN cache used by the SMART baseline.

A byte-budgeted LRU of inner-node snapshots keyed by remote address.
This is the caching mechanism the paper argues against: each cached node
costs its full physical size (2056 B in SMART, which preallocates
Node-256), so a realistic CN budget covers only a small fraction of the
inner nodes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..art.layout import NodeView, node_size
from ..errors import InvalidArgument


class NodeCache:
    """LRU cache of :class:`NodeView` snapshots, bounded in bytes."""

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise InvalidArgument("budget must be >= 0")
        self.budget_bytes = budget_bytes
        self._items: "OrderedDict[int, tuple]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, addr: int) -> Optional[NodeView]:
        item = self._items.get(addr)
        if item is None:
            self.misses += 1
            return None
        self._items.move_to_end(addr)
        self.hits += 1
        return item[0]

    def put(self, addr: int, view: NodeView) -> None:
        size = node_size(view.header.node_type)
        if size > self.budget_bytes:
            return  # a single node larger than the whole budget
        old = self._items.pop(addr, None)
        if old is not None:
            self.bytes -= old[1]
        self._items[addr] = (view, size)
        self.bytes += size
        while self.bytes > self.budget_bytes:
            _addr, (_view, evicted_size) = self._items.popitem(last=False)
            self.bytes -= evicted_size
            self.evictions += 1

    def drop(self, addr: int) -> None:
        item = self._items.pop(addr, None)
        if item is not None:
            self.bytes -= item[1]

    def __len__(self) -> int:
        return len(self._items)

    def stats(self) -> dict:
        return {"entries": len(self._items), "bytes": self.bytes,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
