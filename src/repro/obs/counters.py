"""The shared per-index counter facade.

Every index client in this library keeps small named counters - cache
hits and misses, filter false positives, lock conflicts, splits.  Before
`repro.obs` they lived in three shapes (a :class:`TreeMetrics` dataclass,
plain dicts, loose attributes) and every consumer re-implemented the
aggregation.  :class:`Counters` is the one shape they all funnel into:

* clients expose ``counters() -> Counters`` (see
  :meth:`repro.core.remote_art.RemoteArtTree.counters` and friends);
* :func:`client_counters` adapts any client - including legacy ones that
  only carry a ``metrics`` mapping - to the facade;
* the YCSB runner and the figure code aggregate through
  :meth:`Counters.merge` / :meth:`Counters.from_opstats` instead of
  reading individual fields.

The facade is deliberately dependency-free (no imports from the rest of
the library) so hot-path modules can import it without cycles.  It is
*not* itself on the per-verb hot path: clients keep their native counter
stores and snapshot into a :class:`Counters` only when asked.
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

CounterSource = Union["Counters", Mapping[str, int]]


class Counters:
    """A name -> integer counter store with uniform aggregation."""

    __slots__ = ("_data",)

    def __init__(self, initial: Mapping[str, int] | None = None):
        self._data: Dict[str, int] = dict(initial) if initial else {}

    # -- mutation --------------------------------------------------------
    def inc(self, name: str, delta: int = 1) -> None:
        data = self._data
        data[name] = data.get(name, 0) + delta

    def __setitem__(self, name: str, value: int) -> None:
        self._data[name] = value

    def merge(self, other: CounterSource) -> "Counters":
        """Add ``other``'s counts into this store; returns self."""
        data = self._data
        for name, value in _items(other):
            data[name] = data.get(name, 0) + value
        return self

    # -- access ----------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        """Missing counters read as zero - a counter nobody bumped."""
        return self._data.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self._data.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counters):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._data.items()))
        return f"Counters({inner})"

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._data.items()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._data)

    # -- derived views ---------------------------------------------------
    def per_op(self, ops: int) -> Dict[str, float]:
        """Every counter divided by an operation count (0 ops -> zeros)."""
        if ops <= 0:
            return {name: 0.0 for name in self._data}
        return {name: value / ops for name, value in self._data.items()}

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_opstats(cls, stats) -> "Counters":
        """Snapshot an :class:`repro.dm.rdma.OpStats` (or any dataclass of
        integer fields) into the facade."""
        return cls({f.name: getattr(stats, f.name)
                    for f in _dataclass_fields(stats)})

    @classmethod
    def aggregate(cls, sources: Iterable[CounterSource]) -> "Counters":
        total = cls()
        for source in sources:
            total.merge(source)
        return total


def _items(source: CounterSource) -> Iterable[Tuple[str, int]]:
    if isinstance(source, Counters):
        return source.items()
    return source.items()


def client_counters(client) -> Counters:
    """Adapt any index client to the facade.

    Prefers the client's own ``counters()`` snapshot; falls back to a
    ``metrics`` attribute carrying either an ``as_dict()``-style dataclass
    or a plain mapping.
    """
    counters = getattr(client, "counters", None)
    if callable(counters):
        return counters()
    metrics = getattr(client, "metrics", None)
    if metrics is None:
        return Counters()
    if hasattr(metrics, "as_dict"):
        return Counters(metrics.as_dict())
    return Counters(metrics)
