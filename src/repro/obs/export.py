"""Trace exporters: compact JSONL, Chrome ``trace_event`` JSON, and the
``--profile`` per-op breakdown table.

All exporters are deterministic - keys are emitted in a fixed order and
every value is a pure function of the trace - so the determinism suite
can assert byte-identical output for byte-identical runs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .trace import OpSpan, Tracer

_JSON = dict(sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def _span_record(span: OpSpan) -> dict:
    rec = {
        "type": "span",
        "seq": span.seq,
        "client": span.client,
        "name": span.name,
        "t_start": span.t_start,
        "t_end": span.t_end,
        "status": span.status,
        "retries": span.retries,
        "round_trips": span.round_trips,
        "messages": span.messages,
        "bytes_read": span.bytes_read,
        "bytes_written": span.bytes_written,
        "verbs": [
            {
                "kind": v.kind,
                "addr": v.addr,
                "mn": v.mn,
                "req_bytes": v.req_bytes,
                "resp_bytes": v.resp_bytes,
                "t_start": v.t_start,
                "t_end": v.t_end,
                "retry": v.retry,
                **({"fault": v.fault} if v.fault else {}),
            }
            for v in span.verbs
        ],
    }
    if span.faults:
        rec["faults"] = [{"kind": f.kind, "addr": f.addr, "t": f.t}
                         for f in span.faults]
    return rec


def iter_jsonl(tracer: Tracer, cell: Optional[str] = None) -> Iterator[str]:
    """Yield one JSON line per span, then one per resource sample.

    ``cell`` adds a ``"cell"`` field to every record, so multiple cells'
    traces can share one file and stay distinguishable.
    """
    tag = {} if cell is None else {"cell": cell}
    for span in tracer.spans:
        yield json.dumps({**_span_record(span), **tag}, **_JSON)
    for sample in tracer.samples:
        yield json.dumps({"type": "sample", "t": sample.t,
                          "gauges": sample.gauges, **tag}, **_JSON)


def to_jsonl(tracer: Tracer, cell: Optional[str] = None) -> str:
    lines = list(iter_jsonl(tracer, cell))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str,
                cell: Optional[str] = None) -> None:
    with open(path, "w") as fh:
        for line in iter_jsonl(tracer, cell):
            fh.write(line)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def chrome_trace(tracers: Sequence[Tracer],
                 labels: Optional[Sequence[str]] = None) -> dict:
    """Render tracers as a Chrome ``trace_event`` object (the JSON Object
    Format: ``{"traceEvents": [...]}``) loadable in ``chrome://tracing``
    or Perfetto.

    Each tracer becomes one "process" (pid = its index, named by its
    label), each client one "thread" inside it.  Ops are ``X`` complete
    events with nested verb events; resource gauges become ``C`` counter
    events.  Timestamps are microseconds as the format demands; the
    integer-ns sim values divide exactly into fractional us.
    """
    if labels is None:
        labels = [f"run{i}" for i in range(len(tracers))]
    events: List[dict] = []
    for pid, (tracer, label) in enumerate(zip(tracers, labels)):
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": label}})
        tids: Dict[str, int] = {}
        for span in tracer.spans:
            tid = tids.get(span.client)
            if tid is None:
                tid = tids[span.client] = len(tids)
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": span.client}})
            t_end = span.t_end if span.t_end >= 0 else span.t_start
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": span.name, "cat": "op",
                "ts": span.t_start / 1000,
                "dur": (t_end - span.t_start) / 1000,
                "args": {
                    "status": span.status,
                    "retries": span.retries,
                    "round_trips": span.round_trips,
                    "messages": span.messages,
                    "bytes_read": span.bytes_read,
                    "bytes_written": span.bytes_written,
                },
            })
            for verb in span.verbs:
                args = {"addr": hex(verb.addr), "mn": verb.mn,
                        "req_bytes": verb.req_bytes,
                        "resp_bytes": verb.resp_bytes,
                        "retry": verb.retry}
                if verb.fault:
                    args["fault"] = verb.fault
                events.append({
                    "ph": "X", "pid": pid, "tid": tid,
                    "name": verb.kind, "cat": "verb",
                    "ts": verb.t_start / 1000,
                    "dur": (verb.t_end - verb.t_start) / 1000,
                    "args": args,
                })
        for sample in tracer.samples:
            for gauge, value in sample.gauges.items():
                events.append({
                    "ph": "C", "pid": pid, "tid": 0,
                    "name": gauge, "cat": "resource",
                    "ts": sample.t / 1000,
                    "args": {"value": value},
                })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracers: Sequence[Tracer], path: str,
                       labels: Optional[Sequence[str]] = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracers, labels), fh, **_JSON)
        fh.write("\n")


# ---------------------------------------------------------------------------
# --profile breakdown
# ---------------------------------------------------------------------------

def profile_summary(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Per-op-name averages: RTTs, messages, bytes, retries, sim-time.

    Built from the tracer's running totals, so it stays exact even when
    ``max_spans`` capped the exported span list.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(tracer.op_totals):
        agg = tracer.op_totals[name]
        n = agg["count"]
        out[name] = {
            "count": n,
            "failed": agg["failed"],
            "round_trips": agg["round_trips"] / n,
            "messages": agg["messages"] / n,
            "bytes_read": agg["bytes_read"] / n,
            "bytes_written": agg["bytes_written"] / n,
            "retries": agg["retries"] / n,
            "avg_us": agg["sim_ns"] / n / 1000,
        }
    return out


def render_profile(profiles: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Format ``{cell label: profile_summary(...)}`` as the ``--profile``
    breakdown table."""
    header = (f"{'cell':<28} {'op':<10} {'count':>7} {'fail':>5} "
              f"{'rtt/op':>7} {'msg/op':>7} {'rdB/op':>8} {'wrB/op':>8} "
              f"{'retry':>6} {'avg_us':>8}")
    lines = [header, "-" * len(header)]
    for label in profiles:
        for op, row in profiles[label].items():
            lines.append(
                f"{label:<28} {op:<10} {row['count']:>7.0f} "
                f"{row['failed']:>5.0f} {row['round_trips']:>7.2f} "
                f"{row['messages']:>7.2f} {row['bytes_read']:>8.1f} "
                f"{row['bytes_written']:>8.1f} {row['retries']:>6.2f} "
                f"{row['avg_us']:>8.2f}")
    return "\n".join(lines)
