"""repro.obs - the observability layer.

Structured per-op tracing, resource gauges, and the shared per-index
counter facade, attached through ``Cluster.attach_tracer(...)``.  See
DESIGN.md §8 for the span model and the zero-overhead contract.
"""

from .counters import Counters, client_counters
from .trace import (FaultTag, OpSpan, ResourceSample, TraceConfig, Tracer,
                    VerbEvent)
from .export import (chrome_trace, iter_jsonl, profile_summary,
                     render_profile, to_jsonl, write_chrome_trace,
                     write_jsonl)

__all__ = [
    "Counters", "client_counters",
    "Tracer", "TraceConfig", "OpSpan", "VerbEvent", "FaultTag",
    "ResourceSample",
    "to_jsonl", "iter_jsonl", "write_jsonl",
    "chrome_trace", "write_chrome_trace",
    "profile_summary", "render_profile",
]
