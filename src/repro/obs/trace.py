"""Structured tracing: per-op spans, nested verb events, resource gauges.

A :class:`Tracer` attaches to a cluster through
:meth:`repro.dm.cluster.Cluster.attach_tracer` - the same pattern as the
DMSan monitor and the fault injector.  Executors created afterwards
report into it:

* ``op_begin``/``op_end`` bracket one client operation (one
  ``executor.run(...)`` of an op generator) into an :class:`OpSpan`;
* ``on_verb`` nests one executed RDMA verb - kind, target MN, address,
  request/response payload bytes, simulated start/end time, the op's
  retry round, and an injected-fault tag when the chaos substrate
  perturbed it - into the client's open span;
* ``on_fault`` tags the span when an :class:`repro.errors.InjectedFault`
  is delivered into the client generator and bumps its retry counter.

Resource gauges (NIC busy fraction, queued work, delivered bandwidth)
are sampled **passively**: the tracer snapshots them when a verb
completes and at least ``sample_every_ns`` of simulated time has passed
since the previous sample.  Sampling therefore never creates engine
events, which is what keeps an *attached* tracer schedule-invariant -
the same simulated history, with or without observability (the
determinism suite pins this down; detached, the executors do not touch
the tracer at all).

Everything the tracer records is a pure function of simulated state, so
traces are bit-reproducible: same seed, same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dm.memory import addr_mn
from ..dm.rdma import CasOp, FaaOp, ReadOp, Verb, WriteOp

_VERB_KIND = {ReadOp: "read", WriteOp: "write", CasOp: "cas", FaaOp: "faa"}


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of one tracer."""

    sample_every_ns: int = 50_000
    """Minimum simulated time between resource samples (0 disables)."""

    record_verbs: bool = True
    """Keep the per-verb event list on every span (the span aggregates
    stay filled either way)."""

    max_spans: int = 0
    """Retain at most this many spans for export (0 = unbounded).  The
    per-op profile totals keep aggregating past the cap."""


@dataclass
class VerbEvent:
    """One executed RDMA verb inside an op span."""

    kind: str                 # "read" | "write" | "cas" | "faa"
    addr: int                 # 48-bit global address
    mn: int                   # memory node the verb targeted
    req_bytes: int            # request payload bytes
    resp_bytes: int           # response payload bytes
    t_start: int              # simulated ns at issue
    t_end: int                # simulated ns at completion
    retry: int = 0            # op retry round the verb was issued in
    fault: Optional[str] = None   # injected-fault kind, when perturbed


@dataclass
class FaultTag:
    """One injected fault delivered while an op span was open."""

    kind: str
    addr: int
    t: int


@dataclass
class OpSpan:
    """One client operation (search/insert/update/scan/...)."""

    seq: int
    client: str
    name: str
    t_start: int
    t_end: int = -1            # -1 while the op is still running
    status: str = "open"       # "ok" | "failed" | "error"
    retries: int = 0           # injected faults delivered into the op
    round_trips: int = 0
    messages: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    verbs: List[VerbEvent] = field(default_factory=list)
    faults: List[FaultTag] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return 0 if self.t_end < 0 else self.t_end - self.t_start


@dataclass
class ResourceSample:
    """One point-in-time snapshot of cluster resource gauges."""

    t: int
    gauges: Dict[str, float]


def _verb_payloads(op: Verb) -> tuple:
    """(request payload bytes, response payload bytes) - mirrors the
    executor's timing model."""
    cls = op.__class__
    if cls is ReadOp:
        return 0, op.size
    if cls is WriteOp:
        return len(op.data), 0
    if cls is CasOp:
        return 16, 8
    return 8, 8


class Tracer:
    """Event sink for spans, verb events, and resource samples."""

    def __init__(self, config: TraceConfig | None = None):
        self.config = config if config is not None else TraceConfig()
        self.spans: List[OpSpan] = []
        self.orphan_verbs: List[VerbEvent] = []
        self.samples: List[ResourceSample] = []
        self.dropped_spans = 0
        self.op_totals: Dict[str, Dict[str, int]] = {}
        self._open: Dict[str, List[OpSpan]] = {}
        self._seq = 0
        # Live resource references (dropped by finish() so traces pickle
        # without dragging the whole cluster along).
        self._engine = None
        self._nics: List = []
        self._next_sample = 0
        self._last_bytes: Dict[str, int] = {}
        self._last_sample_t = 0

    # -- span lifecycle --------------------------------------------------
    def op_begin(self, client: str, name: str, now: int) -> OpSpan:
        self._seq += 1
        span = OpSpan(self._seq, client, name, now)
        limit = self.config.max_spans
        if limit and len(self.spans) >= limit:
            self.dropped_spans += 1
        else:
            self.spans.append(span)
        self._open.setdefault(client, []).append(span)
        return span

    def op_end(self, span: OpSpan, now: int, status: str = "ok") -> None:
        if span.t_end >= 0:
            return
        span.t_end = now
        span.status = status
        stack = self._open.get(span.client)
        if stack and stack[-1] is span:
            stack.pop()
        agg = self.op_totals.get(span.name)
        if agg is None:
            agg = self.op_totals[span.name] = {
                "count": 0, "failed": 0, "round_trips": 0, "messages": 0,
                "bytes_read": 0, "bytes_written": 0, "retries": 0,
                "sim_ns": 0,
            }
        agg["count"] += 1
        if status != "ok":
            agg["failed"] += 1
        agg["round_trips"] += span.round_trips
        agg["messages"] += span.messages
        agg["bytes_read"] += span.bytes_read
        agg["bytes_written"] += span.bytes_written
        agg["retries"] += span.retries
        agg["sim_ns"] += span.duration_ns
        self._maybe_sample(now)

    def _current(self, client: str) -> Optional[OpSpan]:
        stack = self._open.get(client)
        return stack[-1] if stack else None

    # -- executor hooks --------------------------------------------------
    def on_verb(self, client: str, op: Verb, t_start: int, t_end: int,
                fault: Optional[str] = None) -> None:
        """Record one executed verb into the client's open span."""
        req_bytes, resp_bytes = _verb_payloads(op)
        span = self._current(client)
        event = VerbEvent(_VERB_KIND[op.__class__], op.addr, addr_mn(op.addr),
                          req_bytes, resp_bytes, t_start, t_end,
                          retry=span.retries if span is not None else 0,
                          fault=fault)
        if span is None:
            self.orphan_verbs.append(event)
        else:
            span.messages += 1
            if event.kind == "read":
                span.bytes_read += resp_bytes
            elif event.kind == "write":
                span.bytes_written += req_bytes
            if self.config.record_verbs:
                span.verbs.append(event)
        self._maybe_sample(t_end)

    def on_round_trip(self, span: OpSpan) -> None:
        span.round_trips += 1

    def on_fault(self, client: str, kind: str, addr: int, now: int) -> None:
        """An injected fault surfaced at the client's yield point."""
        span = self._current(client)
        if span is None:
            return
        span.retries += 1
        span.faults.append(FaultTag(kind, addr, now))

    def tag_verb(self, client: str, kind: str) -> None:
        """Tag the most recent verb of the open span as fault-perturbed
        (delays, phantom duplicates, stale CAS replies - faults that do
        not surface as exceptions)."""
        span = self._current(client)
        if span is None:
            return
        span.faults.append(FaultTag(kind, 0, span.t_start))
        if span.verbs:
            span.verbs[-1].fault = kind

    # -- resource sampling ----------------------------------------------
    def attach_resources(self, cluster) -> None:
        """Bind the cluster's engine and NICs for passive gauge sampling."""
        self._engine = cluster.engine
        self._nics = (sorted(cluster.mn_nics.values(), key=lambda n: n.name)
                      + sorted(cluster.cn_nics.values(),
                               key=lambda n: n.name))
        self._last_bytes = {nic.name: nic.payload_bytes
                            for nic in self._nics}
        self._last_sample_t = cluster.engine.now
        self._next_sample = cluster.engine.now

    def _maybe_sample(self, now: int) -> None:
        if self._engine is None or not self.config.sample_every_ns:
            return
        if now < self._next_sample:
            return
        self.sample(now)
        self._next_sample = now + self.config.sample_every_ns

    def sample(self, now: int) -> None:
        """Snapshot every bound NIC's gauges at simulated time ``now``."""
        if self._engine is None:
            return
        dt = now - self._last_sample_t
        gauges: Dict[str, float] = {}
        for nic in self._nics:
            server = nic.server
            busy = server.busy_time / (now * server.capacity) if now else 0.0
            gauges[f"{nic.name}.busy_frac"] = round(busy, 6)
            gauges[f"{nic.name}.queue_ns"] = float(server.backlog_ns(now))
            delta = nic.payload_bytes - self._last_bytes.get(nic.name, 0)
            self._last_bytes[nic.name] = nic.payload_bytes
            gbps = (delta * 8.0 / dt) if dt > 0 else 0.0
            gauges[f"{nic.name}.gbps"] = round(gbps, 4)
        self.samples.append(ResourceSample(now, gauges))
        self._last_sample_t = now

    # -- teardown --------------------------------------------------------
    def finish(self) -> "Tracer":
        """Close out the trace: one final sample, live references dropped
        (so results carrying the tracer pickle cleanly across the
        fork-pool grid), open spans marked as such."""
        if self._engine is not None:
            self.sample(self._engine.now)
        self._engine = None
        self._nics = []
        self._open = {}
        return self
