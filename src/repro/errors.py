"""Exception hierarchy for the Sphinx reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # import-cycle safety: runtime stays dependency-free
    from .dm.rdma import OpStats
    from .fault.inject import FaultEvent


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidArgument(ReproError, ValueError):
    """A caller passed an out-of-range or malformed argument.

    Also derives from :class:`ValueError` so existing callers (and tests)
    that catch the builtin keep working.
    """


class DataMissing(ReproError, KeyError):
    """A reporting/figure lookup referenced a (system, workload) pair that
    was never measured.  Also derives from :class:`KeyError` for dict-like
    call sites."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an
    inconsistent state (e.g. running a finished process)."""


class MemoryError_(ReproError):
    """Simulated memory-node failure (out of memory, bad address, bad size).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemory(MemoryError_):
    """Allocation failed because the memory node is exhausted."""


class BadAddress(MemoryError_):
    """An RDMA verb referenced an address outside any registered region."""


class DoubleFree(MemoryError_):
    """``free``/``retire`` was called on a block that overlaps a block
    already freed or retired (allocator misuse by a protocol)."""


class UseAfterFree(MemoryError_):
    """A verb touched a freed-and-not-yet-recycled region while the memory
    node was configured with ``uaf_policy="raise"``."""


class KeyCodecError(ReproError):
    """A key could not be encoded (e.g. contains the terminator byte)."""


class IndexError_(ReproError):
    """Base class for index-structure failures."""


class KeyNotFound(IndexError_):
    """A search/update/delete referenced a key that is not in the index."""


class DuplicateKey(IndexError_):
    """An insert-only operation found the key already present."""


class InjectedFault(ReproError):
    """A fault injected by :mod:`repro.fault` fired on a verb: the
    completion was lost, the request NAK'd, or the reply forged.

    Clients must treat this exactly like a failed/lost completion on real
    hardware: back off and retry under their :class:`RetryPolicy`.  It
    never escapes a correctly written client except wrapped in a
    :class:`RetryLimitExceeded` after exhaustion.
    """

    def __init__(self, message: str, *, kind: str = "fault",
                 addr: Optional[int] = None,
                 applied: bool = False) -> None:
        super().__init__(message)
        self.kind = kind        # fault-rule kind ("drop", "nak", ...)
        self.addr = addr        # target global address, when known
        self.applied = applied  # did the MN apply the side effect?


class MNUnavailable(IndexError_):
    """A verb targeted a memory node that has crashed (``crash_mn``).

    Deliberately *not* an :class:`InjectedFault`: retrying cannot help -
    the node's data is gone - so executors fail the operation fast
    instead of letting clients retry-storm through their
    :class:`RetryPolicy`.  Index clients may catch it at a degradation
    point (e.g. Sphinx falls back from a dead INHT to the root walk);
    otherwise it propagates to the workload driver, which counts the
    operation as failed goodput.
    """

    def __init__(self, message: str, *, mn: Optional[int] = None,
                 addr: Optional[int] = None) -> None:
        super().__init__(message)
        self.mn = mn
        self.addr = addr


class StaleEpoch(IndexError_):
    """A replicated rack write captured a shard epoch that a failover
    promotion has since fenced off.

    The rack bumps a shard's epoch when it promotes a replica to
    primary (see DESIGN.md §14), so an in-flight write that routed
    against the pre-failover assignment is rejected at its next apply
    instead of landing on a deposed primary or a stale replica chain.
    The workload driver counts the op as failed goodput, exactly like
    :class:`MNUnavailable` - retrying cannot help, the route itself is
    stale.
    """

    def __init__(self, message: str, *, shard: Optional[int] = None,
                 expected: Optional[int] = None,
                 current: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.expected = expected  # the epoch the op captured at route time
        self.current = current    # the shard's epoch at apply time


class ClientCrash(ReproError):
    """A ``crash_cn`` fault killed this executor's client mid-operation.

    Never delivered *into* the op generator: a crashed compute node runs
    no cleanup, so the generator is simply abandoned and any locks it
    holds stay held until a :class:`repro.recover.RecoveryManager`
    expires their leases.  The executor latches crashed state; further
    use raises this same error immediately.
    """

    def __init__(self, message: str, *, client: Optional[str] = None,
                 applied: bool = False) -> None:
        super().__init__(message)
        self.client = client
        self.applied = applied  # did the dying verb's side effect land?


class RetryLimitExceeded(IndexError_):
    """An optimistic operation exceeded its retry budget (indicates either a
    pathological conflict rate, an index-corruption bug, or - under
    chaos testing - an unsurvivable injected-fault schedule).

    Carries enough context to correlate with sanitizer/fsck output: the
    contended address (when the raise site knows it) and, attached by the
    executor that drove the generator, the client id, an
    :class:`repro.dm.rdma.OpStats` snapshot at the moment of failure, and
    the recent injected-fault trace when a fault plan was active.
    """

    def __init__(self, message: str, *,
                 addr: Optional[int] = None) -> None:
        super().__init__(message)
        self.message = message
        self.addr = addr
        self.client: Optional[str] = None
        # OpStats snapshot, attached by the executor.
        self.stats: Optional["OpStats"] = None
        # Recent FaultEvents, when a fault plan was active.
        self.fault_trace: Tuple["FaultEvent", ...] = ()

    def attach_context(self, client: Optional[str],
                       stats: Optional["OpStats"]) -> None:
        """Called by the driving executor; first attachment wins (the
        innermost executor is the one that actually ran the verbs)."""
        if self.client is None:
            self.client = client
        if self.stats is None:
            self.stats = stats

    def attach_fault_trace(self,
                           trace: Iterable["FaultEvent"]) -> None:
        """Called by an executor driving under an attached fault plan;
        first attachment wins, like :meth:`attach_context`."""
        if not self.fault_trace:
            self.fault_trace = tuple(trace)

    def __str__(self) -> str:
        parts = [self.message]
        if self.addr is not None:
            try:  # runtime import: errors.py must stay dependency-free
                from .dm.memory import format_addr
                parts.append(f"addr={format_addr(self.addr)}")
            except Exception:  # pragma: no cover - import cycle safety net
                parts.append(f"addr={self.addr:#x}")
        if self.client is not None:
            parts.append(f"client={self.client}")
        if self.stats is not None:
            s = self.stats
            parts.append(
                f"stats[rt={s.round_trips} msg={s.messages} r={s.reads} "
                f"w={s.writes} cas={s.cas} faa={s.faa}]")
        if self.fault_trace:
            last = self.fault_trace[-1]
            parts.append(f"faults[n>={len(self.fault_trace)} "
                         f"last={last.kind}:{last.verb}@seq{last.seq}]")
        return " ".join(parts)


class FilterError(ReproError):
    """Cuckoo-filter failure (e.g. insertion impossible after max kicks with
    eviction disabled)."""


class HashTableError(ReproError):
    """RACE hash-table failure (e.g. unresizable full bucket)."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is invalid."""


class SanViolation(ReproError):
    """DMSan observed a concurrency-protocol violation and was configured
    with ``on_violation="raise"``."""
