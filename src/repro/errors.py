"""Exception hierarchy for the Sphinx reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an
    inconsistent state (e.g. running a finished process)."""


class MemoryError_(ReproError):
    """Simulated memory-node failure (out of memory, bad address, bad size).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemory(MemoryError_):
    """Allocation failed because the memory node is exhausted."""


class BadAddress(MemoryError_):
    """An RDMA verb referenced an address outside any registered region."""


class KeyCodecError(ReproError):
    """A key could not be encoded (e.g. contains the terminator byte)."""


class IndexError_(ReproError):
    """Base class for index-structure failures."""


class KeyNotFound(IndexError_):
    """A search/update/delete referenced a key that is not in the index."""


class DuplicateKey(IndexError_):
    """An insert-only operation found the key already present."""


class RetryLimitExceeded(IndexError_):
    """An optimistic operation exceeded its retry budget (indicates either a
    pathological conflict rate or an index-corruption bug)."""


class FilterError(ReproError):
    """Cuckoo-filter failure (e.g. insertion impossible after max kicks with
    eviction disabled)."""


class HashTableError(ReproError):
    """RACE hash-table failure (e.g. unresizable full bucket)."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is invalid."""
