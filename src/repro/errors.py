"""Exception hierarchy for the Sphinx reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidArgument(ReproError, ValueError):
    """A caller passed an out-of-range or malformed argument.

    Also derives from :class:`ValueError` so existing callers (and tests)
    that catch the builtin keep working.
    """


class DataMissing(ReproError, KeyError):
    """A reporting/figure lookup referenced a (system, workload) pair that
    was never measured.  Also derives from :class:`KeyError` for dict-like
    call sites."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an
    inconsistent state (e.g. running a finished process)."""


class MemoryError_(ReproError):
    """Simulated memory-node failure (out of memory, bad address, bad size).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemory(MemoryError_):
    """Allocation failed because the memory node is exhausted."""


class BadAddress(MemoryError_):
    """An RDMA verb referenced an address outside any registered region."""


class DoubleFree(MemoryError_):
    """``free``/``retire`` was called on a block that overlaps a block
    already freed or retired (allocator misuse by a protocol)."""


class UseAfterFree(MemoryError_):
    """A verb touched a freed-and-not-yet-recycled region while the memory
    node was configured with ``uaf_policy="raise"``."""


class KeyCodecError(ReproError):
    """A key could not be encoded (e.g. contains the terminator byte)."""


class IndexError_(ReproError):
    """Base class for index-structure failures."""


class KeyNotFound(IndexError_):
    """A search/update/delete referenced a key that is not in the index."""


class DuplicateKey(IndexError_):
    """An insert-only operation found the key already present."""


class RetryLimitExceeded(IndexError_):
    """An optimistic operation exceeded its retry budget (indicates either a
    pathological conflict rate or an index-corruption bug).

    Carries enough context to correlate with sanitizer/fsck output: the
    contended address (when the raise site knows it) and, attached by the
    executor that drove the generator, the client id and an
    :class:`repro.dm.rdma.OpStats` snapshot at the moment of failure.
    """

    def __init__(self, message: str, *, addr: "int | None" = None):
        super().__init__(message)
        self.message = message
        self.addr = addr
        self.client: "str | None" = None
        self.stats = None  # OpStats snapshot, attached by the executor

    def attach_context(self, client, stats) -> None:
        """Called by the driving executor; first attachment wins (the
        innermost executor is the one that actually ran the verbs)."""
        if self.client is None:
            self.client = client
        if self.stats is None:
            self.stats = stats

    def __str__(self) -> str:
        parts = [self.message]
        if self.addr is not None:
            try:  # runtime import: errors.py must stay dependency-free
                from .dm.memory import format_addr
                parts.append(f"addr={format_addr(self.addr)}")
            except Exception:  # pragma: no cover - import cycle safety net
                parts.append(f"addr={self.addr:#x}")
        if self.client is not None:
            parts.append(f"client={self.client}")
        if self.stats is not None:
            s = self.stats
            parts.append(
                f"stats[rt={s.round_trips} msg={s.messages} r={s.reads} "
                f"w={s.writes} cas={s.cas} faa={s.faa}]")
        return " ".join(parts)


class FilterError(ReproError):
    """Cuckoo-filter failure (e.g. insertion impossible after max kicks with
    eviction disabled)."""


class HashTableError(ReproError):
    """RACE hash-table failure (e.g. unresizable full bucket)."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is invalid."""


class SanViolation(ReproError):
    """DMSan observed a concurrency-protocol violation and was configured
    with ``on_violation="raise"``."""
