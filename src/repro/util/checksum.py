"""Leaf-node checksums.

The paper's in-place update scheme (Sec. III-C) writes a whole leaf with a
single RDMA WRITE and relies on a checksum so that concurrent readers can
detect a partially visible write.  CRC32 is sufficient and fast.
"""

from __future__ import annotations

import zlib

CHECKSUM_BYTES = 4
_SEED = 0x5F3759DF


def leaf_checksum(payload: bytes) -> int:
    """32-bit checksum over a leaf's logical payload (lengths + key + value)."""
    return zlib.crc32(payload, _SEED) & 0xFFFFFFFF


def verify(payload: bytes, expected: int) -> bool:
    """True iff ``payload`` hashes to ``expected``."""
    return leaf_checksum(payload) == (expected & 0xFFFFFFFF)
