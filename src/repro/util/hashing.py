"""Deterministic hashing primitives.

The index stack needs several independent hash functions of byte strings:

* bucket placement in the RACE hash table (two functions, per MN),
* 12-bit fingerprints stored in hash entries (fp2 in the paper's Fig 3),
* the 42-bit full-prefix hash stored in ART node headers,
* cuckoo-filter bucket/fingerprint hashes,
* the consistent-hashing ring that spreads ART nodes over memory nodes.

Everything here is seeded and deterministic across processes (CPython's
builtin ``hash`` is not), built on ``zlib.crc32`` for speed with a
splitmix64 finalizer to de-correlate the two 32-bit halves.
"""

from __future__ import annotations

import bisect
import zlib
from typing import List, Sequence, Tuple

from ..errors import InvalidArgument

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Finalizer from the splitmix64 PRNG; a strong 64-bit bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


# Memo of computed hashes, one table per seed (the library uses a small
# fixed set of seeds).  hash64 is a pure function, so caching cannot
# change any result - but index workloads rehash the same keys and
# prefixes millions of times, and the cache turns each repeat into one
# dict probe.  Bounded: cleared wholesale if a table grows past _CACHE_MAX
# (re-filling is correct by purity; clearing keeps long sessions flat).
_CACHE_MAX = 1 << 21
_hash_tables: dict = {}


def hash64(data: bytes, seed: int = 0) -> int:
    """Seeded 64-bit hash of ``data``.

    Two CRC32 passes with seed-derived initial values provide 64 input-
    sensitive bits; splitmix64 mixes them so that low bits are usable as
    bucket indexes and high bits as fingerprints.
    """
    table = _hash_tables.get(seed)
    if table is None:
        table = _hash_tables[seed] = {}
    h = table.get(data)
    if h is None:
        lo = zlib.crc32(data, seed & 0xFFFFFFFF)
        hi = zlib.crc32(data, (~seed ^ 0x5BD1E995) & 0xFFFFFFFF)
        h = _splitmix64((hi << 32) | lo ^ ((seed >> 32) & _MASK64))
        if len(table) >= _CACHE_MAX:
            table.clear()
        table[data] = h
    return h


def hash_pair(data: bytes, seed: int = 0) -> Tuple[int, int]:
    """Two independent 64-bit hashes of ``data`` (for two-choice hashing)."""
    h1 = hash64(data, seed)
    h2 = _splitmix64(h1 ^ 0xA5A5A5A5DEADBEEF)
    return h1, h2


def fingerprint(data: bytes, bits: int, seed: int = 0x0F1E2D3C) -> int:
    """A ``bits``-wide nonzero fingerprint of ``data``.

    Fingerprint 0 is reserved to mean "empty slot" in both the cuckoo
    filter and the inner-node hash table, so the value is remapped to 1.
    """
    if not 1 <= bits <= 62:
        raise InvalidArgument("fingerprint width must be in [1, 62]")
    fp = hash64(data, seed) & ((1 << bits) - 1)
    return fp if fp != 0 else 1


def prefix_hash42(data: bytes) -> int:
    """The 42-bit full-prefix hash stored in ART inner-node headers."""
    return hash64(data, 0x42_42_42) & ((1 << 42) - 1)


class ConsistentHashRing:
    """A classic consistent-hashing ring with virtual nodes.

    Used to spread ART nodes (and their hash-table entries) across memory
    nodes, as in the paper's Fig 1.  Lookup is O(log V) via bisect.
    """

    def __init__(self, members: Sequence[int], vnodes: int = 64, seed: int = 7):
        if not members:
            raise InvalidArgument("ring needs at least one member")
        if vnodes <= 0:
            raise InvalidArgument("vnodes must be positive")
        self._members = list(members)
        self._seed = seed
        points: List[Tuple[int, int]] = []
        for member in self._members:
            for v in range(vnodes):
                token = hash64(f"{member}:{v}".encode(), seed)
                points.append((token, member))
        points.sort()
        self._tokens = [p[0] for p in points]
        self._owners = [p[1] for p in points]
        # Placement memo: ring membership is immutable, so the owner of
        # a given byte string never changes; placement sits on every
        # alloc and every INHT client lookup.
        self._memo: dict = {}

    def __deepcopy__(self, memo):
        # Membership and tokens are immutable after construction and the
        # placement memo caches a pure function of them, so a copy can be
        # the ring itself; this keeps benchmark snapshot restores from
        # walking the memo's entry per key of every loaded dataset.
        return self

    @property
    def members(self) -> List[int]:
        return list(self._members)

    def lookup(self, data: bytes) -> int:
        """Return the member owning ``data``."""
        member = self._memo.get(data)
        if member is None:
            h = hash64(data, self._seed ^ 0xC0FFEE)
            idx = bisect.bisect_right(self._tokens, h)
            if idx == len(self._tokens):
                idx = 0
            member = self._owners[idx]
            if len(self._memo) >= _CACHE_MAX:
                self._memo.clear()
            self._memo[data] = member
        return member

    def lookup_int(self, value: int) -> int:
        return self.lookup(value.to_bytes(8, "little", signed=False))

    def lookup_chain(self, data: bytes, count: int) -> List[int]:
        """The first ``count`` *distinct* members at/after ``data``'s
        token, in ring order (the successor chain replica placement
        walks).  ``lookup_chain(data, 1)[0] == lookup(data)``; asking
        for more members than the ring has returns them all.
        """
        if count < 1:
            raise InvalidArgument("chain length must be >= 1")
        h = hash64(data, self._seed ^ 0xC0FFEE)
        start = bisect.bisect_right(self._tokens, h)
        n = len(self._tokens)
        chain: List[int] = []
        seen = set()
        for step in range(n):
            member = self._owners[(start + step) % n]
            if member not in seen:
                seen.add(member)
                chain.append(member)
                if len(chain) == count:
                    break
        return chain
