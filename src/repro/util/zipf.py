"""YCSB-style request distributions.

Faithful ports of the generators in the YCSB core package:

* :class:`UniformGenerator` - uniform over ``[0, n)``.
* :class:`ZipfianGenerator` - Gray et al.'s rejection-free zipfian sampler
  (the algorithm in "Quickly Generating Billion-Record Synthetic
  Databases"), skew ``theta`` (YCSB default 0.99).
* :class:`ScrambledZipfianGenerator` - zipfian popularity scattered across
  the keyspace with a hash, as YCSB uses for workloads A-C.
* :class:`LatestGenerator` - zipfian over recency: item ``max - z`` where
  ``z`` is zipfian, as YCSB uses for workload D.
"""

from __future__ import annotations

import math
import random

from ..errors import InvalidArgument
from ..util.hashing import hash64

ZIPFIAN_CONSTANT = 0.99


# zeta is a pure function of (n, theta), and benchmark workers construct
# generators over keyspaces that differ by a handful of inserts - so a
# plain (n, theta) memo would miss almost every time while each miss
# recomputes an O(n) sum.  Instead cache the *prefix sums* per theta and
# extend incrementally.  Both ``sum()`` and the extension loop accumulate
# terms left to right in a single double, so the extended value is bit
# for bit the value a from-scratch sum would produce.
_zeta_prefix: dict = {}


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number sum_{i=1..n} 1/i^theta."""
    prefix = _zeta_prefix.get(theta)
    if prefix is None:
        prefix = _zeta_prefix[theta] = [0.0]  # prefix[i] == zeta(i, theta)
    if n >= len(prefix):
        z = prefix[-1]
        for i in range(len(prefix), n + 1):
            z += 1.0 / (i ** theta)
            prefix.append(z)
    return prefix[n]


class UniformGenerator:
    """Uniform integers over ``[0, n)``."""

    def __init__(self, n: int, rng: random.Random):
        if n <= 0:
            raise InvalidArgument("n must be positive")
        self.n = n
        self._rng = rng

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian integers over ``[0, n)``; rank 0 is the most popular item."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 rng: random.Random | None = None):
        if n <= 0:
            raise InvalidArgument("n must be positive")
        if not 0 < theta < 1:
            raise InvalidArgument("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else random.Random(0)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = zeta(n, theta)
        self._zeta2theta = zeta(2, theta)
        if n > 2:
            self._eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                         / (1.0 - self._zeta2theta / self._zetan))
        else:
            # For n <= 2 every draw lands in the closed-form branches of
            # next() (u * zeta(n) < 1 + 0.5**theta), so eta is never used.
            self._eta = 0.0

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity with hot items scattered over the keyspace.

    YCSB hashes the zipfian rank so that popular items are not clustered
    at low key values (which would artificially improve tree locality).
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 rng: random.Random | None = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        rank = self._zipf.next()
        return hash64(rank.to_bytes(8, "little"), 0x5C4A) % self.n


class LatestGenerator:
    """Zipfian over recency for YCSB-D: recently inserted items are hot.

    ``max_index`` is the index of the most recently inserted item; callers
    bump it via :meth:`advance` as the insert portion of the workload runs.
    """

    def __init__(self, initial_count: int, theta: float = ZIPFIAN_CONSTANT,
                 rng: random.Random | None = None):
        if initial_count <= 0:
            raise InvalidArgument("initial_count must be positive")
        self._rng = rng if rng is not None else random.Random(0)
        self.theta = theta
        self.max_index = initial_count - 1
        # Re-deriving zeta on every insert is O(n); YCSB uses an
        # incrementally-updated zipfian.  A fixed-horizon zipfian over the
        # most recent window is an accurate, cheap approximation.
        self._window = min(initial_count, 1 << 16)
        self._zipf = ZipfianGenerator(self._window, theta, self._rng)

    def advance(self, new_count: int = 1) -> None:
        """Record ``new_count`` newly inserted items."""
        self.max_index += new_count

    def next(self) -> int:
        offset = self._zipf.next()
        idx = self.max_index - offset
        return idx if idx >= 0 else 0


def zipf_pmf(n: int, theta: float) -> list:
    """Exact probability mass function of the zipfian distribution.

    Used by tests to validate the samplers against theory.
    """
    zn = zeta(n, theta)
    return [1.0 / (i ** theta) / zn for i in range(1, n + 1)]


def expected_unique_fraction(n: int, samples: int, theta: float) -> float:
    """Expected fraction of distinct items in ``samples`` zipfian draws.

    A coarse analytic helper used by workload sizing code: for item i with
    probability p_i, P(drawn at least once) = 1 - (1 - p_i)^samples.
    """
    pmf = zipf_pmf(n, theta)
    return sum(1.0 - math.exp(samples * math.log1p(-p)) for p in pmf) / n
