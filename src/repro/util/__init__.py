"""Shared low-level utilities: bit packing, hashing, checksums, distributions."""

from .bits import BitField, BitStruct, round_up, u64_from_bytes, u64_to_bytes
from .checksum import leaf_checksum, verify
from .hashing import (
    ConsistentHashRing,
    fingerprint,
    hash64,
    hash_pair,
    prefix_hash42,
)
from .zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
    zipf_pmf,
)

__all__ = [
    "BitField",
    "BitStruct",
    "round_up",
    "u64_from_bytes",
    "u64_to_bytes",
    "leaf_checksum",
    "verify",
    "ConsistentHashRing",
    "fingerprint",
    "hash64",
    "hash_pair",
    "prefix_hash42",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "zeta",
    "zipf_pmf",
]
