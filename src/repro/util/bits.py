"""Bit-field packing helpers.

All on-"wire" structures in this library (ART headers, slots, RACE hash
entries) are packed 64-bit little-endian words built out of named bit
fields.  :class:`BitField` and :class:`BitStruct` give those layouts a
single declarative definition with symmetric ``pack``/``unpack``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..errors import InvalidArgument

_U64 = struct.Struct("<Q")

U64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class BitField:
    """A named contiguous run of bits inside a 64-bit word."""

    name: str
    shift: int
    width: int

    @property
    def mask(self) -> int:
        return ((1 << self.width) - 1) << self.shift

    def get(self, word: int) -> int:
        return (word >> self.shift) & ((1 << self.width) - 1)

    def set(self, word: int, value: int) -> int:
        limit = 1 << self.width
        if not 0 <= value < limit:
            raise InvalidArgument(
                f"value {value} does not fit in field {self.name!r} "
                f"({self.width} bits)"
            )
        return (word & ~self.mask) | (value << self.shift)


class BitStruct:
    """A 64-bit word made of consecutive :class:`BitField` entries.

    Fields are declared low-bit-first as ``(name, width)`` pairs.  Unused
    high bits are allowed; overlapping or overflowing fields are not.
    """

    def __init__(self, name: str, fields: Iterable[Tuple[str, int]]):
        self.name = name
        self.fields: Dict[str, BitField] = {}
        shift = 0
        for fname, width in fields:
            if width <= 0:
                raise InvalidArgument(f"field {fname!r} must have positive width")
            if fname in self.fields:
                raise InvalidArgument(f"duplicate field {fname!r}")
            self.fields[fname] = BitField(fname, shift, width)
            shift += width
        if shift > 64:
            raise InvalidArgument(f"{name}: fields occupy {shift} bits > 64")
        self.total_bits = shift
        # Flattened (shift, width, value-limit, positioned-mask) per field:
        # pack/unpack sit under every node encode/decode, so they work on
        # plain tuples instead of calling BitField methods per field.
        self._packers = {fname: (f.shift, f.width, 1 << f.width, f.mask)
                         for fname, f in self.fields.items()}
        self._unpackers = [(fname, f.shift, (1 << f.width) - 1)
                           for fname, f in self.fields.items()]

    def pack(self, **values: int) -> int:
        """Build a word from field values; unspecified fields are zero."""
        word = 0
        packers = self._packers
        for fname, value in values.items():
            try:
                shift, width, limit, mask = packers[fname]
            except KeyError:
                raise InvalidArgument(f"{self.name} has no field {fname!r}") from None
            if not 0 <= value < limit:
                raise InvalidArgument(
                    f"value {value} does not fit in field {fname!r} "
                    f"({width} bits)"
                )
            word = (word & ~mask) | (value << shift)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Explode a word into a dict of all field values."""
        if not 0 <= word <= U64_MASK:
            raise InvalidArgument("word out of 64-bit range")
        return {fname: (word >> shift) & mask
                for fname, shift, mask in self._unpackers}

    def get(self, word: int, fname: str) -> int:
        return self.fields[fname].get(word)

    def set(self, word: int, fname: str, value: int) -> int:
        return self.fields[fname].set(word, value)


def u64_to_bytes(word: int) -> bytes:
    """Encode a 64-bit word little-endian (the library's wire order)."""
    return _U64.pack(word & U64_MASK)


def u64_from_bytes(data: bytes, offset: int = 0) -> int:
    """Decode a little-endian 64-bit word from ``data`` at ``offset``."""
    return _U64.unpack_from(data, offset)[0]


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``."""
    if multiple <= 0:
        raise InvalidArgument("multiple must be positive")
    return ((value + multiple - 1) // multiple) * multiple
