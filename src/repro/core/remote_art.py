"""The remote ART engine: index operations over the Fig-3 byte layouts.

This module implements everything the three evaluated systems share - the
descent loop, leaf installation, leaf/edge splits, node type switches,
deletion and range scans - as op generators against simulated MN memory.
The systems differ only in *how a client reaches a starting node* and in
*what bookkeeping follows structural changes*, so those points are
template-method hooks:

==================  ========================  ==========================
hook                Sphinx                     SMART / ART-on-DM
==================  ========================  ==========================
``locate_start``    filter cache + INHT       cached-node walk / root
``note_visited``    (nothing)                 fill the CN node cache
``on_path``         filter freshness insert   (nothing)
``after_new_inner`` INHT insert + filter      (nothing)
``after_switch``    INHT entry CAS            n/a (SMART never switches)
``node_type_for``   smallest fitting type     SMART: always Node-256
==================  ========================  ==========================

Concurrency follows the paper's Sec. III-C: lock-free reads validated by
header metadata (status / depth / 42-bit prefix hash) and leaf checksums;
node-grained header locks for structural writes; doorbell batching to
piggyback lock acquisition onto data writes; old nodes marked *Invalid*
after a type switch so readers holding stale pointers retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..art.keys import common_prefix_len
from ..art.layout import (
    HEADER_SIZE,
    NODE256,
    NODE_CAPACITY,
    SLOT_SIZE,
    STATUS_IDLE,
    STATUS_INVALID,
    Header,
    NodeView,
    Slot,
    decode_leaf,
    decode_node,
    encode_leaf,
    encode_node,
    leaf_units_for,
    next_node_type,
    node_size,
    smallest_type_for,
)
from ..dm.cluster import Cluster
from ..dm.memory import addr_mn, format_addr
from ..dm.rdma import Batch, CasOp, LocalCompute, ReadOp, WriteOp
from ..errors import InjectedFault, ReproError, RetryLimitExceeded
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..obs.counters import Counters
from ..util.bits import u64_to_bytes
from ..util.hashing import prefix_hash42
from . import leaf as leaf_ops
from .lock import idle_header, invalidate_op, locked_header, try_lock_node, unlock_op

RETRY = object()
"""Internal sentinel: the attempt raced a concurrent writer; re-run it."""

EMPTY_SUBTREE = object()
"""Sentinel from prefix recovery: the subtree holds no live leaves.

Deletes clear slots without collapsing inner nodes (paper Sec. IV), so a
node can end up childless; an insert whose key diverges at such a node
cannot learn its compressed prefix from a leaf and instead replaces the
empty node outright (see ``_replace_empty_child``)."""

INNER_CATEGORY = "inner"
LEAF_ALIGN = 64


@dataclass
class TreeMetrics:
    """Per-client operation/bookkeeping counters."""

    searches: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    scans: int = 0
    op_restarts: int = 0
    fp_restarts: int = 0
    fault_restarts: int = 0  # restarts caused by injected faults
    lock_failures: int = 0
    leaf_splits: int = 0
    edge_splits: int = 0
    type_switches: int = 0
    empty_replacements: int = 0
    stale_filter_fills: int = 0

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def counters(self) -> Counters:
        return Counters(self.as_dict())


@dataclass
class _ScanState:
    """Mutable state of one range scan (results + deferred leaf reads)."""

    start_key: bytes
    count: Optional[int]
    hi: Optional[bytes]
    results: List[Tuple[bytes, bytes]] = None  # type: ignore[assignment]
    pending: List[Slot] = None  # type: ignore[assignment]
    done: bool = False
    flush_chunk: int = 64  # buffer bound for unbounded (hi-only) scans

    def __post_init__(self):
        self.results = []
        self.pending = []

    def satisfied(self) -> bool:
        return self.count is not None and len(self.results) >= self.count

    def maybe_satisfied(self) -> bool:
        """True when the buffered leaves could already cover the budget."""
        return self.count is not None and \
            len(self.results) + len(self.pending) >= self.count

    def buffer_full(self) -> bool:
        if self.count is not None:
            return len(self.results) + len(self.pending) >= self.count
        return len(self.pending) >= self.flush_chunk


@dataclass
class OpContext:
    """State threaded through one logical operation's retries."""

    key: bytes
    limit: int  # longest prefix length locate_start may use
    attempt: int = 0  # retry number; caches revalidate when attempt > 0

    def shrink(self, new_limit: int) -> None:
        self.limit = min(self.limit, max(new_limit, 0))


class RemoteArtTree:
    """Base class: a client of a remote ART living in MN memory."""

    def __init__(self, cluster: Cluster, root_addr: int,
                 retry: RetryPolicy | None = None):
        self.cluster = cluster
        self.root_addr = root_addr
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.retry.validate()
        self.metrics = TreeMetrics()
        self.scan_batched = True
        import random as _random
        # Cluster-scoped seed: a process-global counter here would tie
        # the jitter stream to process history (see Cluster.next_seed).
        self._backoff_rng = _random.Random(cluster.next_seed(0xBACC0FF))

    def counters(self) -> Counters:
        """Per-client counters in the shared :class:`repro.obs.Counters`
        shape (subclasses merge their cache/filter counters in)."""
        return self.metrics.counters()

    @property
    def max_retries(self) -> int:
        return self.retry.max_retries

    @property
    def backoff_ns(self) -> int:
        return self.retry.backoff_ns

    def _backoff_delay(self, attempt: int) -> int:
        """Exponential backoff with jitter (hot zipfian keys put many
        writers on one leaf lock; jitter breaks the retry convoy)."""
        return self.retry.backoff_delay(self._backoff_rng, attempt)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def create_root(cluster: Cluster) -> int:
        """Allocate and initialize the (always Node-256) root."""
        from ..dm.memory import addr_offset
        addr = cluster.alloc_for_prefix(b"", node_size(NODE256),
                                        INNER_CATEGORY)
        header = Header(STATUS_IDLE, NODE256, 0, prefix_hash42(b""), 0)
        image = encode_node(header, [None] * NODE_CAPACITY[NODE256])
        cluster.memories[addr_mn(addr)].write(  # lint: disable=L001
            addr_offset(addr), image)
        return addr

    # ------------------------------------------------------------------
    # Policy hooks (overridden by Sphinx / SMART)
    # ------------------------------------------------------------------
    def node_type_for(self, child_count: int) -> int:
        return smallest_type_for(child_count)

    def grown_type(self, node_type: int) -> int:
        return next_node_type(node_type)

    def locate_start(self, ctx: OpContext):
        """Default: read the root (one round trip).

        Returns ``(addr, view, trusted)``.  ``trusted`` is False when the
        view may be stale (SMART's CN node cache); the descent loops then
        refresh the node before concluding a key *absent* or acting on
        it structurally - positive results and CAS-guarded mutations are
        safe on untrusted views.
        """
        view = yield from self._read_node(self.root_addr, NODE256)
        if view is None:
            return RETRY
        return self.root_addr, view, True

    def note_visited(self, addr: int, view: NodeView) -> None:
        """Called after every remote inner-node read (SMART cache fill)."""

    def note_leaf(self, key: bytes, addr: int, units: int) -> None:
        """Called whenever an op pinned down ``key``'s live leaf address
        (positive search, installed/updated/split-off leaf).  Sphinx's
        optional leaf locator feeds on this; the default is a no-op.
        Plain method, never a generator: noting a leaf costs no verbs."""

    def forget_leaf(self, key: bytes) -> None:
        """Called once ``key``'s leaf is deleted (Sphinx locator drop)."""

    def invalidate_hint(self, addr: int) -> None:
        """Called when a node is discovered Invalid (SMART cache drop)."""

    def on_path(self, prefix: bytes) -> None:
        """Called for every on-path inner prefix (Sphinx filter refresh)."""

    def after_new_inner(self, prefix: bytes, addr: int, node_type: int):
        """Bookkeeping after a split created an inner node (op generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    def make_split_coupling(self, prefix: bytes, addr: int, node_type: int):
        """Optional doorbell piggyback for split bookkeeping.

        Sphinx returns an object with ``pre_ops() -> [Verb]`` (extra verbs
        riding the split's node-write batch), ``parse(results)`` and
        ``commit()`` (op generator run once the split is visible); the
        default None makes splits fall back to :meth:`after_new_inner`.
        """
        return None

    def after_type_switch(self, prefix: bytes, old_addr: int, old_type: int,
                          new_addr: int, new_type: int):
        """Bookkeeping after a node type switch (op generator)."""
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Small shared helpers
    # ------------------------------------------------------------------
    def _read_node(self, addr: int, node_type: int):
        """Read + decode a node; None means the read was inconsistent
        (freed/retyped memory) and the operation should retry."""
        data = yield ReadOp(addr, node_size(node_type))
        try:
            view = decode_node(data)
        except ReproError:
            return None
        if view.header.node_type != node_type:
            return None
        self.note_visited(addr, view)
        return view

    @staticmethod
    def _slot_addr(node_addr: int, index: int) -> int:
        return node_addr + HEADER_SIZE + index * SLOT_SIZE

    def _alloc_leaf(self, key: bytes, value: bytes) -> Tuple[int, int]:
        units = leaf_units_for(len(key), len(value))
        addr = self.cluster.alloc_for_leaf(key, units * LEAF_ALIGN)
        return addr, units

    def _free_leaf(self, addr: int, units: int) -> None:
        self.cluster.free(addr, units * LEAF_ALIGN, leaf_ops.LEAF_CATEGORY)

    def _alloc_inner(self, prefix: bytes, node_type: int) -> int:
        return self.cluster.alloc_for_prefix(prefix, node_size(node_type),
                                             INNER_CATEGORY)

    def _free_inner(self, addr: int, node_type: int) -> None:
        """Release a never-published node (safe to recycle immediately)."""
        self.cluster.free(addr, node_size(node_type), INNER_CATEGORY)

    def _retire_inner(self, addr: int, node_type: int) -> None:
        """Release a node that remote readers may still reach through
        stale pointers (type-switch victims): accounting-only free."""
        self.cluster.retire(addr, node_size(node_type), INNER_CATEGORY)

    def _build_node_image(self, header: Header,
                          children: List[Slot]) -> bytes:
        """Serialize a node from a child list, honouring direct indexing
        for Node-256 and append order for the smaller types."""
        capacity = NODE_CAPACITY[header.node_type]
        slots: List[Optional[Slot]] = [None] * capacity
        if header.node_type == NODE256:
            for child in children:
                slots[child.partial] = child
        else:
            if len(children) > capacity:
                raise ReproError("too many children for node type")
            for i, child in enumerate(children):
                slots[i] = child
        return encode_node(header, slots)

    # ------------------------------------------------------------------
    # Retry harness
    # ------------------------------------------------------------------
    def _run(self, once, ctx: OpContext, op_name: str):
        retry = self.retry
        deadline = None
        if retry.op_timeout_ns:
            deadline = self.cluster.engine.now + retry.op_timeout_ns
        for attempt in range(retry.max_retries):
            ctx.attempt = attempt
            try:
                result = yield from once(ctx)
            except InjectedFault:
                # A lost completion / NAK surfaced mid-attempt: any
                # partially applied state is handled by the normal
                # validation on the next descent.
                self.metrics.fault_restarts += 1
                result = RETRY
            else:
                if result is not RETRY:
                    return result
                self.metrics.op_restarts += 1
            delay = self._backoff_delay(attempt)
            if deadline is not None:
                # Clamp the sleep to the remaining budget: the final
                # backoff must not overshoot op_timeout_ns before the
                # deadline check fires (an op that times out should do
                # so at the deadline, not a full backoff past it).
                remaining = deadline - self.cluster.engine.now
                if remaining <= 0:
                    raise RetryLimitExceeded(
                        f"{op_name}({ctx.key!r}) timed out after "
                        f"{retry.op_timeout_ns} ns of retries",
                        addr=self.root_addr)
                if delay > remaining:
                    delay = remaining
            yield LocalCompute(delay)
            if deadline is not None and self.cluster.engine.now >= deadline:
                raise RetryLimitExceeded(
                    f"{op_name}({ctx.key!r}) timed out after "
                    f"{retry.op_timeout_ns} ns of retries",
                    addr=self.root_addr)
        raise RetryLimitExceeded(
            f"{op_name}({ctx.key!r}) exceeded {retry.max_retries} retries",
            addr=self.root_addr)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: bytes):
        """Op generator: value for ``key`` or None."""
        self.metrics.searches += 1
        result = yield from self._run(self._search_once,
                                      OpContext(key, len(key) - 1), "search")
        return result

    def _refresh_node(self, addr: int, view: NodeView):
        """Re-read an untrusted (cached) node before a negative verdict."""
        fresh = yield from self._read_node(addr, view.header.node_type)
        return fresh

    def _search_once(self, ctx: OpContext):
        key = ctx.key
        located = yield from self.locate_start(ctx)
        if located is RETRY:
            return RETRY
        cur_addr, cur, trusted = located
        while True:
            header = cur.header
            if header.status == STATUS_INVALID:
                self.invalidate_hint(cur_addr)
                return RETRY
            depth = header.depth
            if depth >= len(key):
                # Can only happen off-path (filter false positive).
                self.metrics.fp_restarts += 1
                ctx.shrink(depth - 1)
                return RETRY
            slot = cur.find_child(key[depth])
            if slot is None:
                if not trusted:
                    cur = yield from self._refresh_node(cur_addr, cur)
                    if cur is None:
                        return RETRY
                    trusted = True
                    continue
                return None
            if slot.is_leaf:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if leaf.status == STATUS_INVALID:
                    return RETRY  # mid-delete; retry until slot clears
                if leaf.key == key:
                    self.note_leaf(key, slot.addr, slot.size_class)
                    return leaf.value
                if not trusted:
                    cur = yield from self._refresh_node(cur_addr, cur)
                    if cur is None:
                        return RETRY
                    trusted = True
                    continue
                if common_prefix_len(key, leaf.key) < depth:
                    # We started from an unmatched node (double hash
                    # collision, paper Sec. III-B): retry shorter.
                    self.metrics.fp_restarts += 1
                    ctx.shrink(depth - 1)
                    return RETRY
                return None
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None:
                return RETRY
            cheader = child.header
            if cheader.status == STATUS_INVALID:
                self.invalidate_hint(slot.addr)
                return RETRY
            if cheader.depth <= depth:
                return RETRY  # structurally impossible -> stale read
            if (cheader.depth < len(key)
                    and cheader.prefix_hash
                    == prefix_hash42(key[:cheader.depth])):
                self.on_path(key[:cheader.depth])
                cur_addr, cur = slot.addr, child
                trusted = True
                continue
            if not trusted:
                cur = yield from self._refresh_node(cur_addr, cur)
                if cur is None:
                    return RETRY
                trusted = True
                continue
            return None  # subtree prefix diverges from the key

    # ------------------------------------------------------------------
    # Insert (upsert)
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: bytes):
        """Op generator: True if the key was new, False if overwritten."""
        self.metrics.inserts += 1
        result = yield from self._run(
            lambda ctx: self._insert_once(ctx, value),
            OpContext(key, len(key) - 1), "insert")
        return result

    def _insert_once(self, ctx: OpContext, value: bytes):
        # Inserts need no trust refreshes: every mutation below is CAS-
        # guarded (count-bumping lock CAS, slot CAS), so a stale cached
        # view can only cause a failed CAS and a retry, never corruption.
        key = ctx.key
        located = yield from self.locate_start(ctx)
        if located is RETRY:
            return RETRY
        cur_addr, cur, _trusted = located
        parent: Optional[Tuple[int, NodeView]] = None
        while True:
            header = cur.header
            if header.status == STATUS_INVALID:
                self.invalidate_hint(cur_addr)
                return RETRY
            depth = header.depth
            if depth >= len(key):
                self.metrics.fp_restarts += 1
                ctx.shrink(depth - 1)
                return RETRY
            slot = cur.find_child(key[depth])
            if slot is None:
                outcome = yield from self._install_new_leaf(
                    cur_addr, cur, parent, key, value)
                return True if outcome is not RETRY else RETRY
            if slot.is_leaf:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if leaf.status != STATUS_IDLE:
                    return RETRY
                if leaf.key == key:
                    outcome = yield from self._update_leaf(
                        cur_addr, cur, slot, leaf, value)
                    return False if outcome is not RETRY else RETRY
                split_depth = common_prefix_len(key, leaf.key)
                if split_depth < depth:
                    self.metrics.fp_restarts += 1
                    ctx.shrink(depth - 1)
                    return RETRY
                outcome = yield from self._split_at_slot(
                    cur_addr, cur, slot, key, value,
                    existing_key=leaf.key, split_depth=split_depth)
                if outcome is not RETRY:
                    self.metrics.leaf_splits += 1
                    return True
                return RETRY
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None:
                return RETRY
            cheader = child.header
            if cheader.status == STATUS_INVALID:
                self.invalidate_hint(slot.addr)
                return RETRY
            if cheader.depth <= depth:
                return RETRY
            if (cheader.depth < len(key)
                    and cheader.prefix_hash
                    == prefix_hash42(key[:cheader.depth])):
                self.on_path(key[:cheader.depth])
                parent = (cur_addr, cur)
                cur_addr, cur = slot.addr, child
                continue
            # The child's compressed prefix diverges: split the edge.
            witness = yield from self._recover_leaf_key(child)
            if witness is None:
                return RETRY
            if witness is EMPTY_SUBTREE:
                outcome = yield from self._replace_empty_child(
                    cur_addr, cur, slot, child, key, value)
                return True if outcome is not RETRY else RETRY
            child_prefix = witness[:cheader.depth]
            split_depth = common_prefix_len(key, child_prefix)
            if not depth < split_depth < cheader.depth:
                return RETRY  # raced a structural change
            outcome = yield from self._split_at_slot(
                cur_addr, cur, slot, key, value,
                existing_key=child_prefix, split_depth=split_depth)
            if outcome is not RETRY:
                self.metrics.edge_splits += 1
                return True
            return RETRY

    def _install_new_leaf(self, node_addr: int, view: NodeView,
                          parent: Optional[Tuple[int, NodeView]],
                          key: bytes, value: bytes):
        """Add a leaf child to ``view`` (which has no child for the byte)."""
        if view.header.status != STATUS_IDLE:
            # A locked view is mid-install: its count is already bumped
            # but the new slot may not be visible yet, so the count-CAS
            # below would not protect against a duplicate partial byte.
            return RETRY
        depth = view.header.depth
        leaf_addr, units = self._alloc_leaf(key, value)
        leaf_image = encode_leaf(key, value)
        slot_word = Slot(addr=leaf_addr, partial=key[depth],
                         size_class=units, is_leaf=True, occupied=True).pack()
        if view.header.node_type == NODE256:
            # Lock-free install: leaf write + slot CAS in one doorbell.
            _w, cas = yield Batch([
                WriteOp(leaf_addr, leaf_image),
                CasOp(self._slot_addr(node_addr, key[depth]), 0, slot_word),
            ])
            if cas[0]:
                self.note_leaf(key, leaf_addr, units)
                return True
            self._free_leaf(leaf_addr, units)
            return RETRY
        # Small node.  The header's count field is an append cursor: the
        # lock CAS expects (Idle, count=k) and installs (Locked, k+1), so
        # it doubles as a version check - it fails if *any* concurrent
        # install touched the node since our view, which is exactly when
        # our "no child for this byte" conclusion might be stale.  On
        # success the new slot is appended at index k; the paper's
        # doorbell batching piggybacks the leaf write on the lock CAS and
        # the unlock on the slot write (2 round trips total, no re-read).
        header = view.header
        count = header.count
        if count >= NODE_CAPACITY[header.node_type]:
            outcome = yield from self._install_into_full(
                node_addr, view, parent, key, slot_word,
                leaf_addr, leaf_image)
            if outcome is RETRY:
                self._free_leaf(leaf_addr, units)
                return RETRY
            self.note_leaf(key, leaf_addr, units)
            return True
        idle = Header(STATUS_IDLE, header.node_type, header.depth,
                      header.prefix_hash, count)
        locked = Header(1, header.node_type, header.depth,
                        header.prefix_hash, count + 1)
        unlocked = Header(STATUS_IDLE, header.node_type, header.depth,
                          header.prefix_hash, count + 1)
        cas, _w = yield Batch([
            CasOp(node_addr, idle.pack(), locked.pack(), lease=("node",)),
            WriteOp(leaf_addr, leaf_image),
        ])
        if not cas[0]:
            self.metrics.lock_failures += 1
            self._free_leaf(leaf_addr, units)
            return RETRY
        yield Batch([
            WriteOp(self._slot_addr(node_addr, count),
                    u64_to_bytes(slot_word)),
            WriteOp(node_addr, u64_to_bytes(unlocked.pack()),
                    lease=("release",)),
        ])
        self.note_leaf(key, leaf_addr, units)
        return True

    def _install_into_full(self, node_addr: int, view: NodeView,
                           parent: Optional[Tuple[int, NodeView]],
                           key: bytes, slot_word: int,
                           leaf_addr: int, leaf_image: bytes):
        """Install into a node whose append cursor hit capacity: reuse a
        hole left by a delete if one exists, otherwise type-switch."""
        cas, _w = yield Batch([
            CasOp(node_addr, idle_header(view.header).pack(),
                  locked_header(view.header).pack(), lease=("node",)),
            WriteOp(leaf_addr, leaf_image),
        ])
        if not cas[0]:
            self.metrics.lock_failures += 1
            return RETRY
        fresh = yield from self._read_node(node_addr, view.header.node_type)
        if fresh is None or fresh.find_child(key[view.header.depth]) \
                is not None:
            yield unlock_op(node_addr, view.header)
            return RETRY
        free_index = fresh.first_free_index()
        if free_index is not None:
            yield Batch([
                WriteOp(self._slot_addr(node_addr, free_index),
                        u64_to_bytes(slot_word)),
                unlock_op(node_addr, fresh.header),
            ])
            return True
        outcome = yield from self._type_switch(
            node_addr, fresh, parent, key, extra_child=Slot.unpack(slot_word))
        return outcome

    def _replace_empty_child(self, node_addr: int, view: NodeView,
                             slot: Slot, child: NodeView, key: bytes,
                             value: bytes):
        """Swap a verifiably empty inner child for a fresh leaf.

        The child is locked first so no concurrent insert can land in it,
        re-checked for emptiness, unlinked via the parent slot, and only
        then marked Invalid and retired.  Its hash-table entry cannot be
        removed (the prefix of an empty node is unrecoverable); lookups
        tolerate entries pointing at Invalid nodes, so the entry is a
        bounded space leak, not a correctness issue.
        """
        locked = yield from try_lock_node(slot.addr, child.header)
        if not locked:
            self.metrics.lock_failures += 1
            return RETRY
        fresh = yield from self._read_node(slot.addr, slot.size_class)
        if fresh is None:
            yield unlock_op(slot.addr, child.header)
            return RETRY
        if fresh.occupied_count() > 0:
            yield unlock_op(slot.addr, fresh.header)
            return RETRY
        leaf_addr, units = self._alloc_leaf(key, value)
        depth = view.header.depth
        new_word = Slot(addr=leaf_addr, partial=key[depth],
                        size_class=units, is_leaf=True, occupied=True).pack()
        yield WriteOp(leaf_addr, encode_leaf(key, value))
        ok = yield from self._replace_slot(node_addr, view, slot, new_word)
        if not ok:
            yield unlock_op(slot.addr, fresh.header)
            self._free_leaf(leaf_addr, units)
            return RETRY
        yield invalidate_op(slot.addr, fresh.header)
        self.invalidate_hint(slot.addr)
        self._retire_inner(slot.addr, slot.size_class)
        self.metrics.empty_replacements += 1
        self.note_leaf(key, leaf_addr, units)
        return True

    def _update_leaf(self, node_addr: int, view: NodeView, slot: Slot,
                     leaf, value: bytes):
        """Overwrite an existing leaf's value, in place when it fits.

        Hot keys see heavy lock contention on one leaf; losing the lock
        CAS retries *here* (re-read + CAS, 2 round trips) with jittered
        backoff instead of restarting the whole operation (~5 round
        trips), which is both cheaper and far less convoy-prone.
        """
        if leaf_units_for(len(leaf.key), len(value)) <= leaf.units:
            for attempt in range(self.retry.inplace_update_retries):
                ok = yield from leaf_ops.in_place_update(slot.addr, leaf,
                                                         value)
                if ok:
                    self.note_leaf(leaf.key, slot.addr, leaf.units)
                    return True
                yield LocalCompute(self._backoff_delay(attempt))
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if (leaf.status != STATUS_IDLE
                        or not leaf.checksum_ok
                        or leaf_units_for(len(leaf.key), len(value))
                        > leaf.units):
                    return RETRY
            return RETRY
        # Out-of-place: take ownership of the old leaf first, then
        # repoint the parent slot and retire the old leaf.
        from ..art.layout import STATUS_LOCKED, leaf_status_word
        idle = leaf_status_word(STATUS_IDLE, leaf.units, len(leaf.key),
                                len(leaf.value))
        locked = leaf_status_word(STATUS_LOCKED, leaf.units, len(leaf.key),
                                  len(leaf.value))
        swapped, _ = yield CasOp(slot.addr, idle, locked, lease=("leaf",))
        if not swapped:
            return RETRY
        new_addr, units = self._alloc_leaf(leaf.key, value)
        new_word = Slot(addr=new_addr, partial=slot.partial,
                        size_class=units, is_leaf=True, occupied=True).pack()
        yield WriteOp(new_addr, encode_leaf(leaf.key, value))
        ok = yield from self._replace_slot(node_addr, view, slot, new_word)
        if not ok:
            # Roll back: release the old leaf and drop the new one.
            unlocked, _ = yield CasOp(slot.addr, locked, idle,
                                      lease=("release",))
            if not unlocked:
                # We hold this leaf's lock; nobody may touch the word.
                raise ReproError(
                    f"leaf unlock CAS failed while holding the lock at "
                    f"{format_addr(slot.addr)}: index corruption")
            self._free_leaf(new_addr, units)
            return RETRY
        invalid = leaf_status_word(STATUS_INVALID, leaf.units, len(leaf.key),
                                   len(leaf.value))
        yield WriteOp(slot.addr, invalid.to_bytes(8, "little"),
                      lease=("release",))
        self._free_leaf(slot.addr, leaf.units)
        self.note_leaf(leaf.key, new_addr, units)
        return True

    def _split_at_slot(self, node_addr: int, view: NodeView, slot: Slot,
                       key: bytes, value: bytes, existing_key: bytes,
                       split_depth: int):
        """Replace ``slot`` with a new inner node holding the existing
        child and a new leaf for ``key`` (leaf split or edge split)."""
        prefix = key[:split_depth]
        leaf_addr, units = self._alloc_leaf(key, value)
        node_type = self.node_type_for(2)
        inner_addr = self._alloc_inner(prefix, node_type)
        existing_child = Slot(addr=slot.addr,
                              partial=existing_key[split_depth],
                              size_class=slot.size_class,
                              is_leaf=slot.is_leaf, occupied=True)
        new_leaf_child = Slot(addr=leaf_addr, partial=key[split_depth],
                              size_class=units, is_leaf=True, occupied=True)
        header = Header(STATUS_IDLE, node_type, split_depth,
                        prefix_hash42(prefix), 2)
        image = self._build_node_image(header,
                                       [existing_child, new_leaf_child])
        coupling = self.make_split_coupling(prefix, inner_addr, node_type)
        extra_ops = coupling.pre_ops() if coupling is not None else []
        results = yield Batch([
            WriteOp(leaf_addr, encode_leaf(key, value)),
            WriteOp(inner_addr, image),
        ] + list(extra_ops))
        if coupling is not None and extra_ops:
            coupling.parse(results[2:])
        inner_slot = Slot(addr=inner_addr, partial=slot.partial,
                          size_class=node_type, is_leaf=False,
                          occupied=True).pack()
        ok = yield from self._replace_slot(node_addr, view, slot, inner_slot)
        if not ok:
            self._free_leaf(leaf_addr, units)
            self._free_inner(inner_addr, node_type)
            return RETRY
        if coupling is not None:
            yield from coupling.commit()
        else:
            yield from self.after_new_inner(prefix, inner_addr, node_type)
        self.note_leaf(key, leaf_addr, units)
        return True

    def _replace_slot(self, node_addr: int, view: NodeView, old_slot: Slot,
                      new_word: int):
        """Atomically swap one child slot of ``node_addr``.

        Node-256 slots are CASed lock-free (a Node-256 never type-switches,
        so the slot address is stable); smaller nodes take the node lock to
        exclude a concurrent type switch migrating the slots.
        """
        if view.header.node_type == NODE256:
            slot_addr = self._slot_addr(node_addr, old_slot.partial)
            swapped, _ = yield CasOp(slot_addr, old_slot.pack(), new_word)
            return swapped
        # Small node, 2 round trips: lock, then [slot CAS + unlock] in one
        # doorbell.  The slot CAS needs no fresh read - slot indexes are
        # stable (append-only cursor) and the CAS expected value detects
        # any concurrent replacement; the unlock rides the same batch, so
        # a failed CAS leaves the node consistent and the caller retries.
        index = view.find_index_by_addr(old_slot.addr)
        if index is None:
            return False
        locked = yield from try_lock_node(node_addr, view.header)
        if not locked:
            self.metrics.lock_failures += 1
            return False
        cas, _u = yield Batch([
            CasOp(self._slot_addr(node_addr, index), old_slot.pack(),
                  new_word),
            unlock_op(node_addr, view.header),
        ])
        return cas[0]

    def _type_switch(self, old_addr: int, fresh: NodeView,
                     parent: Optional[Tuple[int, NodeView]],
                     key: bytes, extra_child: Slot):
        """Grow a full node (whose lock we hold) into the next type.

        Order per the paper: make the new node visible via the parent
        slot, mark the old node Invalid, then repoint the hash-table
        entry (Sphinx hook).
        """
        header = fresh.header
        old_type = header.node_type
        new_type = self.grown_type(old_type)
        depth = header.depth
        prefix = key[:depth]
        children = fresh.occupied_slots() + [extra_child]
        new_header = Header(STATUS_IDLE, new_type, depth,
                            header.prefix_hash, len(children))
        new_addr = self._alloc_inner(prefix, new_type)
        yield WriteOp(new_addr, self._build_node_image(new_header, children))
        if parent is None:
            parent = yield from self._find_parent(key, old_addr, depth)
        if parent is None:
            yield unlock_op(old_addr, header)
            self._free_inner(new_addr, new_type)
            return RETRY
        parent_addr, parent_view = parent
        old_parent_slot = Slot(addr=old_addr,
                               partial=key[parent_view.header.depth],
                               size_class=old_type, is_leaf=False,
                               occupied=True)
        new_parent_word = Slot(addr=new_addr,
                               partial=key[parent_view.header.depth],
                               size_class=new_type, is_leaf=False,
                               occupied=True).pack()
        ok = yield from self._replace_slot(parent_addr, parent_view,
                                           old_parent_slot, new_parent_word)
        if not ok:
            yield unlock_op(old_addr, header)
            self._free_inner(new_addr, new_type)
            return RETRY
        yield invalidate_op(old_addr, header)
        yield from self.after_type_switch(prefix, old_addr, old_type,
                                          new_addr, new_type)
        self.invalidate_hint(old_addr)
        self._retire_inner(old_addr, old_type)
        self.metrics.type_switches += 1
        return True

    def _find_parent(self, key: bytes, child_addr: int, child_depth: int):
        """Locate the node whose slot points at ``child_addr`` (needed
        when a filter-located start node type-switches)."""
        ctx = OpContext(key, child_depth - 1, attempt=1)
        located = yield from self.locate_start(ctx)
        if located is RETRY:
            return None
        cur_addr, cur, _trusted = located
        # Descent-depth cap (max key length), not a retry budget.
        for _ in range(256):  # lint: disable=L006
            header = cur.header
            if header.status == STATUS_INVALID or header.depth >= child_depth:
                return None
            slot = cur.find_child(key[header.depth])
            if slot is None or slot.is_leaf:
                return None
            if slot.addr == child_addr:
                return cur_addr, cur
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None or child.header.status == STATUS_INVALID:
                return None
            cur_addr, cur = slot.addr, child
        return None

    def _recover_leaf_key(self, view: NodeView, depth_budget: int = 64):
        """Recover any full key stored under ``view`` (optimistic path
        compression needs leaf bytes to learn a node's real prefix).

        Returns the key, ``EMPTY_SUBTREE`` if the subtree verifiably holds
        no live leaves, or None on transient trouble (mid-delete leaves,
        retired nodes) - callers retry on None.
        """
        if depth_budget <= 0:
            return None
        occupied = view.occupied_slots()
        if not occupied:
            return EMPTY_SUBTREE
        transient = False
        for slot in occupied:
            if slot.is_leaf:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if leaf.status == STATUS_INVALID or not leaf.checksum_ok:
                    transient = True
                    continue
                return leaf.key
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None or child.header.status == STATUS_INVALID:
                transient = True
                continue
            sub = yield from self._recover_leaf_key(child, depth_budget - 1)
            if sub is EMPTY_SUBTREE:
                continue
            if sub is None:
                transient = True
                continue
            return sub
        return None if transient else EMPTY_SUBTREE

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def update(self, key: bytes, value: bytes):
        """Op generator: overwrite ``key``; False if the key is absent."""
        self.metrics.updates += 1
        result = yield from self._run(
            lambda ctx: self._update_once(ctx, value),
            OpContext(key, len(key) - 1), "update")
        return result

    def _update_once(self, ctx: OpContext, value: bytes):
        key = ctx.key
        located = yield from self.locate_start(ctx)
        if located is RETRY:
            return RETRY
        cur_addr, cur, trusted = located
        while True:
            header = cur.header
            if header.status == STATUS_INVALID:
                self.invalidate_hint(cur_addr)
                return RETRY
            depth = header.depth
            if depth >= len(key):
                self.metrics.fp_restarts += 1
                ctx.shrink(depth - 1)
                return RETRY
            slot = cur.find_child(key[depth])
            if slot is None:
                if not trusted:
                    cur = yield from self._refresh_node(cur_addr, cur)
                    if cur is None:
                        return RETRY
                    trusted = True
                    continue
                return False
            if slot.is_leaf:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if leaf.status != STATUS_IDLE:
                    return RETRY
                if leaf.key == key:
                    outcome = yield from self._update_leaf(
                        cur_addr, cur, slot, leaf, value)
                    return True if outcome is not RETRY else RETRY
                if not trusted:
                    cur = yield from self._refresh_node(cur_addr, cur)
                    if cur is None:
                        return RETRY
                    trusted = True
                    continue
                if common_prefix_len(key, leaf.key) < depth:
                    self.metrics.fp_restarts += 1
                    ctx.shrink(depth - 1)
                    return RETRY
                return False
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None:
                return RETRY
            if child.header.status == STATUS_INVALID:
                self.invalidate_hint(slot.addr)
                return RETRY
            if child.header.depth <= depth:
                return RETRY
            if (child.header.depth < len(key)
                    and child.header.prefix_hash
                    == prefix_hash42(key[:child.header.depth])):
                self.on_path(key[:child.header.depth])
                cur_addr, cur = slot.addr, child
                trusted = True
                continue
            if not trusted:
                cur = yield from self._refresh_node(cur_addr, cur)
                if cur is None:
                    return RETRY
                trusted = True
                continue
            return False

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes):
        """Op generator: remove ``key``; False if absent."""
        self.metrics.deletes += 1
        result = yield from self._run(self._delete_once,
                                      OpContext(key, len(key) - 1), "delete")
        return result

    def _delete_once(self, ctx: OpContext):
        key = ctx.key
        located = yield from self.locate_start(ctx)
        if located is RETRY:
            return RETRY
        cur_addr, cur, trusted = located
        while True:
            header = cur.header
            if header.status == STATUS_INVALID:
                self.invalidate_hint(cur_addr)
                return RETRY
            depth = header.depth
            if depth >= len(key):
                self.metrics.fp_restarts += 1
                ctx.shrink(depth - 1)
                return RETRY
            slot = cur.find_child(key[depth])
            if slot is None:
                if not trusted:
                    cur = yield from self._refresh_node(cur_addr, cur)
                    if cur is None:
                        return RETRY
                    trusted = True
                    continue
                return False
            if slot.is_leaf:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
                if leaf.status == STATUS_INVALID:
                    return RETRY  # another delete is mid-flight
                if leaf.key != key:
                    if not trusted:
                        cur = yield from self._refresh_node(cur_addr, cur)
                        if cur is None:
                            return RETRY
                        trusted = True
                        continue
                    if common_prefix_len(key, leaf.key) < depth:
                        self.metrics.fp_restarts += 1
                        ctx.shrink(depth - 1)
                        return RETRY
                    return False
                if leaf.status != STATUS_IDLE:
                    return RETRY
                ok = yield from leaf_ops.invalidate_leaf(slot.addr, leaf)
                if not ok:
                    return RETRY
                # The invalid leaf's slot must be cleared before we
                # finish (readers retry on Invalid leaves), and the leaf
                # block may only be freed once it is provably unlinked.
                # Care: a racing split/type switch (or a stale cached
                # parent view) can have RELINKED the leaf under a new
                # inner node - the clear must chase it to its *current*
                # parent, never assume "slot changed => already cleared".
                victim_addr, victim_units = slot.addr, leaf.units
                for _ in range(self.max_retries):
                    cleared = yield from self._replace_slot(
                        cur_addr, cur, slot, 0)
                    if cleared:
                        self.forget_leaf(key)
                        self._free_leaf(victim_addr, victim_units)
                        return True
                    found = yield from self._chase_leaf_slot(key,
                                                             victim_addr)
                    if found is RETRY:
                        yield LocalCompute(self.backoff_ns)
                        continue
                    if found is None:
                        # The key's path no longer reaches the victim:
                        # it is unlinked and safe to reclaim.
                        self.forget_leaf(key)
                        self._free_leaf(victim_addr, victim_units)
                        return True
                    cur_addr, cur, slot = found
                raise RetryLimitExceeded(
                    f"delete({key!r}) could not clear the leaf slot",
                    addr=victim_addr)
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None:
                return RETRY
            if child.header.status == STATUS_INVALID:
                self.invalidate_hint(slot.addr)
                return RETRY
            if child.header.depth <= depth:
                return RETRY
            if (child.header.depth < len(key)
                    and child.header.prefix_hash
                    == prefix_hash42(key[:child.header.depth])):
                cur_addr, cur = slot.addr, child
                trusted = True
                continue
            if not trusted:
                cur = yield from self._refresh_node(cur_addr, cur)
                if cur is None:
                    return RETRY
                trusted = True
                continue
            return False

    def _chase_leaf_slot(self, key: bytes, leaf_addr: int):
        """Find the (node, view, slot) currently linking ``leaf_addr`` on
        ``key``'s path, descending from the root with full validation.

        Returns the triple, None if the key's path *definitely* does not
        reach ``leaf_addr`` (it is unlinked), or RETRY on transient state
        (locked/invalid nodes mid-change) - the caller backs off.
        """
        cur_addr = self.root_addr
        cur = yield from self._read_node(cur_addr, NODE256)
        if cur is None:
            return RETRY
        # Descent-depth cap (max key length), not a retry budget.
        for _ in range(256):  # lint: disable=L006
            header = cur.header
            if header.status == STATUS_INVALID:
                return RETRY
            if header.depth >= len(key):
                return RETRY  # structurally off-path; re-examine later
            slot = cur.find_child(key[header.depth])
            if slot is None:
                return None  # path ends: the leaf is unlinked
            if slot.is_leaf:
                if slot.addr == leaf_addr:
                    return cur_addr, cur, slot
                return None  # path ends at a different leaf
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None or child.header.status == STATUS_INVALID:
                return RETRY
            if child.header.depth <= header.depth:
                return RETRY
            if (child.header.depth >= len(key)
                    or child.header.prefix_hash
                    != prefix_hash42(key[:child.header.depth])):
                return None  # subtree diverges: leaf unreachable via key
            cur_addr, cur = slot.addr, child
        return RETRY

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------
    def scan_count(self, start_key: bytes, count: int):
        """Op generator: first ``count`` pairs with key >= start_key.

        Scans traverse from the root (paper Sec. IV).  With doorbell
        batching (Sphinx, SMART) the leaf reads - "the main bottleneck of
        the workload" (Sec. V-B) - are deferred into a buffer and fetched
        in result-budget-sized batches that span subtree boundaries; the
        plain ART port issues every read sequentially.
        """
        self.metrics.scans += 1
        result = yield from self._run_scan(
            lambda: self._scan_count_once(start_key, count),
            f"scan_count({start_key!r})")
        return result

    def _scan_count_once(self, start_key: bytes, count: int):
        state = _ScanState(start_key=start_key, count=count, hi=None)
        root = yield from self._read_node(self.root_addr, NODE256)
        if root is None:
            return state.results
        yield from self._scan_rec(root, b"", state, True)
        yield from self._flush_leaves(state)
        return state.results[:count]

    def scan_range(self, lo: bytes, hi: bytes):
        """Op generator: all pairs with lo <= key <= hi."""
        self.metrics.scans += 1
        result = yield from self._run_scan(
            lambda: self._scan_range_once(lo, hi), f"scan_range({lo!r})")
        return result

    def _scan_range_once(self, lo: bytes, hi: bytes):
        state = _ScanState(start_key=lo, count=None, hi=hi)
        root = yield from self._read_node(self.root_addr, NODE256)
        if root is None:
            return state.results
        yield from self._scan_rec(root, b"", state, True)
        yield from self._flush_leaves(state)
        return state.results

    def _run_scan(self, once, op_name: str):
        """Whole-scan retry harness: scans are read-only, so an injected
        fault mid-traversal simply restarts the scan from the root."""
        retry = self.retry
        for attempt in range(retry.max_retries):
            try:
                result = yield from once()
            except InjectedFault:
                self.metrics.fault_restarts += 1
                yield LocalCompute(self._backoff_delay(attempt))
                continue
            return result
        raise RetryLimitExceeded(
            f"{op_name} exceeded {retry.max_retries} retries under faults",
            addr=self.root_addr)

    def _flush_leaves(self, state: "_ScanState"):
        """Fetch and filter the buffered leaf slots (one doorbell batch
        when batching is on, sequential reads otherwise)."""
        if not state.pending or state.done:
            state.pending.clear()
            return
        reads = [ReadOp(s.addr, s.size_class * LEAF_ALIGN)
                 for s in state.pending]
        if self.scan_batched:
            blobs = yield Batch(reads)
        else:
            blobs = []
            for op in reads:
                blobs.append((yield op))
        for slot, blob in zip(state.pending, blobs):
            if state.satisfied():
                break
            leaf = decode_leaf(blob)
            if not leaf.checksum_ok:
                leaf = yield from leaf_ops.read_leaf(slot.addr,
                                                     slot.size_class)
            if leaf.status == STATUS_INVALID or not leaf.checksum_ok:
                continue
            if leaf.key < state.start_key:
                continue
            if state.hi is not None and leaf.key > state.hi:
                # Leaves are buffered in key order: nothing later fits.
                state.done = True
                break
            state.results.append((leaf.key, leaf.value))
        state.pending.clear()

    def _scan_rec(self, view: NodeView, known_prefix: bytes,
                  state: "_ScanState", ambiguous: bool):
        """DFS in key order, buffering leaf slots for batched fetching.

        Returns False once the scan is satisfied (stops the traversal).
        """
        start_key, hi = state.start_key, state.hi
        depth = view.header.depth
        real_prefix = known_prefix
        if depth > len(known_prefix):
            if not ambiguous and hi is None:
                pass  # whole subtree already known in-range below
            else:
                witness = yield from self._recover_leaf_key(view)
                if witness is EMPTY_SUBTREE or witness is None:
                    return True  # nothing live below (or mid-churn: skip)
                real_prefix = witness[:depth]
        if ambiguous:
            head = start_key[:depth]
            if real_prefix < head:
                return True   # entire subtree below the range start
            if real_prefix > head:
                ambiguous = False
        if hi is not None and real_prefix > hi[:depth]:
            state.done = True
            return False      # entire subtree above the range end
        threshold = start_key[depth] if ambiguous and depth < len(start_key) \
            else None
        children = sorted(view.occupied_slots(), key=lambda s: s.partial)
        if threshold is not None:
            children = [s for s in children if s.partial >= threshold]
        if hi is not None and depth < len(hi):
            # Conservative upper prune: children strictly above hi's byte
            # can only hold keys > hi when the prefix equals hi's head.
            if real_prefix == hi[:depth]:
                children = [s for s in children if s.partial <= hi[depth]]
        for slot in children:
            if state.satisfied() or state.done:
                return False
            if slot.is_leaf:
                state.pending.append(slot)
                if state.buffer_full():
                    yield from self._flush_leaves(state)
                    if state.satisfied() or state.done:
                        return False
                continue
            # Descend.  Before crossing a subtree boundary the buffered
            # budget may already cover the request: flush first so the
            # traversal can stop without reading another subtree.
            if state.maybe_satisfied():
                yield from self._flush_leaves(state)
                if state.satisfied() or state.done:
                    return False
            child = yield from self._read_node(slot.addr, slot.size_class)
            if child is None or child.header.status == STATUS_INVALID:
                continue
            child_ambiguous = ambiguous and slot.partial == threshold
            keep_going = yield from self._scan_rec(
                child, real_prefix + bytes([slot.partial]), state,
                child_ambiguous)
            if not keep_going:
                return False
        return True
