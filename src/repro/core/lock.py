"""Node-grained locks (paper Sec. III-C).

An ART node's header word doubles as its lock: the 2-bit status field is
CASed Idle -> Locked by structural writers.  Reads stay lock-free; readers
only *check* status and retry on Locked/Invalid nodes.  Because the rest
of the header (type, depth, prefix hash, creation-time count) never
changes over a node's lifetime, the CAS expected value is always known
from the last node read.
"""

from __future__ import annotations

from dataclasses import replace

from ..art.layout import STATUS_IDLE, STATUS_INVALID, STATUS_LOCKED, Header
from ..dm.rdma import CasOp, WriteOp
from ..util.bits import u64_to_bytes


def locked_header(header: Header) -> Header:
    return replace(header, status=STATUS_LOCKED)


def idle_header(header: Header) -> Header:
    return replace(header, status=STATUS_IDLE)


def invalid_header(header: Header) -> Header:
    return replace(header, status=STATUS_INVALID)


def try_lock_node(addr: int, header: Header):
    """CAS the node's header Idle -> Locked.  Returns True if acquired.

    ``header`` must be the header as last read (status Idle); a failed CAS
    means another writer got there first or the node went Invalid.

    The CAS carries a ``("node",)`` lease tag: when a
    :class:`repro.recover.RecoveryManager` is attached, the executor
    records who acquired this word so an orphaned lock (its owner
    crashed) can be expired and CAS-reclaimed.  The header itself has no
    spare bits for an owner/epoch, so the lease lives CN-side.
    """
    idle = idle_header(header)
    swapped, _old = yield CasOp(addr, idle.pack(),
                                locked_header(header).pack(),
                                lease=("node",))
    return swapped


def unlock_op(addr: int, header: Header) -> WriteOp:
    """The verb releasing a lock we hold (plain write; we own the node)."""
    return WriteOp(addr, u64_to_bytes(idle_header(header).pack()),
                   lease=("release",))


def invalidate_op(addr: int, header: Header) -> WriteOp:
    """The verb retiring a node after a type switch (write Invalid)."""
    return WriteOp(addr, u64_to_bytes(invalid_header(header).pack()),
                   lease=("release",))
