"""The Inner Node Hash Table (paper Sec. III-A).

One RACE-style table per memory node; the table on MN *m* holds the hash
entries of exactly the inner nodes that consistent hashing placed on *m*.
The table key is an inner node's **full prefix**; the 8-byte value packs
the node's address, a 12-bit fingerprint fp2 and the node type, so a
client that resolved a prefix locally (via the succinct filter cache) can
reach the node with one bucket read plus one node read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..art.layout import HashEntry
from ..dm.cluster import Cluster
from ..race.client import RaceClient
from ..race.layout import TableInfo, TableParams, fp2_of, key_hash
from ..race.table import allocate_segment, create_table


@dataclass
class InnerNodeHashTable:
    """Cluster-wide INHT metadata: one table per MN."""

    tables: Dict[int, TableInfo]

    @classmethod
    def create(cls, cluster: Cluster, params: TableParams
               ) -> "InnerNodeHashTable":
        tables = {
            mn: create_table(cluster, mn, TableParams(
                seed=params.seed ^ (mn * 0x9E3779B1),
                groups_per_segment=params.groups_per_segment,
                slots_per_group=params.slots_per_group,
                initial_depth=params.initial_depth,
                max_depth=params.max_depth))
            for mn in cluster.memories
        }
        return cls(tables=tables)

    def total_bytes(self, cluster: Cluster) -> int:
        return sum(
            cluster.memories[mn].allocated_by_category.get("hash_table", 0)
            for mn in self.tables)


class _SegmentAllocator:
    """Allocates zeroed table segments on one MN.

    A class (not a closure) so that snapshotting a loaded system with
    ``copy.deepcopy`` copies the captured cluster reference along with
    the rest of the object graph; a lambda would be copied by reference
    and keep allocating on the *original* cluster after a restore.
    """

    def __init__(self, cluster: Cluster, mn_id: int, params: TableParams):
        self._cluster = cluster
        self._mn_id = mn_id
        self._params = params

    def __call__(self, local_depth: int) -> int:
        return allocate_segment(self._cluster, self._mn_id, self._params,
                                local_depth)


class InhtClient:
    """One CN's client of the cluster-wide INHT.

    Wraps one :class:`RaceClient` (with its own directory cache) per MN
    and routes every prefix to the MN that owns it.
    """

    def __init__(self, cluster: Cluster, inht: InnerNodeHashTable,
                 retry=None):
        self._placement = cluster.placement
        self._clients: Dict[int, RaceClient] = {}
        for mn, info in inht.tables.items():
            self._clients[mn] = RaceClient(
                info, _SegmentAllocator(cluster, mn, info.params),
                retry=retry)

    def _client_for(self, prefix: bytes) -> RaceClient:
        return self._clients[self._placement.mn_for_prefix(prefix)]

    def entry_for(self, prefix: bytes, node_addr: int,
                  node_type: int) -> HashEntry:
        """Build the wire entry for ``prefix`` (fp2 derived per-table)."""
        client = self._client_for(prefix)
        h = key_hash(prefix, client.params.seed)
        return HashEntry(addr=node_addr, fp2=fp2_of(h),
                         node_type=node_type, occupied=True)

    # -- op generators -----------------------------------------------------
    def lookup(self, prefix: bytes) -> "list":
        """Candidate entries for ``prefix`` -> [(slot_addr, HashEntry)]."""
        result = yield from self._client_for(prefix).lookup(prefix)
        return result

    def insert(self, prefix: bytes, node_addr: int, node_type: int):
        """Register a freshly created inner node."""
        entry = self.entry_for(prefix, node_addr, node_type)
        slot_addr = yield from self._client_for(prefix).insert(prefix, entry)
        return slot_addr

    def update_for_type_switch(self, prefix: bytes, old_addr: int,
                               old_type: int, new_addr: int, new_type: int):
        """Repoint a prefix after a node type switch (one 8-byte CAS).

        Falls back to lookup + CAS if the cached slot moved (e.g. a table
        segment split relocated the entry).  Returns True on success.
        """
        client = self._client_for(prefix)
        old_entry = self.entry_for(prefix, old_addr, old_type)
        new_entry = self.entry_for(prefix, new_addr, new_type)
        matches: List[Tuple[int, HashEntry]] = \
            yield from client.lookup(prefix)
        for slot_addr, found in matches:
            if found.addr == old_addr:
                swapped = yield from client.cas_entry(slot_addr, old_entry,
                                                      new_entry)
                if swapped:
                    return True
        # Entry vanished (concurrent split migrated it, or a racing switch
        # already retired the old node).  Install the new mapping outright.
        yield from client.insert(prefix, new_entry)
        return False

    def probe_all(self, prefixes: List[bytes]):
        """Read the hash-entry buckets of many prefixes in one doorbell
        batch (the paper's Theta(L) parallel read, Sec. III-A).

        Returns {prefix: matches-or-None}; None marks a group that was
        locked or stale, which the caller resolves with a precise
        :meth:`lookup`.
        """
        from ..dm.rdma import Batch
        prepared = []
        for prefix in prefixes:
            client = self._client_for(prefix)
            group_addr, h, local_depth = yield from client.probe_prepare(
                prefix)
            prepared.append((prefix, client, group_addr, h, local_depth))
        blobs = yield Batch([client.probe_read_op(group_addr)
                             for _p, client, group_addr, _h, _d in prepared])
        out = {}
        for (prefix, client, group_addr, h, local_depth), blob in zip(
                prepared, blobs):
            out[prefix] = client.probe_parse(group_addr, blob, h, local_depth)
        return out

    def delete(self, prefix: bytes, node_addr: int):
        removed = yield from self._client_for(prefix).delete(prefix,
                                                             node_addr)
        return removed

    # -- introspection -----------------------------------------------------
    def directory_cache_bytes(self) -> int:
        return sum(c.directory_cache_bytes() for c in self._clients.values())

    def splits(self) -> int:
        return sum(c.splits for c in self._clients.values())
