"""Sphinx: the paper's hybrid index (Inner Node Hash Table + Succinct
Filter Cache) as a client of the shared remote-ART engine.

An index operation runs in three round trips in the common case:

1. *Locally*, probe the succinct filter cache with every prefix of the
   key, longest first, to find the deepest inner node's prefix ``P``.
2. Read the inner-node hash-table bucket for ``P`` (one round trip) and,
   from its fp2-matching entries, read the node(s) in one doorbell batch
   (one round trip).  Entries are validated against the node header's
   depth and 42-bit full-prefix hash; invalid or colliding entries fall
   back to the next shorter filter hit, and ultimately to the root.
3. Descend (usually one hop) to the leaf and read it (one round trip).

``use_filter=False`` gives the paper's base design (Sec. III-A): the
client reads the hash entries of *all* Theta(L) prefixes in one doorbell
batch instead of consulting the filter - same round trips, much more NIC
load.  This is the ablation Fig 4's analysis rests on.

``use_locator=True`` additionally grafts in an Outback-style leaf
locator (:mod:`repro.core.leaf_locator`): a CN cache mapping full keys
straight to their MN leaf address, probed before the filter/INHT ladder.
A locator hit turns a point read into a *single* round trip - one leaf
READ verified by the leaf's own fence (checksum + status + stored key);
any mismatch (stale entry after an out-of-place move, tag collision,
torn read) falls back to the regular path, so the locator can only ever
cost a wasted round trip, never a wrong answer.  The default is off, and
off is the exact pre-locator hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..art.layout import (
    LEAF_ALIGN,
    NODE256,
    STATUS_INVALID,
    decode_leaf,
    decode_node,
    node_size,
)
from ..dm.cluster import Cluster
from ..dm.rdma import Batch, LocalCompute, ReadOp
from ..errors import (
    InjectedFault,
    MNUnavailable,
    ReproError,
    RetryLimitExceeded,
)
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..filters.hotness import SuccinctFilterCache
from ..race.layout import TableParams
from ..util.hashing import prefix_hash42
from .inht import InhtClient, InnerNodeHashTable
from .leaf_locator import LeafLocator
from .remote_art import RETRY, OpContext, RemoteArtTree


@dataclass(frozen=True)
class SphinxConfig:
    """Tunables of one Sphinx index (defaults follow the paper)."""

    filter_budget_bytes: int = 1 << 20
    """CN-side budget of the succinct filter cache (paper: 20 MB for 60 M
    keys; scale proportionally to dataset size)."""

    filter_fp_bits: int = 12
    filter_bucket_slots: int = 4

    use_filter: bool = True
    """False = base design: batched Theta(L) hash-entry reads (Sec III-A)."""

    table_groups_per_segment: int = 64
    table_slots_per_group: int = 8
    table_initial_depth: int = 2
    table_max_depth: int = 10
    """Caps the preallocated directory at 2^max_depth slots per MN (8 KiB
    at the default); the fp2 scheme allows up to 12."""
    table_seed: int = 0xD15C0

    retry: RetryPolicy = DEFAULT_RETRY
    """The unified retry/backoff/timeout policy (see repro.fault.retry)."""

    filter_probe_ns: int = 0
    """Optional CN CPU cost charged per local filter probe sweep."""

    use_locator: bool = False
    """Graft in the Outback-style leaf-locator tier: point reads probe a
    CN key->leaf-address cache first and finish in one round trip on a
    hit.  Off (the default) is bit-identical to the pre-locator client -
    no extra state, verbs, or RNG draws."""

    locator_budget_bytes: int = 1 << 16
    """CN-side budget of the leaf locator (16 B per entry)."""

    locator_ways: int = 4
    """Set associativity of the locator cache."""

    locator_seed: int = 0x10CA
    """Tag-hash seed (one seed, shared by every client: hash64 memoizes
    per seed, so distinct per-client seeds would defeat the memo)."""

    def table_params(self) -> TableParams:
        return TableParams(seed=self.table_seed,
                           groups_per_segment=self.table_groups_per_segment,
                           slots_per_group=self.table_slots_per_group,
                           initial_depth=self.table_initial_depth,
                           max_depth=self.table_max_depth)


class _InhtSplitCoupling:
    """Piggybacks the INHT insert of a freshly split-off inner node onto
    the split's own doorbell batches (paper Sec. IV, Insert).

    The hash-table bucket read rides the batch that writes the new leaf
    and inner node; the entry CAS runs right after the split becomes
    visible.  Cold directory caches or full/raced buckets fall back to
    the regular two-round-trip insert.
    """

    def __init__(self, client: "SphinxClient", prefix: bytes, addr: int,
                 node_type: int):
        self._sphinx = client
        self._prefix = prefix
        self._race = client.inht._client_for(prefix)
        self._entry = client.inht.entry_for(prefix, addr, node_type)
        self._location = self._race.cached_group_location(prefix)
        self._group = None

    def pre_ops(self):
        if self._location is None:
            return []
        group_addr, _h, _depth = self._location
        return [self._race.probe_read_op(group_addr)]

    def parse(self, results) -> None:
        if self._location is None or not results:
            return
        group_addr, _h, local_depth = self._location
        group = self._race._parse_group(group_addr, results[0])
        if not group.locked and group.local_depth == local_depth:
            self._group = group

    def commit(self):
        installed = False
        if self._group is not None:
            installed = yield from self._race.insert_into_group(
                self._prefix, self._entry, self._group)
        if not installed:
            yield from self._race.insert(self._prefix, self._entry)
        if self._sphinx.config.use_filter:
            self._sphinx.filter.insert(self._prefix)


class SphinxIndex:
    """Cluster-wide Sphinx index: the remote tree plus its INHT."""

    def __init__(self, cluster: Cluster,
                 config: SphinxConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else SphinxConfig()
        self.root_addr = RemoteArtTree.create_root(cluster)
        self.inht = InnerNodeHashTable.create(cluster,
                                              self.config.table_params())
        self._clients: Dict[int, SphinxClient] = {}

    def client(self, cn_id: int) -> "SphinxClient":
        """The per-CN client (workers on one CN share its caches)."""
        if cn_id not in self._clients:
            self._clients[cn_id] = SphinxClient(self, cn_id)
        return self._clients[cn_id]

    def inht_bytes(self) -> int:
        """MN memory the inner node hash table occupies."""
        return self.inht.total_bytes(self.cluster)


class SphinxClient(RemoteArtTree):
    """One compute node's Sphinx client."""

    def __init__(self, index: SphinxIndex, cn_id: int):
        config = index.config
        super().__init__(index.cluster, index.root_addr,
                         retry=config.retry)
        self.index = index
        self.cn_id = cn_id
        self.config = config
        self.filter = SuccinctFilterCache(
            config.filter_budget_bytes, fp_bits=config.filter_fp_bits,
            bucket_slots=config.filter_bucket_slots)
        self.inht = InhtClient(index.cluster, index.inht,
                               retry=config.retry)
        self.multi_candidate_lookups = 0
        """How often an INHT bucket held >1 fp2-matching entry (the paper
        cites MemC3: typically one candidate)."""
        self.inht_fallbacks = 0
        """Searches that degraded to root traversal because the INHT was
        unreachable (e.g. a bucket stuck behind an abandoned lock)."""
        self.locator = LeafLocator(
            config.locator_budget_bytes, ways=config.locator_ways,
            seed=config.locator_seed) if config.use_locator else None
        self.locator_fallbacks = 0
        """Locator-guided leaf reads rejected by the fence check (stale
        address, tag collision, torn read, fault) and retried via the
        regular filter/INHT ladder."""

    # ------------------------------------------------------------------
    # Hook implementations
    # ------------------------------------------------------------------
    def locate_start(self, ctx: OpContext):
        if self.config.use_filter:
            result = yield from self._locate_with_filter(ctx)
        else:
            result = yield from self._locate_parallel(ctx)
        return result

    def on_path(self, prefix: bytes) -> None:
        # Freshness rule (Sec. IV, Search): any on-path prefix reached by
        # traversal rather than by the filter gets (re)inserted locally.
        if self.config.use_filter and prefix:
            self.metrics.stale_filter_fills += 1
            self.filter.insert(prefix)

    def after_new_inner(self, prefix: bytes, addr: int, node_type: int):
        yield from self.inht.insert(prefix, addr, node_type)
        if self.config.use_filter:
            self.filter.insert(prefix)

    def after_type_switch(self, prefix: bytes, old_addr: int, old_type: int,
                          new_addr: int, new_type: int):
        yield from self.inht.update_for_type_switch(
            prefix, old_addr, old_type, new_addr, new_type)

    def make_split_coupling(self, prefix: bytes, addr: int, node_type: int):
        return _InhtSplitCoupling(self, prefix, addr, node_type)

    def note_leaf(self, key: bytes, addr: int, units: int) -> None:
        if self.locator is not None:
            self.locator.put(key, addr, units)

    def forget_leaf(self, key: bytes) -> None:
        if self.locator is not None:
            self.locator.drop(key)

    # ------------------------------------------------------------------
    # The leaf-locator fast path (1 round trip on a hit)
    # ------------------------------------------------------------------
    def search(self, key: bytes):
        """Op generator: value for ``key`` or None.

        With the locator enabled a hit resolves in one leaf READ; every
        rung of the fallback ladder (miss -> mismatch -> fault) lands on
        the regular filter/INHT search, so results are identical to the
        locator-disabled client - the locator only changes round trips.
        """
        if self.locator is None:
            result = yield from super().search(key)
            return result
        self.metrics.searches += 1
        hit = self.locator.get(key)
        if hit is not None:
            addr, units = hit
            try:
                data = yield ReadOp(addr, units * LEAF_ALIGN)
            except (RetryLimitExceeded, InjectedFault, MNUnavailable):
                # Fabric fault or crashed MN on the hinted read: the
                # regular path (with its own retry budget) decides.
                self.locator_fallbacks += 1
            else:
                leaf = decode_leaf(data)
                if leaf.checksum_ok and leaf.status != STATUS_INVALID \
                        and leaf.key == key:
                    # Fence check passed: this is key's live leaf.  A
                    # Locked-but-consistent image is trustworthy, same
                    # as the descent path's read_leaf semantics.
                    return leaf.value
                if leaf.checksum_ok:
                    # Provably not key's leaf (moved, deleted, or a tag
                    # collision): the hint is garbage, drop it.  A torn
                    # read, by contrast, keeps the entry - the address
                    # is fine, the image just raced an in-place writer.
                    self.locator.drop(key)
                self.locator_fallbacks += 1
        result = yield from self._run(self._search_once,
                                      OpContext(key, len(key) - 1), "search")
        return result

    # ------------------------------------------------------------------
    # Locate via the succinct filter cache (common case: 2 round trips
    # to the start node, leaf read is the third)
    # ------------------------------------------------------------------
    def _locate_with_filter(self, ctx: OpContext):
        key = ctx.key
        if self.config.filter_probe_ns:
            yield LocalCompute(self.config.filter_probe_ns)
        for depth in range(min(len(key) - 1, ctx.limit), 0, -1):
            prefix = key[:depth]
            if not self.filter.contains(prefix):
                continue
            try:
                found = yield from self._fetch_via_inht(prefix, depth)
            except (RetryLimitExceeded, InjectedFault, MNUnavailable):
                # An INHT bucket stuck behind an abandoned segment-split
                # lock, an injected fabric fault on the INHT path, or a
                # crashed MN hosting the table must not take searches
                # down with it: the tree is still intact, so degrade to
                # root traversal.
                self.inht_fallbacks += 1
                break
            if found is not None:
                return found[0], found[1], True
            # False positive (or evicted/stale entry): fall through to
            # the next shorter prefix present in the filter.
            self.metrics.fp_restarts += 1
        view = yield from self._read_node(self.root_addr, NODE256)
        if view is None:
            return RETRY
        return self.root_addr, view, True

    def _fetch_via_inht(self, prefix: bytes, depth: int):
        """Hash-entry read + doorbell-batched candidate node reads,
        validated by header depth + 42-bit prefix hash."""
        target_hash = prefix_hash42(prefix)
        # One extra attempt is intrinsic: a type switch's fresh entry
        # lands within one round trip (backoff below is policy-derived).
        for _attempt in range(2):  # lint: disable=L006
            matches = yield from self.inht.lookup(prefix)
            if not matches:
                return None
            if len(matches) > 1:
                self.multi_candidate_lookups += 1
            blobs = yield Batch([ReadOp(entry.addr, node_size(entry.node_type))
                                 for _slot, entry in matches])
            saw_invalid = False
            for (_slot, entry), blob in zip(matches, blobs):
                try:
                    view = decode_node(blob)
                except ReproError:
                    continue
                if view.header.node_type != entry.node_type:
                    continue
                if view.header.status == STATUS_INVALID:
                    saw_invalid = True
                    continue
                if (view.header.depth == depth
                        and view.header.prefix_hash == target_hash):
                    return entry.addr, view
            if not saw_invalid:
                return None
            # A type switch is propagating to the hash table; the fresh
            # entry lands within one round trip - retry the lookup once.
            yield LocalCompute(self.backoff_ns)
        return None

    # ------------------------------------------------------------------
    # Locate via parallel hash-entry reads (base design, Sec. III-A)
    # ------------------------------------------------------------------
    def _locate_parallel(self, ctx: OpContext):
        key = ctx.key
        max_depth = min(len(key) - 1, ctx.limit)
        if max_depth < 1:
            view = yield from self._read_node(self.root_addr, NODE256)
            if view is None:
                return RETRY
            return self.root_addr, view, True
        try:
            probes = yield from self.inht.probe_all(
                [key[:d] for d in range(1, max_depth + 1)])
        except MNUnavailable:
            # The MN hosting a probed table crashed: the base design's
            # batched probe cannot complete, but the tree survives.
            self.inht_fallbacks += 1
            probes = {}
        for depth in range(max_depth, 0, -1):
            prefix = key[:depth]
            matches = probes.get(prefix)
            if matches is None:  # stale/locked group: precise fallback
                try:
                    matches = yield from self.inht.lookup(prefix)
                except MNUnavailable:
                    self.inht_fallbacks += 1
                    continue
            if not matches:
                continue
            found = yield from self._validate_candidates(prefix, depth,
                                                         matches)
            if found is not None:
                return found[0], found[1], True
        view = yield from self._read_node(self.root_addr, NODE256)
        if view is None:
            return RETRY
        return self.root_addr, view, True

    def _validate_candidates(self, prefix: bytes, depth: int,
                             matches: List[Tuple[int, object]]):
        target_hash = prefix_hash42(prefix)
        blobs = yield Batch([ReadOp(entry.addr, node_size(entry.node_type))
                             for _slot, entry in matches])
        for (_slot, entry), blob in zip(matches, blobs):
            try:
                view = decode_node(blob)
            except ReproError:
                continue
            if view.header.node_type != entry.node_type:
                continue
            if view.header.status == STATUS_INVALID:
                continue
            if (view.header.depth == depth
                    and view.header.prefix_hash == target_hash):
                return entry.addr, view
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cn_cache_bytes(self) -> int:
        """Total CN-side cache memory: filter + directory + locator."""
        total = self.filter.size_bytes() + self.inht.directory_cache_bytes()
        if self.locator is not None:
            total += self.locator.size_bytes()
        return total

    def cache_stats(self) -> dict:
        stats = self.filter.stats()
        stats["directory_cache_bytes"] = self.inht.directory_cache_bytes()
        stats["inht_splits"] = self.inht.splits()
        stats["multi_candidate_lookups"] = self.multi_candidate_lookups
        if self.locator is not None:
            stats.update(self.locator.stats())
            stats["locator_fallbacks"] = self.locator_fallbacks
        return stats

    def counters(self):
        """Tree metrics plus the Sphinx-specific filter/INHT counters,
        in the shared :class:`repro.obs.Counters` shape."""
        counters = super().counters()
        counters.merge({
            "filter_hits": self.filter.hits,
            "filter_misses": self.filter.misses,
            "filter_evictions": self.filter.evictions,
            "inht_splits": self.inht.splits(),
            "inht_fallbacks": self.inht_fallbacks,
            "multi_candidate_lookups": self.multi_candidate_lookups,
        })
        if self.locator is not None:
            # Keys appear only with the locator enabled so disabled
            # clients report the exact pre-locator counter shape.
            counters.merge({
                "locator_hits": self.locator.hits,
                "locator_misses": self.locator.misses,
                "locator_fallbacks": self.locator_fallbacks,
            })
        return counters
