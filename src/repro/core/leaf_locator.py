"""CN-resident leaf directories: the 1-RTT point-read machinery.

Outback (PAPERS.md) observes that for a key already known to the client,
the whole index traversal is overhead: a compute-node-resident directory
mapping the key straight to its memory-node leaf address turns a point
read into a *single* RDMA READ.  This module holds the two directory
flavours the repo builds on that observation:

:class:`MinimalPerfectHash`
    A seeded, deterministic minimal-perfect-hash table over a static key
    set (the hash-displace construction: keys are grouped into buckets by
    a first hash, then each bucket receives a small displacement chosen
    so its keys land in distinct free slots).  Storage is compact int
    arrays - one displacement per bucket, one fingerprint + one payload
    word per slot - so the per-key cost is a handful of bytes, not a
    Python dict entry.  Fingerprint bits bound false routing for keys
    outside the construction set.  The Outback baseline
    (:mod:`repro.baselines.outback`) builds its directory out of this.

:class:`LeafLocator`
    A budget-bounded, set-associative CN cache mapping full keys to
    ``(leaf addr, units)``.  Sphinx grafts it in as an optional tier in
    front of the Inner Node Hash Table (``SphinxConfig.use_locator``):
    on a hit, a search reads the leaf directly (1 round trip) and
    verifies the leaf's own fence - checksum, status, and the stored key
    - before trusting it; any mismatch falls back to the regular
    filter-cache/INHT ladder.  Entries are hints, never truth: a stale
    entry costs one wasted round trip, it cannot produce a wrong answer.

Both structures are deterministic: same key set + same seed => same
tables, bit for bit.  Neither consumes RNG state, so enabling a locator
does not shift any seeded stream elsewhere in the cluster.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Tuple

from ..errors import InvalidArgument
from ..util.hashing import hash64

_ADDR_BITS = 48
_ADDR_MASK = (1 << _ADDR_BITS) - 1

#: Displacement search bound per bucket.  With ~4 keys per bucket a
#: suitable displacement is found after a handful of tries with high
#: probability; hitting the bound means the seed is unlucky for this key
#: set and the whole build retries with the next seed (still
#: deterministic: the seed sequence is a pure function of the base seed).
_MAX_DISPLACE = 4096


def pack_leaf_ref(addr: int, units: int) -> int:
    """Pack a 48-bit leaf address and its size class into one word."""
    if addr != addr & _ADDR_MASK:
        raise InvalidArgument(f"leaf address {addr:#x} exceeds 48 bits")
    return addr | (units << _ADDR_BITS)


def unpack_leaf_ref(word: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_leaf_ref`: ``(addr, units)``."""
    return word & _ADDR_MASK, word >> _ADDR_BITS


class MinimalPerfectHash:
    """Seeded MPH over a static key set, with per-slot fingerprints.

    ``build`` assigns every key a distinct slot in ``[0, len(keys))``;
    ``slot_of`` finds it back in O(1) with exactly one :func:`hash64`
    evaluation.  For keys outside the construction set ``slot_of``
    returns some slot whose fingerprint rejects the probe with
    probability ``1 - 2**-fp_bits``; callers that store payloads verify
    the final answer against ground truth (Outback reads the leaf and
    checks its stored key), so a fingerprint collision costs one wasted
    round trip and nothing else.
    """

    __slots__ = ("seed", "fp_bits", "num_slots", "_num_buckets",
                 "_displace", "_fingerprints", "values")

    def __init__(self, seed: int, fp_bits: int, num_slots: int,
                 num_buckets: int, displace: array, fingerprints: array,
                 values: array):
        self.seed = seed
        self.fp_bits = fp_bits
        self.num_slots = num_slots
        self._num_buckets = num_buckets
        self._displace = displace
        self._fingerprints = fingerprints
        self.values = values
        """One payload word per slot, caller-owned (0 = absent)."""

    # -- construction ---------------------------------------------------
    @staticmethod
    def _mix(key: bytes, seed: int, num_slots: int,
             num_buckets: int) -> Tuple[int, int, int, int]:
        """(bucket, base slot, odd stride, fingerprint) from one hash."""
        h = hash64(key, seed)
        bucket = h % num_buckets
        base = (h >> 12) % num_slots
        stride = 1 + ((h >> 33) % (num_slots - 1)) if num_slots > 1 else 0
        fp = (h >> 48) & ((1 << 16) - 1)
        return bucket, base, stride, fp

    @classmethod
    def build(cls, keys: List[bytes], seed: int = 0x0B1A5,
              fp_bits: int = 16, keys_per_bucket: int = 4,
              max_seed_tries: int = 64) -> "MinimalPerfectHash":
        """Deterministically construct an MPH over ``keys``.

        Buckets are processed largest first (the classic heuristic: big
        buckets have the fewest placement options, so they get first
        pick of the free slots).  If any bucket exhausts the
        displacement bound the whole construction restarts with the
        next seed; the result is a pure function of (keys, seed).
        """
        if not 1 <= fp_bits <= 16:
            raise InvalidArgument("locator fingerprint width must be 1..16")
        num_slots = max(1, len(keys))
        num_buckets = max(1, (len(keys) + keys_per_bucket - 1)
                          // keys_per_bucket)
        for attempt in range(max_seed_tries):
            table = cls._try_build(keys, seed + attempt, fp_bits,
                                   num_slots, num_buckets)
            if table is not None:
                return table
        raise InvalidArgument(
            f"MPH construction failed for {len(keys)} keys after "
            f"{max_seed_tries} seeds (duplicate keys?)")

    @classmethod
    def _try_build(cls, keys: List[bytes], seed: int, fp_bits: int,
                   num_slots: int, num_buckets: int
                   ) -> Optional["MinimalPerfectHash"]:
        buckets: List[List[Tuple[int, int, int]]] = \
            [[] for _ in range(num_buckets)]
        for key in keys:
            bucket, base, stride, fp = cls._mix(key, seed, num_slots,
                                                num_buckets)
            buckets[bucket].append((base, stride, fp))
        displace = array("l", [-1] * num_buckets)
        fingerprints = array("H", [0] * num_slots)
        values = array("Q", [0] * num_slots)
        occupied = bytearray(num_slots)
        fp_mask = (1 << fp_bits) - 1
        order = sorted(range(num_buckets),
                       key=lambda b: (-len(buckets[b]), b))
        free_cursor = 0
        for b in order:
            members = buckets[b]
            if not members:
                continue
            if len(members) == 1:
                # Singleton buckets fill the leftover holes directly (a
                # displacement orbit need not reach every slot when the
                # stride shares a factor with num_slots); the direct
                # slot is encoded as a negative displacement.  Largest-
                # first ordering puts all singletons last, so one
                # forward cursor finds each next hole in O(1) amortized.
                while occupied[free_cursor]:
                    free_cursor += 1
                displace[b] = -2 - free_cursor
                slots = [free_cursor]
            else:
                placed = cls._place_bucket(members, occupied, num_slots)
                if placed is None:
                    return None
                displace[b], slots = placed
            for (base, stride, fp), slot in zip(members, slots):
                occupied[slot] = 1
                stored = fp & fp_mask
                fingerprints[slot] = stored if stored else 1
        return cls(seed, fp_bits, num_slots, num_buckets, displace,
                   fingerprints, values)

    @staticmethod
    def _place_bucket(members: List[Tuple[int, int, int]],
                      occupied: bytearray, num_slots: int
                      ) -> Optional[Tuple[int, List[int]]]:
        """Smallest displacement placing every member in a free slot.

        The displacement splits into an additive shift (``d % m``) and a
        per-key stride multiplier (``d // m``): the additive sweep visits
        every slot regardless of stride/num_slots common factors, the
        stride component decorrelates members that collided under a pure
        shift.  Search cost is CN-local build-time compute only.
        """
        bound = min(max(_MAX_DISPLACE, 8 * num_slots), num_slots * num_slots)
        for d in range(bound):
            shift, mult = d % num_slots, d // num_slots
            slots: List[int] = []
            taken = set()
            for base, stride, _fp in members:
                slot = (base + shift + mult * stride) % num_slots
                if occupied[slot] or slot in taken:
                    slots = []
                    break
                taken.add(slot)
                slots.append(slot)
            if slots:
                return d, slots
        return None

    # -- lookup ---------------------------------------------------------
    def slot_of(self, key: bytes) -> Optional[int]:
        """The key's slot, or None when the fingerprint rejects it."""
        bucket, base, stride, fp = self._mix(key, self.seed, self.num_slots,
                                             self._num_buckets)
        d = self._displace[bucket]
        if d == -1:
            return None
        if d < 0:
            slot = -2 - d
        else:
            slot = (base + d % self.num_slots
                    + (d // self.num_slots) * stride) % self.num_slots
        stored = fp & ((1 << self.fp_bits) - 1)
        if self._fingerprints[slot] != (stored if stored else 1):
            return None
        return slot

    def size_bytes(self) -> int:
        """Compact storage footprint of the directory arrays."""
        return (self._displace.itemsize * len(self._displace)
                + self._fingerprints.itemsize * len(self._fingerprints)
                + self.values.itemsize * len(self.values))


class LeafLocator:
    """Budget-bounded CN cache: full key -> packed (leaf addr, units).

    Set-associative over flat int arrays (tags + payload words), so a
    deepcopy of a warmed benchmark snapshot copies two arrays instead of
    a per-key object graph.  Eviction is deterministic round-robin per
    set - no RNG, so an enabled locator never shifts seeded streams.

    The cache stores *hints*.  A tag collision or a stale entry routes
    the reader to a wrong or recycled leaf; the reader's fence check
    (checksum + status + stored key) catches it and the caller falls
    back, dropping the entry.  Correctness never depends on the locator.
    """

    __slots__ = ("ways", "num_sets", "seed", "_tags", "_refs", "_clock",
                 "hits", "misses", "drops", "inserts")

    def __init__(self, budget_bytes: int, ways: int = 4, seed: int = 0x10CA):
        if budget_bytes <= 0:
            raise InvalidArgument("locator budget must be positive")
        if ways < 1:
            raise InvalidArgument("locator needs at least one way")
        entry_bytes = 16  # one u64 tag + one u64 payload word
        entries = max(ways, budget_bytes // entry_bytes)
        self.ways = ways
        self.num_sets = max(1, entries // ways)
        self.seed = seed
        self._tags = array("Q", [0] * (self.num_sets * ways))
        self._refs = array("Q", [0] * (self.num_sets * ways))
        self._clock = array("B", [0] * self.num_sets)
        self.hits = 0
        self.misses = 0
        self.drops = 0
        self.inserts = 0

    def _locate(self, key: bytes) -> Tuple[int, int]:
        h = hash64(key, self.seed)
        set_index = h % self.num_sets
        tag = h >> 12 or 1  # tag 0 means "empty way"
        return set_index * self.ways, tag

    def get(self, key: bytes) -> Optional[Tuple[int, int]]:
        """``(leaf addr, units)`` for the key, or None on a miss."""
        base, tag = self._locate(key)
        tags = self._tags
        for way in range(self.ways):
            if tags[base + way] == tag:
                self.hits += 1
                return unpack_leaf_ref(self._refs[base + way])
        self.misses += 1
        return None

    def put(self, key: bytes, addr: int, units: int) -> None:
        """Insert or refresh the key's leaf hint."""
        base, tag = self._locate(key)
        ref = pack_leaf_ref(addr, units)
        tags = self._tags
        free = -1
        for way in range(self.ways):
            if tags[base + way] == tag:
                self._refs[base + way] = ref
                return
            if free < 0 and tags[base + way] == 0:
                free = way
        if free < 0:
            set_index = base // self.ways
            free = self._clock[set_index]
            self._clock[set_index] = (free + 1) % self.ways
        tags[base + free] = tag
        self._refs[base + free] = ref
        self.inserts += 1

    def drop(self, key: bytes) -> None:
        """Forget the key's hint (delete / observed-stale paths)."""
        base, tag = self._locate(key)
        tags = self._tags
        for way in range(self.ways):
            if tags[base + way] == tag:
                tags[base + way] = 0
                self._refs[base + way] = 0
                self.drops += 1
                return

    def __len__(self) -> int:
        return sum(1 for t in self._tags if t)

    def size_bytes(self) -> int:
        return (self._tags.itemsize * len(self._tags)
                + self._refs.itemsize * len(self._refs)
                + len(self._clock))

    def stats(self) -> dict:
        return {"locator_hits": self.hits, "locator_misses": self.misses,
                "locator_drops": self.drops,
                "locator_inserts": self.inserts,
                "locator_entries": len(self),
                "locator_bytes": self.size_bytes()}


def build_directory(pairs: Iterable[Tuple[bytes, int, int]],
                    seed: int = 0x0B1A5,
                    fp_bits: int = 16) -> MinimalPerfectHash:
    """An MPH directory pre-filled with packed leaf refs (Outback load)."""
    items = list(pairs)
    keys = [key for key, _addr, _units in items]
    mph = MinimalPerfectHash.build(keys, seed=seed, fp_bits=fp_bits)
    for key, addr, units in items:
        slot = mph.slot_of(key)
        if slot is None:  # cannot happen for construction-set keys
            raise InvalidArgument(f"MPH lost key {key!r} during build")
        mph.values[slot] = pack_leaf_ref(addr, units)
    return mph
