"""Leaf-node operations (paper Sec. III-C / IV, "Update").

Leaves are 64 B-aligned blobs with a status byte, a LeafLen (in 64 B
units), and a CRC32 checksum over the logical payload.  Readers verify
the checksum before trusting a leaf - a mismatch means the read raced an
in-place writer and is simply retried.  The in-place update protocol is
the paper's two-verb scheme:

1. CAS the leaf's first word from (Idle, ...) to (Locked, ...).
2. Locally build the new leaf image - new value, new checksum, status
   already back to Idle - and publish it with a single RDMA WRITE,
   folding the unlock into the value write.
"""

from __future__ import annotations

from ..art.layout import (
    LEAF_ALIGN,
    STATUS_IDLE,
    STATUS_INVALID,
    STATUS_LOCKED,
    LeafView,
    decode_leaf,
    encode_leaf,
    leaf_status_word,
    leaf_units_for,
)
from ..dm.rdma import CasOp, LocalCompute, ReadOp, WriteOp
from ..errors import InvalidArgument, RetryLimitExceeded
from ..fault.retry import DEFAULT_RETRY, RetryPolicy

LEAF_CATEGORY = "leaf"


def read_leaf(addr: int, units: int, retry: RetryPolicy = DEFAULT_RETRY):
    """Read and decode a leaf, retrying torn (checksum-failing) reads.

    Returns a :class:`LeafView`; ``view.status`` may be ``STATUS_INVALID``
    (deleted) or ``STATUS_LOCKED`` (update in flight) - callers decide how
    to react.  Raises after ``retry.torn_read_retries`` consecutive torn
    reads (lint L006: every retry loop is bound by the one RetryPolicy).
    """
    for attempt in range(retry.torn_read_retries):
        data = yield ReadOp(addr, units * LEAF_ALIGN)
        view = decode_leaf(data)
        if view.checksum_ok or view.status == STATUS_INVALID:
            return view
        yield LocalCompute(retry.torn_read_delay(attempt))
    raise RetryLimitExceeded("leaf kept failing checksum", addr=addr)


def write_new_leaf(addr: int, key: bytes, value: bytes,
                   units: int | None = None):
    """Write a fresh leaf image at a pre-allocated address."""
    yield WriteOp(addr, encode_leaf(key, value, STATUS_IDLE, units))


def in_place_update(addr: int, view: LeafView, new_value: bytes):
    """The paper's checksum-based in-place update.  Returns True on
    success, False if the lock CAS lost (caller retries the operation)."""
    if leaf_units_for(len(view.key), len(new_value)) > view.units:
        raise InvalidArgument("value does not fit; caller must go out-of-place")
    idle_word = leaf_status_word(STATUS_IDLE, view.units,
                                 len(view.key), len(view.value))
    locked_word = leaf_status_word(STATUS_LOCKED, view.units,
                                   len(view.key), len(view.value))
    swapped, _old = yield CasOp(addr, idle_word, locked_word,
                                lease=("leaf",))
    if not swapped:
        return False
    image = encode_leaf(view.key, new_value, STATUS_IDLE,
                        units=view.units, version=view.version + 1)
    yield WriteOp(addr, image, lease=("release",))
    return True


def invalidate_leaf(addr: int, view: LeafView):
    """Mark a leaf deleted (CAS Idle -> Invalid).  Returns True on success."""
    idle_word = leaf_status_word(STATUS_IDLE, view.units,
                                 len(view.key), len(view.value))
    invalid_word = leaf_status_word(STATUS_INVALID, view.units,
                                    len(view.key), len(view.value))
    swapped, _old = yield CasOp(addr, idle_word, invalid_word)
    return swapped
