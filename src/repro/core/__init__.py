"""Sphinx core: the hybrid index (paper's primary contribution)."""

from .inht import InhtClient, InnerNodeHashTable
from .leaf import in_place_update, invalidate_leaf, read_leaf, write_new_leaf
from .leaf_locator import LeafLocator, MinimalPerfectHash, build_directory
from .lock import invalidate_op, try_lock_node, unlock_op
from .remote_art import (
    INNER_CATEGORY,
    OpContext,
    RemoteArtTree,
    TreeMetrics,
)
from .sphinx import SphinxClient, SphinxConfig, SphinxIndex

__all__ = [
    "InhtClient",
    "InnerNodeHashTable",
    "in_place_update",
    "invalidate_leaf",
    "read_leaf",
    "write_new_leaf",
    "LeafLocator",
    "MinimalPerfectHash",
    "build_directory",
    "invalidate_op",
    "try_lock_node",
    "unlock_op",
    "INNER_CATEGORY",
    "OpContext",
    "RemoteArtTree",
    "TreeMetrics",
    "SphinxClient",
    "SphinxConfig",
    "SphinxIndex",
]
