"""Tenant descriptors: who shares the rack, and on what terms.

A :class:`TenantSpec` is the contract one tenant signs with the serving
grid: which YCSB mix it issues, how fast it may issue it (token-bucket
admission, ``rate_ops_per_s``; ``None`` = uncapped), and how big its
share of the grid's capacity is when everyone is backlogged (the
weighted-fair ``weight``).  A :class:`TenancyConfig` is the full roster
for one run.

Everything here is frozen, validated data - the moving parts live in
:mod:`repro.tenancy.admission` and :mod:`repro.tenancy.sched` - so a
roster can be embedded in a test or a CI job and compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload mix, arrival rate, and fair share."""

    name: str
    workload: str = "A"
    weight: int = 1
    #: Token-bucket admission cap in ops per simulated second; ``None``
    #: leaves the tenant uncapped (it gets whatever WFQ grants it).
    rate_ops_per_s: Optional[int] = None
    #: Burst allowance of the token bucket, in ops.
    burst_ops: int = 8
    #: Failed-op budget under chaos: how many failed ops (retry storms,
    #: injected faults, degraded-mode errors) this tenant may burn per
    #: run before the controller demotes it to best-effort admission -
    #: an over-budget tenant is only scheduled when no in-budget tenant
    #: is ready, so one tenant's retry storm against a dead shard cannot
    #: starve the rest of the roster.  ``None`` leaves the tenant
    #: unbudgeted (every existing roster, so schedules are unchanged).
    retry_budget: Optional[int] = None

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a name")
        if self.weight < 1:
            raise ConfigError(f"tenant {self.name}: weight must be >= 1")
        if self.rate_ops_per_s is not None and self.rate_ops_per_s < 1:
            raise ConfigError(f"tenant {self.name}: rate must be >= 1 op/s")
        if self.burst_ops < 1:
            raise ConfigError(f"tenant {self.name}: burst must be >= 1 op")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ConfigError(
                f"tenant {self.name}: retry_budget must be >= 0")

    def workload_spec(self):
        from ..ycsb.workloads import workload  # local: ycsb is a consumer
        return workload(self.workload)


@dataclass(frozen=True)
class TenancyConfig:
    """The roster of tenants multiplexed onto one run."""

    tenants: Tuple[TenantSpec, ...]

    def validate(self) -> None:
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError("tenant names must be unique")
        for tenant in self.tenants:
            tenant.validate()

    def __len__(self) -> int:
        return len(self.tenants)


#: The workload/weight wheel :func:`default_tenants` deals from.  Read
#: heavy, update heavy, and scan tenants mixed, weights spanning 4x - the
#: shape HiStore-style heterogeneous-tenant evaluations use.
_DEFAULT_WHEEL = (
    ("A", 2, None),
    ("B", 1, None),
    ("C", 4, None),
    ("E", 1, None),
)


def default_tenants(count: int = 16, *,
                    throttled_every: int = 8,
                    throttled_rate: int = 50_000) -> TenancyConfig:
    """A deterministic heterogeneous roster of ``count`` tenants.

    Workloads and weights cycle through a fixed wheel; every
    ``throttled_every``-th tenant carries a token-bucket rate cap so a
    default roster always demonstrates admission control, not just
    weighted sharing.  Purely index-derived - no randomness - so the same
    ``count`` always yields the same roster.
    """
    if count < 1:
        raise ConfigError("need at least one tenant")
    tenants = []
    for i in range(count):
        workload, weight, rate = _DEFAULT_WHEEL[i % len(_DEFAULT_WHEEL)]
        if throttled_every and i % throttled_every == throttled_every - 1:
            rate = throttled_rate
        tenants.append(TenantSpec(name=f"t{i:02d}", workload=workload,
                                  weight=weight, rate_ops_per_s=rate))
    config = TenancyConfig(tuple(tenants))
    config.validate()
    return config
