"""Token-bucket admission control, in exact integer arithmetic.

The bucket never touches floats: one op costs :data:`UNITS_PER_TOKEN`
units and a tenant at ``rate`` ops per simulated second earns exactly
``rate`` units per simulated nanosecond (``rate`` ops/s x 1e9 units/op /
1e9 ns/s).  Refill, deficit, and the earliest-admission time are all
integer multiplies and ceiling divisions, so the admission schedule is
bit-reproducible across platforms - the same property the simulation
engine guarantees for everything else.
"""

from __future__ import annotations

from ..errors import ConfigError

#: One op's cost in bucket units (= 1e9, so units/ns arithmetic is exact).
UNITS_PER_TOKEN = 1_000_000_000


class TokenBucket:
    """A deterministic token bucket over simulated nanoseconds."""

    __slots__ = ("rate", "capacity_units", "units", "last_ns")

    def __init__(self, rate_ops_per_s: int, burst_ops: int = 8):
        if rate_ops_per_s < 1:
            raise ConfigError("token bucket rate must be >= 1 op/s")
        if burst_ops < 1:
            raise ConfigError("token bucket burst must be >= 1 op")
        self.rate = rate_ops_per_s
        self.capacity_units = burst_ops * UNITS_PER_TOKEN
        self.units = self.capacity_units  # starts full
        self.last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns > self.last_ns:
            earned = (now_ns - self.last_ns) * self.rate
            self.units = min(self.capacity_units, self.units + earned)
            self.last_ns = now_ns

    def ready_ns(self, now_ns: int) -> int:
        """Earliest simulated time one op can be admitted (may be now)."""
        self._refill(now_ns)
        if self.units >= UNITS_PER_TOKEN:
            return now_ns
        deficit = UNITS_PER_TOKEN - self.units
        return now_ns + (deficit + self.rate - 1) // self.rate

    def take(self, now_ns: int) -> None:
        """Admit one op; caller must have seen ``ready_ns() <= now_ns``."""
        self._refill(now_ns)
        if self.units < UNITS_PER_TOKEN:
            raise ConfigError("token bucket take() before ready_ns()")
        self.units -= UNITS_PER_TOKEN
