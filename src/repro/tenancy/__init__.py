"""Multi-tenant serving: tenant descriptors, admission, fair scheduling.

The layer that turns the single-workload YCSB runner into a serving
grid: a :class:`TenancyConfig` roster of :class:`TenantSpec` tenants is
multiplexed onto the runner's closed-loop workers by a shared
:class:`TenancyController` - token-bucket admission
(:class:`TokenBucket`) decides *when* a tenant's next op may start,
start-time-fair queueing (:class:`WeightedFairScheduler`) decides
*whose* op it is.  :func:`run_rack` composes the whole thing with a
rack-scale sharded cluster and online topology changes.

Attachment contract: a run with no controller (``tenancy=None``) takes
the pre-tenancy code path and stays byte-identical to it; a run with a
controller is bit-reproducible for the same (roster, seed, topology) -
both are enforced by tests/test_tenancy.py.
"""

from .admission import UNITS_PER_TOKEN, TokenBucket
from .runner import RackRunResult, run_rack
from .sched import VT_UNIT, TenancyController, WeightedFairScheduler
from .spec import TenancyConfig, TenantSpec, default_tenants

__all__ = [
    "UNITS_PER_TOKEN",
    "TokenBucket",
    "RackRunResult",
    "run_rack",
    "VT_UNIT",
    "TenancyController",
    "WeightedFairScheduler",
    "TenancyConfig",
    "TenantSpec",
    "default_tenants",
]
