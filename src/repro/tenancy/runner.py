"""The rack-scale run orchestrator: tenants + topology + verification.

:func:`run_rack` is the one entry point behind the ``rack`` figure
family, the `rack-smoke` CI cell, and the tenancy test suites.  It

1. builds a :class:`repro.dm.Rack` from a :class:`~repro.dm.ClusterSpec`
   and bulk-loads the dataset across its shards;
2. optionally attaches the chaos fault plan (widened to the rack's MN
   count) and the recovery manager;
3. spawns a **topology daemon** - a simulation process that sleeps until
   each scheduled :class:`~repro.dm.TopologyEvent` and executes it
   through the :class:`repro.recover.Rebalancer`, so MN joins/leaves and
   their shard migrations interleave with tenant traffic on the same
   clock;
4. runs the tenant-multiplexed YCSB workload through the standard
   runner (``tenancy=`` a shared controller);
5. drives any still-migrating topology work to completion, then fscks
   every group cell and reports the worst exit code.

Everything consumes the one simulated clock and seeded RNG streams, so
a rack run - tenants, migrations, chaos and all - is bit-identical
across same-seed repeats; ``rows()`` is the canonical flattening the CI
determinism gate diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..dm.rack import ClusterSpec, Rack, TopologyEvent
from ..recover.failover import FailoverManager
from ..recover.rebalance import Rebalancer
from ..ycsb.datasets import make_dataset
from ..ycsb.runner import RunResult, bulk_load, run_workload
from ..ycsb.workloads import workload
from .sched import TenancyController
from .spec import TenancyConfig, default_tenants


@dataclass
class RackRunResult:
    """Everything one rack run produced, flattened for gates and tables."""

    result: RunResult
    rack: Rack
    tenants: List[Dict]
    topology: List[Dict]
    fsck_exit: int
    fsck_reports: list = field(repr=False, default_factory=list)
    #: Rebalancer accounting: shards/keys moved plus the forfeit split
    #: (chaos-damaged vs source-died) and aborted migrations.
    rebalance: Dict = field(default_factory=dict)
    #: Replication digest (counters, promotions, forfeits, epochs);
    #: ``None`` on an unreplicated (K=0) run.
    replication: Optional[Dict] = None
    #: The run's FailoverManager (promotion/forfeit logs for the
    #: property suites); ``None`` when K=0.
    failover: Optional[FailoverManager] = field(repr=False, default=None)

    def rows(self) -> Dict:
        """A JSON-serializable digest: the aggregate row, per-tenant
        rows, the topology log, rebalance/replication accounting, and
        the fsck verdict.  Two same-seed runs must produce byte-identical
        ``rows()`` - the CI determinism cell diffs exactly this."""
        row = self.result.row()
        row["sim_ns"] = self.result.sim_ns
        row["failed_ops"] = self.result.failed_ops
        row["crashed_workers"] = self.result.crashed_workers
        row["degraded_ops"] = self.result.degraded_ops
        out = {
            "aggregate": row,
            "tenants": self.tenants,
            "topology": self.topology,
            "rebalance": self.rebalance,
            "fsck_exit": self.fsck_exit,
        }
        if self.replication is not None:
            out["replication"] = self.replication
        return out


def _fsck_exit(report) -> int:
    """Map one dry-run FsckReport to the fsck CLI's exit convention."""
    if report.clean and not report.findings:
        return 0
    if report.findings and all(f.repairable for f in report.findings):
        return 1
    return 2


def _topology_daemon(rack: Rack, rebalancer: Rebalancer,
                     events: Sequence[TopologyEvent], start_ns: int,
                     log: List[Dict]):
    """Execute the topology schedule on the simulated clock (a process)."""
    engine = rack.cluster.engine
    for event in sorted(events, key=lambda e: (e.at_ns, e.kind)):
        delay = start_ns + event.at_ns - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        before = len(rebalancer.completed)
        if event.kind == "mn_join":
            gid = yield from rebalancer.join(event.group)
        else:
            gid = yield from rebalancer.leave(event.group)
        moves = rebalancer.completed[before:]
        log.append({
            "kind": event.kind,
            "group": gid,
            "at_ns": event.at_ns,
            "done_ns": engine.now - start_ns,
            "shards_moved": len(moves),
            "keys_moved": sum(m[3] for m in moves),
        })


def run_rack(spec: Optional[ClusterSpec] = None, *,
             tenants: Union[TenancyConfig, int, None] = 16,
             workload_name: str = "A",
             num_keys: int = 20_000, insert_pool: int = 2_000,
             dataset_name: str = "u64",
             ops: int = 20_000, seed: int = 0,
             warmup_ops_per_cn: int = 0,
             events: Sequence[TopologyEvent] = (),
             chaos_seed: Optional[int] = None,
             chaos_crashes: bool = False,
             fault_plan=None,
             recovery: bool = False,
             fsck_repair: bool = False,
             index_factory=None,
             time_limit_ns: int = 10_000_000_000_000) -> RackRunResult:
    """One rack-scale serving run; see the module docstring for phases.

    ``tenants`` is a roster (:class:`TenancyConfig`), a count (the
    deterministic :func:`default_tenants` roster of that size), or
    ``None`` for a single-tenant run on the plain runner path.  The
    rack's ``spec.clients`` client generators are the run's workers.

    ``fault_plan`` attaches an explicit :class:`repro.fault.FaultPlan`
    (e.g. a scheduled ``crash_mn``) instead of the ``chaos_seed``
    generated one; with ``spec.replicas > 0`` a ``replicationd`` daemon
    runs next to the traffic - failing over dead groups online and
    sweeping anti-entropy repairs - and the run settles all failover
    work before the final fsck.
    """
    spec = spec if spec is not None else ClusterSpec()
    for event in events:
        event.validate()
    rack = Rack(spec, index_factory=index_factory)
    dataset = make_dataset(dataset_name, num_keys, seed=1,
                           insert_pool=insert_pool)
    bulk_load(rack.cluster, rack, dataset)
    if fault_plan is not None:
        rack.cluster.attach_faults(fault_plan)
    elif chaos_seed is not None:
        from ..fault import FaultPlan  # local: fault is optional here
        rack.cluster.attach_faults(FaultPlan.chaos(
            chaos_seed, crashes=chaos_crashes, num_mns=spec.num_mns))
    if recovery or chaos_crashes:
        rack.cluster.attach_recovery()
    controller = None
    if tenants is not None:
        config = tenants if isinstance(tenants, TenancyConfig) \
            else default_tenants(tenants)
        controller = TenancyController(config)
    engine = rack.cluster.engine
    start_ns = engine.now
    topology_log: List[Dict] = []
    topo_proc = None
    rebalancer = Rebalancer(rack)
    failover = None
    if spec.replicas > 0:
        failover = FailoverManager(rack, rebalancer)
        engine.process(failover.daemon(), name="replicationd")
    if events:
        topo_proc = engine.process(
            _topology_daemon(rack, rebalancer, events, start_ns,
                             topology_log),
            name="topologyd")
    result = run_workload(
        rack.cluster, rack, workload(workload_name), dataset,
        system="Rack", workers=spec.clients, ops=ops,
        warmup_ops_per_cn=warmup_ops_per_cn, seed=seed,
        time_limit_ns=time_limit_ns, tenancy=controller)
    if topo_proc is not None and not topo_proc.triggered:
        # Traffic finished first: drive the remaining migrations (and
        # any not-yet-due events) to completion on the same clock.
        engine.run_until_complete(topo_proc,
                                  limit=start_ns + 2 * time_limit_ns)
    if failover is not None:
        # Settle: fail over any still-unhandled dead group, reconcile
        # every replica set, and run one full anti-entropy pass, so the
        # fsck below sees replicas at rest, not mid-repair.
        engine.run_until_complete(
            engine.process(failover.settle(), name="replication-settle"),
            limit=start_ns + 4 * time_limit_ns)
    fsck_reports = rack.fsck_all(repair=fsck_repair)
    fsck_exit = max((_fsck_exit(report) for _gid, report in fsck_reports),
                    default=0)
    rebalance_row = {
        "shards_moved": len(rebalancer.completed),
        "keys_moved": sum(m[3] for m in rebalancer.completed),
        "forfeited_chaos": len(rebalancer.forfeited_chaos),
        "forfeited_dead": len(rebalancer.forfeited_dead),
        "aborted_migrations": len(rebalancer.aborted),
    }
    replication_row = None
    if failover is not None:
        replication_row = {
            "counters": dict(sorted(rack.repl.as_dict().items())),
            "promotions": len(failover.promotions),
            "failover_forfeited_keys": len(failover.forfeited),
            "mid_migration_failovers": failover.mid_migration_failovers,
            "max_epoch": max(rack.epochs),
        }
    return RackRunResult(result=result, rack=rack,
                         tenants=result.tenants or [],
                         topology=topology_log,
                         fsck_exit=fsck_exit, fsck_reports=fsck_reports,
                         rebalance=rebalance_row,
                         replication=replication_row,
                         failover=failover)
