"""Weighted-fair scheduling and the per-run tenancy controller.

:class:`WeightedFairScheduler` is start-time-fair queueing in integer
virtual time: picking tenant ``t`` advances its virtual finish time by
``VT_UNIT // weight[t]``, so over any saturated interval tenants complete
ops proportionally to their weights.  The idle catch-up (``max(vtime,
vnow)``) keeps a tenant that was throttled by admission from hoarding an
unbounded virtual-time credit and starving everyone once its bucket
refills.

:class:`TenancyController` is the object the tenant-aware YCSB workers
share: it owns each tenant's token bucket, virtual time, and metric
stores (OpStats / latency / failure counts), and hands out admission
decisions.  It is pure state plus integer arithmetic driven by the
simulated clock - no randomness, no wall time - so the per-tenant
schedule is a deterministic function of (roster, seed, topology).
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..dm.rdma import OpStats
from ..obs.counters import Counters
from ..sim.resources import LatencyRecorder
from .admission import TokenBucket
from .spec import TenancyConfig

#: Virtual-time cost of one op at weight 1.  Large enough that integer
#: division by any sane weight keeps plenty of resolution.
VT_UNIT = 1 << 20


class WeightedFairScheduler:
    """Start-time-fair queueing over a fixed tenant set, integer-only."""

    __slots__ = ("_weights", "_vtime", "_vnow")

    def __init__(self, weights: Sequence[int]):
        self._weights = list(weights)
        self._vtime = [0] * len(self._weights)
        self._vnow = 0

    def pick(self, candidates: Sequence[int]) -> int:
        """Pick the candidate with the least virtual time (index breaks
        ties, so the choice is total and deterministic)."""
        best = min(candidates, key=lambda t: (self._vtime[t], t))
        start = max(self._vtime[best], self._vnow)
        self._vnow = start
        self._vtime[best] = start + VT_UNIT // self._weights[best]
        return best


class TenancyController:
    """Shared multiplexing state for one tenant-aware run.

    Workers call :meth:`acquire` before every op; the controller either
    admits a tenant now (WFQ over every tenant whose bucket has a token)
    or, with every bucket empty, returns how long to sleep until the
    earliest refill.  Both paths are functions of the simulated clock
    only.
    """

    def __init__(self, config: TenancyConfig):
        config.validate()
        self.config = config
        self.tenants = config.tenants
        n = len(self.tenants)
        self.sched = WeightedFairScheduler([t.weight for t in self.tenants])
        self.buckets: List[Optional[TokenBucket]] = [
            TokenBucket(t.rate_ops_per_s, t.burst_ops)
            if t.rate_ops_per_s is not None else None
            for t in self.tenants]
        self.workload_specs = [t.workload_spec() for t in self.tenants]
        # Per-tenant metric stores, filled by the tenant-aware workers.
        self.op_stats = [OpStats() for _ in range(n)]
        self.latency = [LatencyRecorder() for _ in range(n)]
        self.ops_done = [0] * n
        self.failed_ops = [0] * n
        # Degraded-mode failures: ops that died on MNUnavailable or
        # StaleEpoch (a dead shard / a failover fence), counted apart
        # from chaos retries so rack tables show who served through an
        # outage and who paid for it.
        self.degraded_ops = [0] * n
        # Retry budgets: failed ops charged against TenantSpec.
        # retry_budget; once spent, the tenant only wins admission when
        # no in-budget tenant is ready.
        self.retry_spent = [0] * n
        self.budget_deferrals = [0] * n
        self._has_budgets = any(t.retry_budget is not None
                                for t in self.tenants)
        # Run-wide throttle accounting (a wait with every bucket empty
        # belongs to no single tenant).
        self.throttle_waits = 0
        self.throttle_wait_ns = 0

    def __len__(self) -> int:
        return len(self.tenants)

    def acquire(self, now_ns: int) -> Tuple[int, int]:
        """``(tenant, 0)`` when a tenant is admitted at ``now_ns``, or
        ``(-1, wait_ns)`` when every bucket is empty."""
        ready = [t for t, bucket in enumerate(self.buckets)
                 if bucket is None or bucket.ready_ns(now_ns) <= now_ns]
        if ready:
            if self._has_budgets:
                in_budget = [t for t in ready if not self.over_budget(t)]
                if in_budget and len(in_budget) < len(ready):
                    for t in ready:
                        if t not in in_budget:
                            self.budget_deferrals[t] += 1
                    ready = in_budget
            tenant = self.sched.pick(ready)
            bucket = self.buckets[tenant]
            if bucket is not None:
                bucket.take(now_ns)
            return tenant, 0
        wait = min(bucket.ready_ns(now_ns)
                   for bucket in self.buckets) - now_ns
        wait = max(wait, 1)
        self.throttle_waits += 1
        self.throttle_wait_ns += wait
        return -1, wait

    # -- retry budgets -----------------------------------------------------
    def over_budget(self, tenant: int) -> bool:
        """``True`` once ``tenant`` has spent its whole retry budget."""
        budget = self.tenants[tenant].retry_budget
        return budget is not None and self.retry_spent[tenant] >= budget

    def charge_retry(self, tenant: int, amount: int = 1) -> None:
        """Charge ``amount`` failed ops against ``tenant``'s budget.
        Tenants without a budget still accumulate ``retry_spent`` for
        reporting; only budgeted tenants can be demoted by it."""
        self.retry_spent[tenant] += amount

    # -- results -----------------------------------------------------------
    def merge_opstats_into(self, total: OpStats) -> None:
        """Fold every tenant's verb totals into the run-level OpStats."""
        for stats in self.op_stats:
            for field in _dataclass_fields(stats):
                setattr(total, field.name,
                        getattr(total, field.name)
                        + getattr(stats, field.name))

    def tenant_counters(self, tenant: int) -> Counters:
        """One tenant's verb totals in the shared facade shape."""
        return Counters.from_opstats(self.op_stats[tenant])

    def tenant_rows(self, sim_ns: int) -> List[Dict]:
        """Per-tenant goodput/latency rows (the rack table's columns)."""
        rows = []
        seconds = max(sim_ns, 1) / 1e9
        for t, spec in enumerate(self.tenants):
            ops = self.ops_done[t]
            failed = self.failed_ops[t]
            counters = self.tenant_counters(t)
            rows.append({
                "tenant": spec.name,
                "workload": spec.workload,
                "weight": spec.weight,
                "rate_ops_per_s": spec.rate_ops_per_s,
                "ops": ops,
                "failed_ops": failed,
                "degraded_ops": self.degraded_ops[t],
                "retry_budget": spec.retry_budget,
                "retry_spent": self.retry_spent[t],
                "budget_deferrals": self.budget_deferrals[t],
                "goodput_mops": round((ops - failed) / seconds / 1e6, 4),
                "avg_latency_us": round(self.latency[t].mean() / 1e3, 3),
                "p99_latency_us": round(
                    self.latency[t].percentile(99) / 1e3, 3),
                "round_trips_per_op": round(
                    counters["round_trips"] / ops, 3) if ops else 0.0,
            })
        return rows
