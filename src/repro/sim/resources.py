"""Queueing resources and measurement helpers for the simulator.

:class:`FifoServer` models a work-conserving FIFO server (a NIC port, a
DRAM controller): jobs are served in submission order, each occupying the
server for its service time.  Queueing delay under load is what produces
the throughput-latency saturation curves of the paper's Fig 5.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, List, Sequence

from ..errors import InvalidArgument
from .engine import Engine, Event


class FifoServer:
    """A FIFO queue in front of ``capacity`` identical servers.

    ``submit(service_time)`` returns an event that fires when the job has
    *finished* service.  With capacity 1 this is an M/G/1-style station;
    NICs with multiple processing units can use a higher capacity.
    """

    def __init__(self, engine: Engine, name: str, capacity: int = 1):
        if capacity < 1:
            raise InvalidArgument("capacity must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        # Min-heap of times at which each server becomes free.  The
        # ubiquitous capacity-1 station (every NIC in the default
        # cluster) keeps its single free time in a scalar instead.
        self._free_at: List[int] = [0] * capacity
        heapq.heapify(self._free_at)
        self._free1: int = 0
        self.busy_time: int = 0
        self.jobs: int = 0

    def submit(self, service_time: int, arrive_delay: int = 0) -> Event:
        """Enqueue a job needing ``service_time`` ns; event fires at completion.

        ``arrive_delay`` models a job that reaches this station only after a
        fixed delay (e.g. wire propagation): service cannot start before
        ``now + arrive_delay``.
        """
        if service_time < 0:
            raise InvalidArgument("service_time must be >= 0")
        if arrive_delay < 0:
            raise InvalidArgument("arrive_delay must be >= 0")
        now = self.engine.now
        if self.capacity == 1:
            start = now + arrive_delay
            if self._free1 > start:
                start = self._free1
            done = start + service_time
            self._free1 = done
        else:
            free_at = heapq.heappop(self._free_at)
            start = max(now + arrive_delay, free_at)
            done = start + service_time
            heapq.heappush(self._free_at, done)
        self.busy_time += service_time
        self.jobs += 1
        return self.engine.timeout(done - now)

    def submit_burst(self, service_times: Sequence[int],
                     arrive_delay: int = 0) -> List[int]:
        """Enqueue a run of jobs submitted back-to-back at the current
        time; returns the **absolute** completion time of each.

        This is the closed form of calling :meth:`submit` once per job at
        the same ``now`` on a capacity-1 station: the first job starts at
        ``max(now + arrive_delay, free)`` and the rest chain behind it, so
        ``done[i] = start + sum(service_times[:i+1])``.  Station counters
        (``busy_time``, ``jobs``, the free time) advance exactly as the
        per-job path would.  No events are scheduled - callers that need
        completion events schedule their own (see the doorbell trip in
        ``repro.dm.rdma``).
        """
        if arrive_delay < 0:
            raise InvalidArgument("arrive_delay must be >= 0")
        if not service_times:
            return []
        if self.capacity != 1:
            # Rare configuration: fall back to the per-job path's math.
            out = []
            now = self.engine.now
            for svc in service_times:
                if svc < 0:
                    raise InvalidArgument("service_time must be >= 0")
                free_at = heapq.heappop(self._free_at)
                done = max(now + arrive_delay, free_at) + svc
                heapq.heappush(self._free_at, done)
                self.busy_time += svc
                self.jobs += 1
                out.append(done)
            return out
        cursor = self.engine.now + arrive_delay
        if self._free1 > cursor:
            cursor = self._free1
        out = []
        total = 0
        for svc in service_times:
            if svc < 0:
                raise InvalidArgument("service_time must be >= 0")
            cursor += svc
            total += svc
            out.append(cursor)
        self._free1 = cursor
        self.busy_time += total
        self.jobs += len(out)
        return out

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this station spent busy."""
        if self.engine.now == 0:
            return 0.0
        return self.busy_time / (self.engine.now * self.capacity)

    def backlog_ns(self, now: int) -> int:
        """Accepted-but-unfinished work, in ns, ahead of a job arriving
        at simulated time ``now`` - the queue-depth gauge sampled by
        :class:`repro.obs.Tracer`."""
        free = self._free1 if self.capacity == 1 else self._free_at[0]
        return free - now if free > now else 0

    def reset_stats(self) -> None:
        self.busy_time = 0
        self.jobs = 0


class LatencyRecorder:
    """Collects per-operation latencies (ns) and summarizes them.

    Samples live in an ``array('q')`` (8 bytes each) instead of a Python
    list of boxed ints (~32 bytes each plus pointer): a 400k-key grid
    cell records millions of latencies per run, and the recorder used to
    keep *two* full int lists resident (``samples`` plus the sorted
    view).  ``array`` supports the same ``==``/``len``/iteration
    contract the equivalence suites rely on, and pickles across the
    fork-pool boundary.
    """

    def __init__(self):
        self.samples: array = array("q")
        # Sorted view, computed on the first percentile() call and
        # reused until the next record(); summary() alone asks for two
        # percentiles, so re-sorting per call dominated reporting time.
        self._sorted: List[int] | None = None

    def record(self, latency_ns: int) -> None:
        self.samples.append(latency_ns)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        data = self._sorted
        if data is None or len(data) != len(self.samples):
            data = self._sorted = sorted(self.samples)
        if len(data) == 1:
            return float(data[0])
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ns": self.mean(),
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
        }
