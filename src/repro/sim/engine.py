"""A small deterministic discrete-event simulation engine.

This is the timing substrate for the disaggregated-memory model: client
operations are Python generators that ``yield`` events (timeouts, resource
grants, sub-operations) and are resumed by the engine when those events
fire.  The design follows SimPy's process/event model, trimmed to exactly
what the RDMA substrate needs:

* :class:`Event` - one-shot, carries a value, runs callbacks when fired.
* :class:`Timeout` - an event scheduled ``delay`` ns in the future.
* :class:`Process` - wraps a generator; itself an event that fires with
  the generator's return value.
* :class:`AllOf` - fires when every child event has fired (used for
  doorbell-batched RDMA operations, which complete together).
* :class:`Engine` - the clock and the event heap.

Time is integer **nanoseconds**; all ordering is deterministic (ties broken
by schedule order), which keeps benchmark results reproducible.

Fast path
---------

Most events in an RDMA workload are *zero-delay bookkeeping* - process
bootstraps, ``succeed()`` of batch members, AllOf completions - not
timing-relevant completions.  The engine therefore keeps two structures:

* a min-heap for events scheduled strictly in the future, and
* a plain FIFO deque for events due "now".

Both store ``(time, seq, event)`` with a shared monotonically increasing
``seq``, and :meth:`Engine.run` merges them by ``(time, seq)``, so the
execution order is **identical** to the single-heap engine - same
deterministic tie-breaks, same results - while the common case pays a
deque append/popleft instead of a heap push/pop.  Setting the environment
variable ``REPRO_SIM_SLOW=1`` (checked at :class:`Engine` construction)
routes every event through the heap again; the equivalence test in
``tests/test_sim_fastpath.py`` diffs benchmark rows across the two paths.

Similarly, almost every event has exactly one subscriber (the generator
that yielded it), so callbacks live in a single slot (``_cb1``) and only
spill into a list when a second subscriber appears; a ``yield
engine.timeout(d)`` resumes its generator straight from the event pop
with no intermediate callback list.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

PENDING = object()

#: Sentinel stored in an event's callback slot once the engine has
#: processed it; late subscribers then run immediately.
_PROCESSED = object()


def _slow_requested() -> bool:
    return os.environ.get("REPRO_SIM_SLOW", "") not in ("", "0")


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` gives it a value and queues
    its callbacks for execution at the current simulation time.
    """

    __slots__ = ("engine", "_cb1", "_spill", "_value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._spill: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = PENDING

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Subscriber list view (introspection; ``None`` once processed)."""
        if self._cb1 is _PROCESSED:
            return None
        out: List[Callable[["Event"], None]] = []
        if self._cb1 is not None:
            out.append(self._cb1)
        if self._spill:
            out.extend(self._spill)
        return out

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not PENDING:
            raise SimulationError("event triggered twice")
        self._value = value
        self.engine._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        cb1 = self._cb1
        if cb1 is None:
            self._cb1 = fn
        elif cb1 is _PROCESSED:
            # Already processed: run the callback immediately so late
            # subscribers (e.g. AllOf over a triggered event) still fire.
            fn(self)
        elif self._spill is None:
            self._spill = [fn]
        else:
            self._spill.append(fn)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine)
        self._value = value
        engine._schedule(self, delay)


class Process(Event):
    """Drives a generator of events; fires with the generator's return value.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value.  ``yield from`` composes sub-operations naturally.
    """

    __slots__ = ("_gen", "name", "_resume_cb")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Bind the resume callback once: it is re-registered on every
        # yield, and bound-method creation per event is measurable.
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time.
        boot = Event(engine)
        boot._cb1 = self._resume_cb
        boot._value = None
        engine._queue_event(boot)

    def _resume(self, event: Event) -> None:
        try:
            target = self._gen.send(event._value)
        except StopIteration as stop:
            if self._value is PENDING:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        target.add_callback(self._resume_cb)


class AllOf(Event):
    """Fires once all ``events`` have fired; value is the list of values.

    Models doorbell batching: a batch of RDMA verbs is posted at once and
    the client proceeds when the last completion arrives.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([c.value for c in self._children])


class Engine:
    """The simulation clock and scheduler.

    ``slow=None`` (the default) consults ``REPRO_SIM_SLOW``; passing an
    explicit boolean pins the scheduling path regardless of environment.
    """

    def __init__(self, slow: Optional[bool] = None):
        self.now: int = 0
        self._heap: List = []
        self._fifo: deque = deque()
        self._seq = 0
        self._slow = _slow_requested() if slow is None else bool(slow)
        self.events_processed: int = 0

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        self._seq += 1
        if delay == 0 and not self._slow:
            self._fifo.append((self.now, self._seq, event))
        else:
            heappush(self._heap, (self.now + delay, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        self._seq += 1
        if self._slow:
            heappush(self._heap, (self.now, self._seq, event))
        else:
            self._fifo.append((self.now, self._seq, event))

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next event across both queues, if any."""
        if self._fifo:
            if self._heap and self._heap[0][0] < self._fifo[0][0]:
                return self._heap[0][0]
            return self._fifo[0][0]
        if self._heap:
            return self._heap[0][0]
        return None

    # -- public factory helpers ---------------------------------------
    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- main loop ----------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Process events until both queues empty or the clock passes
        ``until``.  Returns the final simulation time."""
        heap = self._heap
        fifo = self._fifo
        while heap or fifo:
            # The FIFO's head carries the smallest (time, seq) of the
            # FIFO (times are non-decreasing in append order and seq is
            # globally monotonic), so one head-to-head comparison picks
            # the globally next event - identical order to one big heap.
            if fifo and not (heap and heap[0] < fifo[0]):
                when, _seq, event = fifo[0]
                if until is not None and when > until:
                    self.now = until
                    return until
                fifo.popleft()
            else:
                when, _seq, event = heap[0]
                if until is not None and when > until:
                    self.now = until
                    return until
                heappop(heap)
            self.now = when
            self.events_processed += 1
            cb1 = event._cb1
            spill = event._spill
            event._cb1 = _PROCESSED
            if cb1 is not None:
                cb1(event)
                if spill:
                    event._spill = None
                    for fn in spill:
                        fn(event)
        return self.now

    def run_until_complete(self, process: Process,
                           limit: Optional[int] = None) -> Any:
        """Run until ``process`` finishes; returns its value.

        ``limit`` guards against runaway simulations (deadlock / livelock
        bugs) by bounding simulated time.
        """
        while not process.triggered:
            when = self._peek_time()
            if when is None:
                raise SimulationError(
                    f"deadlock: process {process.name!r} pending with an "
                    "empty event heap"
                )
            if limit is not None and when > limit:
                raise SimulationError(
                    f"process {process.name!r} exceeded time limit {limit}"
                )
            self.run(until=when)
        return process.value
