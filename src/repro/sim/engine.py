"""A small deterministic discrete-event simulation engine.

This is the timing substrate for the disaggregated-memory model: client
operations are Python generators that ``yield`` events (timeouts, resource
grants, sub-operations) and are resumed by the engine when those events
fire.  The design follows SimPy's process/event model, trimmed to exactly
what the RDMA substrate needs:

* :class:`Event` - one-shot, carries a value, runs callbacks when fired.
* :class:`Timeout` - an event scheduled ``delay`` ns in the future.
* :class:`Process` - wraps a generator; itself an event that fires with
  the generator's return value.
* :class:`AllOf` - fires when every child event has fired (used for
  doorbell-batched RDMA operations, which complete together).
* :class:`Engine` - the clock and the event heap.

Time is integer **nanoseconds**; all ordering is deterministic (ties broken
by schedule order), which keeps benchmark results reproducible.

Fast path
---------

Most events in an RDMA workload are *zero-delay bookkeeping* - process
bootstraps, ``succeed()`` of batch members, AllOf completions - not
timing-relevant completions.  The engine therefore keeps two structures:

* a min-heap of ``(time, seq, event)`` for events scheduled strictly in
  the future, and
* a plain FIFO deque of bare events due "now" (each event carries its
  ``_when``/``_seq`` in slots, so no per-event tuple is allocated).

``seq`` is shared and monotonically increasing, so merging the two by
``(time, seq)`` reproduces the single-heap execution order exactly.  The
fast loop exploits an invariant of this split: every heap entry at time
``t`` was created strictly before simulated time ``t`` (a positive delay
always lands in the future), while every FIFO entry at time ``t`` was
created *at* time ``t`` - so at each timestamp the heap run drains first,
then the FIFO run, and nothing created during the drain can sort into the
part already drained.  :meth:`Engine.run` therefore advances ``self.now``
once per timestamp and dispatches whole same-time runs in tight inner
loops ("macro-batch draining") instead of re-entering the heap-vs-FIFO
comparison per event.

Two more mechanisms ride on the batched loop:

* **single-subscriber resume specialization** - almost every event has
  exactly one subscriber: the generator that yielded it.  The first
  process to subscribe is stored in a dedicated ``_proc`` slot and the
  dispatch loop calls ``gen.send`` directly, with no bound-method call,
  no callback-list walk, and no tuple unpacking.  Later subscribers fall
  back to the ``_cb1``/``_spill`` slots; dispatch order is always
  ``_proc`` then ``_cb1`` then ``_spill`` = subscription order.
* **slab event pooling** - processed single-subscriber :class:`Timeout`
  objects are recycled onto a free list and reused by
  :meth:`Engine.timeout`.  An event is recycled only when (a) it is
  exactly a ``Timeout``, (b) its only subscriber was the ``_proc`` slot
  (no spilled callbacks), and (c) ``sys.getrefcount`` proves the loop
  holds the sole reference - so events stored by client code, AllOf
  children, or anything else introspectable are never recycled.

Setting the environment variable ``REPRO_SIM_SLOW=1`` (checked at
:class:`Engine` construction) routes every event through the heap again
and dispatches strictly one event at a time through the callback slots,
with no pooling and no ``_proc`` specialization - the bit-identical
reference oracle.  The equivalence suites in ``tests/test_sim_fastpath.py``
and ``tests/test_perf_equivalence.py`` diff benchmark rows across the two
paths.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

PENDING = object()

#: Sentinel stored in an event's callback slot once the engine has
#: processed it; late subscribers then run immediately.
_PROCESSED = object()

#: Sentinel a generator may yield to tell the dispatch loop "I already
#: subscribed myself to a future event" (see repro.dm.rdma's verb trips).
#: The loop skips subscriber registration; the generator is resumed when
#: whatever event it attached itself to fires.
_DEFER = object()

#: Upper bound on the Timeout free list; beyond this, processed events
#: are simply dropped to the garbage collector.
_POOL_CAP = 4096


def _slow_requested() -> bool:
    return os.environ.get("REPRO_SIM_SLOW", "") not in ("", "0")


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` gives it a value and queues
    its callbacks for execution at the current simulation time.
    """

    __slots__ = ("engine", "_cb1", "_spill", "_value", "_proc", "_when",
                 "_seq")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._spill: Optional[List[Callable[["Event"], None]]] = None
        self._proc: Optional["Process"] = None
        self._value: Any = PENDING

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Subscriber list view (introspection; ``None`` once processed)."""
        if self._cb1 is _PROCESSED:
            return None
        out: List[Callable[["Event"], None]] = []
        if self._proc is not None:
            out.append(self._proc._resume_cb)
        if self._cb1 is not None:
            out.append(self._cb1)
        if self._spill:
            out.extend(self._spill)
        return out

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not PENDING:
            raise SimulationError("event triggered twice")
        self._value = value
        self.engine._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        cb1 = self._cb1
        if cb1 is None:
            self._cb1 = fn
        elif cb1 is _PROCESSED:
            # Already processed: run the callback immediately so late
            # subscribers (e.g. AllOf over a triggered event) still fire.
            fn(self)
        elif self._spill is None:
            self._spill = [fn]
        else:
            self._spill.append(fn)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine)
        self._value = value
        engine._schedule(self, delay)


class Process(Event):
    """Drives a generator of events; fires with the generator's return value.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value.  ``yield from`` composes sub-operations naturally.
    """

    __slots__ = ("_gen", "name", "_resume_cb")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Bind the resume callback once: it is re-registered on every
        # yield, and bound-method creation per event is measurable.
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time.  The fast loop's
        # _proc slot dispatches it straight into the generator; the slow
        # reference path keeps the callback-slot route.
        if engine._slow:
            boot = Event(engine)
            boot._cb1 = self._resume_cb
            boot._value = None
            engine._queue_event(boot)
        else:
            boot = engine.timeout(0)
            boot._proc = self

    def _resume(self, event: Event) -> None:
        engine = self.engine
        engine._active = self
        try:
            target = self._gen.send(event._value)
        except StopIteration as stop:
            if self._value is PENDING:
                self.succeed(stop.value)
            return
        if isinstance(target, Event):
            target.add_callback(self._resume_cb)
            return
        if target is _DEFER:
            return
        self._gen.close()
        raise SimulationError(
            f"process {self.name!r} yielded {type(target).__name__}, "
            "expected an Event"
        )


class AllOf(Event):
    """Fires once all ``events`` have fired; value is the list of values.

    Models doorbell batching: a batch of RDMA verbs is posted at once and
    the client proceeds when the last completion arrives.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([c.value for c in self._children])


class Engine:
    """The simulation clock and scheduler.

    ``slow=None`` (the default) consults ``REPRO_SIM_SLOW``; passing an
    explicit boolean pins the scheduling path regardless of environment.
    """

    def __init__(self, slow: Optional[bool] = None):
        self.now: int = 0
        self._heap: List = []
        self._fifo: deque = deque()
        self._seq = 0
        self._slow = _slow_requested() if slow is None else bool(slow)
        self._pool: List[Timeout] = []
        self._active: Optional[Process] = None
        #: Time bound of the loop currently driving the engine (``until``
        #: or ``limit``), None when unbounded.  The synchronous verb
        #: fast-forward in repro.dm.rdma only runs unbounded: with a
        #: deadline armed, every stage must be a real event so until-
        #: slicing and limit errors stay bit-identical to the reference.
        self._deadline: Optional[int] = None
        self.events_processed: int = 0

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        seq = self._seq = self._seq + 1
        if delay == 0 and not self._slow:
            event._when = self.now
            event._seq = seq
            self._fifo.append(event)
        else:
            heappush(self._heap, (self.now + delay, seq, event))

    def _queue_event(self, event: Event) -> None:
        seq = self._seq = self._seq + 1
        if self._slow:
            heappush(self._heap, (self.now, seq, event))
        else:
            event._when = self.now
            event._seq = seq
            self._fifo.append(event)

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next event across both queues, if any."""
        if self._fifo:
            when = self._fifo[0]._when
            if self._heap and self._heap[0][0] < when:
                return self._heap[0][0]
            return when
        if self._heap:
            return self._heap[0][0]
        return None

    # -- public factory helpers ---------------------------------------
    def timeout(self, delay: int, value: Any = None) -> Timeout:
        # Inlined Timeout construction + scheduling: this is the single
        # hottest allocation site in the simulator (one per NIC service
        # completion), so it bypasses __init__ and _schedule and reuses
        # pooled events directly.
        if type(delay) is not int:
            delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        pool = self._pool
        if pool:
            ev = pool.pop()
        else:
            ev = Timeout.__new__(Timeout)
            ev.engine = self
            ev._cb1 = None
            ev._spill = None
            ev._proc = None
        ev._value = value
        seq = self._seq = self._seq + 1
        if delay == 0 and not self._slow:
            ev._when = self.now
            ev._seq = seq
            self._fifo.append(ev)
        else:
            heappush(self._heap, (self.now + delay, seq, ev))
        return ev

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- main loop ----------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Process events until both queues empty or the clock passes
        ``until``.  Returns the final simulation time."""
        if self._slow:
            return self._run_ref(until)
        return self._run_fast(until, None, None)

    def run_until_complete(self, process: Process,
                           limit: Optional[int] = None) -> Any:
        """Run until ``process`` finishes; returns its value.

        ``limit`` guards against runaway simulations (deadlock / livelock
        bugs) by bounding simulated time.
        """
        if self._slow:
            while not process.triggered:
                when = self._peek_time()
                if when is None:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} pending with "
                        "an empty event heap"
                    )
                if limit is not None and when > limit:
                    raise SimulationError(
                        f"process {process.name!r} exceeded time limit "
                        f"{limit}"
                    )
                self._run_ref(until=when)
            return process.value
        if not process.triggered:
            self._run_fast(None, process, limit)
        return process.value

    def _run_fast(self, until: Optional[int], stop: Optional[Process],
                  limit: Optional[int]) -> int:
        """Batched dispatch loop (the fast path).

        Processes whole same-timestamp runs per iteration: the heap run
        first (created strictly before this timestamp, so smaller seq),
        then the FIFO run (created at this timestamp; appends during the
        drain join the same run in seq order).  ``stop`` turns the loop
        into ``run_until_complete``: after each complete timestamp batch
        the stop process is checked, and an empty queue with ``stop``
        still pending is a deadlock.
        """
        heap = self._heap
        fifo = self._fifo
        pool = self._pool
        popleft = fifo.popleft
        pool_append = pool.append
        refcount = sys.getrefcount
        pool_cap = _POOL_CAP
        processed = 0
        self._deadline = until if until is not None else limit
        try:
            while heap or fifo:
                if fifo:
                    t = fifo[0]._when
                    if heap and heap[0][0] < t:
                        t = heap[0][0]
                else:
                    t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    return until
                if limit is not None and t > limit:
                    raise SimulationError(
                        f"process {stop.name!r} exceeded time limit {limit}"
                    )
                self.now = t
                while heap and heap[0][0] == t:
                    event = heappop(heap)[2]
                    processed += 1
                    proc = event._proc
                    if proc is not None:
                        event._proc = None
                        cb1 = event._cb1
                        event._cb1 = _PROCESSED
                        self._active = proc
                        gen = proc._gen
                        try:
                            target = gen.send(event._value)
                        except StopIteration as stop_iter:
                            if proc._value is PENDING:
                                proc.succeed(stop_iter.value)
                        else:
                            if isinstance(target, Event):
                                if (target._cb1 is None
                                        and target._proc is None):
                                    target._proc = proc
                                else:
                                    target.add_callback(proc._resume_cb)
                            elif target is not _DEFER:
                                gen.close()
                                raise SimulationError(
                                    f"process {proc.name!r} yielded "
                                    f"{type(target).__name__}, expected "
                                    "an Event"
                                )
                        if cb1 is not None:
                            cb1(event)
                            spill = event._spill
                            if spill:
                                event._spill = None
                                for fn in spill:
                                    fn(event)
                        elif (type(event) is Timeout
                              and refcount(event) == 2
                              and len(pool) < pool_cap):
                            event._value = PENDING
                            event._cb1 = None
                            pool_append(event)
                    else:
                        cb1 = event._cb1
                        event._cb1 = _PROCESSED
                        if cb1 is not None:
                            cb1(event)
                            spill = event._spill
                            if spill:
                                event._spill = None
                                for fn in spill:
                                    fn(event)
                while fifo and fifo[0]._when == t:
                    event = popleft()
                    processed += 1
                    proc = event._proc
                    if proc is not None:
                        event._proc = None
                        cb1 = event._cb1
                        event._cb1 = _PROCESSED
                        self._active = proc
                        gen = proc._gen
                        try:
                            target = gen.send(event._value)
                        except StopIteration as stop_iter:
                            if proc._value is PENDING:
                                proc.succeed(stop_iter.value)
                        else:
                            if isinstance(target, Event):
                                if (target._cb1 is None
                                        and target._proc is None):
                                    target._proc = proc
                                else:
                                    target.add_callback(proc._resume_cb)
                            elif target is not _DEFER:
                                gen.close()
                                raise SimulationError(
                                    f"process {proc.name!r} yielded "
                                    f"{type(target).__name__}, expected "
                                    "an Event"
                                )
                        if cb1 is not None:
                            cb1(event)
                            spill = event._spill
                            if spill:
                                event._spill = None
                                for fn in spill:
                                    fn(event)
                        elif (type(event) is Timeout
                              and refcount(event) == 2
                              and len(pool) < pool_cap):
                            event._value = PENDING
                            event._cb1 = None
                            pool_append(event)
                    else:
                        cb1 = event._cb1
                        event._cb1 = _PROCESSED
                        if cb1 is not None:
                            cb1(event)
                            spill = event._spill
                            if spill:
                                event._spill = None
                                for fn in spill:
                                    fn(event)
                if stop is not None and stop._value is not PENDING:
                    # A synchronous verb fast-forward may have advanced
                    # the clock past this batch's timestamp before the
                    # stop process succeeded; its completion event (and
                    # nothing else - sync runs only on idle queues) is
                    # then still pending at self.now.  The reference
                    # path always consumes same-time completions before
                    # returning, so drain up to the clock first.
                    if ((fifo and fifo[0]._when <= self.now)
                            or (heap and heap[0][0] <= self.now)):
                        continue
                    return self.now
            if stop is not None and stop._value is PENDING:
                raise SimulationError(
                    f"deadlock: process {stop.name!r} pending with an "
                    "empty event heap"
                )
            return self.now
        finally:
            self.events_processed += processed
            self._active = None
            self._deadline = None

    def _run_ref(self, until: Optional[int] = None) -> int:
        """Reference dispatch loop: one event at a time, merged by
        ``(time, seq)`` head-to-head - the ``REPRO_SIM_SLOW=1`` oracle."""
        heap = self._heap
        fifo = self._fifo
        try:
            while heap or fifo:
                if fifo and not (heap
                                 and (heap[0][0], heap[0][1])
                                 < (fifo[0]._when, fifo[0]._seq)):
                    event = fifo[0]
                    when = event._when
                    if until is not None and when > until:
                        self.now = until
                        return until
                    fifo.popleft()
                else:
                    when, _seq, event = heap[0]
                    if until is not None and when > until:
                        self.now = until
                        return until
                    heappop(heap)
                self.now = when
                self.events_processed += 1
                proc = event._proc
                cb1 = event._cb1
                spill = event._spill
                event._cb1 = _PROCESSED
                if proc is not None:
                    event._proc = None
                    proc._resume_cb(event)
                if cb1 is not None:
                    cb1(event)
                    if spill:
                        event._spill = None
                        for fn in spill:
                            fn(event)
            return self.now
        finally:
            self._active = None
