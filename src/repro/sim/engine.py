"""A small deterministic discrete-event simulation engine.

This is the timing substrate for the disaggregated-memory model: client
operations are Python generators that ``yield`` events (timeouts, resource
grants, sub-operations) and are resumed by the engine when those events
fire.  The design follows SimPy's process/event model, trimmed to exactly
what the RDMA substrate needs:

* :class:`Event` - one-shot, carries a value, runs callbacks when fired.
* :class:`Timeout` - an event scheduled ``delay`` ns in the future.
* :class:`Process` - wraps a generator; itself an event that fires with
  the generator's return value.
* :class:`AllOf` - fires when every child event has fired (used for
  doorbell-batched RDMA operations, which complete together).
* :class:`Engine` - the clock and the event heap.

Time is integer **nanoseconds**; all ordering is deterministic (ties broken
by schedule order), which keeps benchmark results reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` gives it a value and queues
    its callbacks for execution at the current simulation time.
    """

    __slots__ = ("engine", "callbacks", "_value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._value = value
        self.engine._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately so late
            # subscribers (e.g. AllOf over a triggered event) still fire.
            fn(self)
        else:
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine)
        self._value = value
        engine._schedule(self, delay)


class Process(Event):
    """Drives a generator of events; fires with the generator's return value.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value.  ``yield from`` composes sub-operations naturally.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Bootstrap: resume once at the current time.
        boot = Event(engine)
        boot.add_callback(self._resume)
        boot._value = None
        engine._queue_event(boot)

    def _resume(self, event: Event) -> None:
        try:
            target = self._gen.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires once all ``events`` have fired; value is the list of values.

    Models doorbell batching: a batch of RDMA verbs is posted at once and
    the client proceeds when the last completion arrives.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([c.value for c in self._children])


class Engine:
    """The simulation clock and scheduler."""

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._seq = 0

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        self._schedule(event, 0)

    # -- public factory helpers ---------------------------------------
    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- main loop ----------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Process events until the heap empties or the clock passes
        ``until``.  Returns the final simulation time."""
        while self._heap:
            when, _seq, event = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(event)
        return self.now

    def run_until_complete(self, process: Process,
                           limit: Optional[int] = None) -> Any:
        """Run until ``process`` finishes; returns its value.

        ``limit`` guards against runaway simulations (deadlock / livelock
        bugs) by bounding simulated time.
        """
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {process.name!r} pending with an "
                    "empty event heap"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"process {process.name!r} exceeded time limit {limit}"
                )
            self.run(until=self._heap[0][0])
        return process.value
