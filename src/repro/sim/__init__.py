"""Deterministic discrete-event simulation engine (the timing substrate)."""

from .engine import AllOf, Engine, Event, Process, Timeout
from .resources import FifoServer, LatencyRecorder

__all__ = [
    "AllOf",
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "FifoServer",
    "LatencyRecorder",
]
