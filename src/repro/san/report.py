"""DMSan configuration, violations, and run reports.

Mirrors the shape of :class:`repro.tools.fsck.FsckReport` so both
correctness tools read the same way in test assertions and logs: a
``clean`` flag, a list of rendered findings, and counters summarizing how
much work the analysis actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List

from ..dm.memory import format_addr
from ..errors import SanViolation

# Violation kinds (stable strings - tests match on them).
UNLOCKED_WRITE = "unlocked-write"
TORN_READ = "torn-read"
ATOMIC_MIX = "atomic-mix"
USE_AFTER_FREE = "use-after-free"
WRITE_AFTER_FREE = "write-after-free"

# Warning kinds.
ABA = "aba"
STALE_READ = "stale-read"


@dataclass(frozen=True)
class SanConfig:
    """Policy knobs for the sanitizer.

    The category sets encode which protocol defenses DMSan trusts; they
    default to this repo's shipped protocols and are the sanitizer
    analogue of a suppression file.
    """

    on_violation: str = "record"
    """``"record"`` collects violations into the report; ``"raise"`` turns
    the first one into a :class:`repro.errors.SanViolation`."""

    tear_tolerant_categories: FrozenSet[str] = frozenset({"leaf"})
    """Allocation categories whose multi-word reads may race writes:
    the protocol carries an explicit tear detector (leaf CRC32)."""

    checksummed_categories: FrozenSet[str] = frozenset({"leaf"})
    """Categories where a read of a freed block is degraded to a
    :data:`STALE_READ` warning: readers validate content (checksum + key)
    before trusting it, which is the repo's documented defense for leaves
    reclaimed while stale pointers exist."""

    external_sync_categories: FrozenSet[str] = frozenset({"hash_table"})
    """Categories whose plain writes may be guarded by a lock in a
    *different* object (the RACE directory is repointed under the old
    segment's group locks); the writer must still hold some CAS-acquired
    word somewhere."""

    max_warnings: int = 64
    """Warnings are sampled beyond this count (counters keep counting)."""


@dataclass(frozen=True)
class Violation:
    """One observed protocol violation."""

    kind: str
    client: str
    addr: int
    size: int
    sim_time: int
    detail: str

    def render(self) -> str:
        return (f"[{self.kind}] t={self.sim_time}ns client={self.client} "
                f"{format_addr(self.addr)}+{self.size}B: {self.detail}")


@dataclass
class SanReport:
    """Outcome of one monitored run (mirrors ``FsckReport``)."""

    events: int = 0
    reads: int = 0
    writes: int = 0
    atomics: int = 0
    objects_tracked: int = 0
    objects_freed: int = 0
    objects_retired: int = 0
    torn_tolerated: int = 0
    stale_reads: int = 0
    untracked_accesses: int = 0
    violations: List[Violation] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    warning_count: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def render_violations(self, limit: int = 10) -> List[str]:
        return [v.render() for v in self.violations[:limit]]

    def summary(self) -> str:
        status = ("CLEAN" if self.clean
                  else f"{len(self.violations)} VIOLATIONS")
        return (f"dmsan: {status} - {self.events} events "
                f"({self.reads} reads, {self.writes} writes, "
                f"{self.atomics} atomics), {self.objects_tracked} objects "
                f"({self.objects_freed} freed, {self.objects_retired} "
                f"retired), {self.torn_tolerated} tolerated torn reads, "
                f"{self.stale_reads} stale reads, "
                f"{self.warning_count} warnings")


def raise_or_record(report: SanReport, config: SanConfig,
                    violation: Violation) -> None:
    report.violations.append(violation)
    if config.on_violation == "raise":
        raise SanViolation(violation.render())


def warn(report: SanReport, config: SanConfig, message: str) -> None:
    report.warning_count += 1
    if len(report.warnings) < config.max_warnings:
        report.warnings.append(message)
