"""DMSan: a dynamic concurrency sanitizer for one-sided RDMA protocols.

Usage::

    cluster = Cluster(config)
    monitor = cluster.attach_sanitizer()        # before building the index
    ...build index, run workload...
    assert monitor.report.clean, monitor.report.render_violations()

See :mod:`repro.san.monitor` for what the analyses check and
:class:`repro.san.report.SanConfig` for the policy knobs.
"""

from .monitor import AccessMonitor
from .report import ABA, ATOMIC_MIX, STALE_READ, TORN_READ, UNLOCKED_WRITE, \
    USE_AFTER_FREE, WRITE_AFTER_FREE, SanConfig, SanReport, Violation

__all__ = [
    "AccessMonitor",
    "SanConfig",
    "SanReport",
    "Violation",
    "UNLOCKED_WRITE",
    "TORN_READ",
    "ATOMIC_MIX",
    "USE_AFTER_FREE",
    "WRITE_AFTER_FREE",
    "ABA",
    "STALE_READ",
]
