"""The DMSan access monitor: dynamic race/protocol analysis for RDMA verbs.

The monitor sits underneath the executors (see
:meth:`repro.dm.cluster.Cluster.attach_monitor`): every verb any client
issues is reported three times - at **issue** (the client posts the work
request), at **apply** (the MN NIC executes the memory side effect), and
at **complete** (the completion reaches the client).  Allocator traffic
arrives through ``on_alloc``/``on_free``/``on_retire``.  From this event
stream the monitor runs four online analyses:

1. **Lockset / ownership** - a plain ``WriteOp`` to a *published* object
   (one that a second client has observed) must come from a client that
   currently holds a CAS-acquired word inside that object.  The lock
   protocol is *learned*, not declared: a successful CAS grants ownership
   of the word, and a later plain write that stores a different value than
   the CAS installed releases it (the unlock/invalidate pattern).
   Categories in ``SanConfig.external_sync_categories`` (the RACE
   directory, repointed under the old segment's group locks) only require
   the writer to hold *some* CAS word somewhere.
2. **Torn reads** - a ``ReadOp`` whose service interval overlaps a
   concurrent ``WriteOp`` from another client on overlapping bytes would
   tear on real hardware.  Overlap confined to one aligned 8-byte word is
   benign (NIC atomicity unit); categories in
   ``tear_tolerant_categories`` carry their own tear detector (leaf CRC)
   and are counted, not flagged.
3. **Atomic-word hygiene** - unaligned CAS/FAA, and plain reads/writes
   that *partially* overlap a word some client targets with CAS/FAA
   (full 8-byte coverage is the legitimate unlock pattern).  Per-word
   version counters additionally surface ABA patterns as warnings.
4. **Use-after-free** - verbs landing in freed objects.  Reads of freed
   ``checksummed_categories`` objects degrade to stale-read warnings
   (the shipped protocols free leaves that stale pointers may still
   reach, and defend with checksum + key validation).

Creator/publication model: the *creator* of an object is the first client
to write or CAS it (never the first reader - a stale read of recycled
memory must not claim ownership).  The object becomes *published* once a
different client touches it.  Unpublished objects are private and writes
to them are never flagged, which is what keeps initialization traffic
(building a node image before linking it in) silent.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..dm.memory import format_addr, make_addr
from ..dm.rdma import CasOp, FaaOp, ReadOp, Verb, WriteOp
from .report import ABA, ATOMIC_MIX, STALE_READ, TORN_READ, UNLOCKED_WRITE, \
    USE_AFTER_FREE, WRITE_AFTER_FREE, SanConfig, SanReport, Violation, \
    raise_or_record, warn

_WORD = 8


@dataclass
class _Object:
    """One tracked allocation (addresses are 48-bit global)."""
    addr: int
    size: int
    category: str
    creator: Optional[str] = None
    published: bool = False
    freed: bool = False
    retired: bool = False

    @property
    def end(self) -> int:
        return self.addr + self.size


@dataclass
class _AtomicWord:
    """A word some client has targeted with CAS/FAA."""
    version: int = 0
    # client -> (version at observation, value the client believes is there)
    observations: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class _Event:
    """One verb in flight (the token returned by :meth:`on_issue`)."""

    __slots__ = ("client", "op", "issue", "applied", "complete", "result")

    def __init__(self, client: str, op: Verb, issue: int):
        self.client = client
        self.op = op
        self.issue = issue
        self.applied: Optional[int] = None
        self.complete: Optional[int] = None
        self.result: Any = None


class AccessMonitor:
    """DMSan's event sink and analysis engine.

    Attach via :meth:`repro.dm.cluster.Cluster.attach_sanitizer` *before*
    building an index so every allocation is tracked.  Inspect
    :attr:`report` afterwards, or run with
    ``SanConfig(on_violation="raise")`` to fail fast.
    """

    def __init__(self, config: SanConfig | None = None):
        self.config = config if config is not None else SanConfig()
        self.report = SanReport()
        self._clock = lambda: 0
        # Object map, ordered by global address for overlap queries.
        self._obj_addrs: List[int] = []
        self._objects: Dict[int, _Object] = {}
        # Atomic-word registry: global aligned address -> state.
        self._atomic: Dict[int, _AtomicWord] = {}
        # Lockset: client -> {word global addr: value the CAS installed}.
        self._owned: Dict[str, Dict[int, int]] = {}
        # Torn-read tracking.
        self._inflight_reads: List[_Event] = []
        self._inflight_writes: List[_Event] = []
        self._done_writes: List[_Event] = []

    # -- wiring ---------------------------------------------------------
    def bind_clock(self, clock) -> None:
        """Timestamp source for allocator events (executors pass their own)."""
        self._clock = clock

    def check_clean(self) -> None:
        """Raise :class:`repro.errors.SanViolation` unless the run is clean."""
        if not self.report.clean:
            from ..errors import SanViolation
            lines = [self.report.summary()] + self.report.render_violations()
            raise SanViolation("\n".join(lines))

    def summary(self) -> str:
        return self.report.summary()

    # -- allocator events -----------------------------------------------
    def on_alloc(self, mn_id: int, offset: int, size: int,
                 category: str) -> None:
        addr = make_addr(mn_id, offset)
        end = addr + size
        self._evict_objects(addr, end)
        # Recycled memory is fresh: forget atomic-word history and revoke
        # any (stale) ownership of words inside the new block.
        first_word = addr - (addr % _WORD)
        for word in range(first_word, end, _WORD):
            if self._atomic.pop(word, None) is not None:
                for owned in self._owned.values():
                    owned.pop(word, None)
        obj = _Object(addr, size, category)
        self._objects[addr] = obj
        bisect.insort(self._obj_addrs, addr)
        self.report.objects_tracked += 1

    def on_free(self, mn_id: int, offset: int, size: int,
                category: str) -> None:
        addr = make_addr(mn_id, offset)
        obj = self._objects.get(addr)
        if obj is None:
            # Freed block allocated before the monitor attached: track it
            # from here on so use-after-free is still caught.
            obj = _Object(addr, size, category, freed=True)
            self._objects[addr] = obj
            bisect.insort(self._obj_addrs, addr)
        obj.freed = True
        self.report.objects_freed += 1

    def on_retire(self, mn_id: int, offset: int, size: int,
                  category: str) -> None:
        addr = make_addr(mn_id, offset)
        obj = self._objects.get(addr)
        if obj is not None:
            obj.retired = True
        self.report.objects_retired += 1

    def _evict_objects(self, addr: int, end: int) -> None:
        idx = bisect.bisect_right(self._obj_addrs, addr) - 1
        if idx >= 0 and self._objects[self._obj_addrs[idx]].end <= addr:
            idx += 1
        elif idx < 0:
            idx = 0
        while idx < len(self._obj_addrs) and self._obj_addrs[idx] < end:
            victim = self._obj_addrs.pop(idx)
            del self._objects[victim]

    def _find_object(self, addr: int, size: int = 1) -> Optional[_Object]:
        idx = bisect.bisect_right(self._obj_addrs, addr) - 1
        if idx >= 0:
            obj = self._objects[self._obj_addrs[idx]]
            if obj.end > addr:
                return obj
        idx += 1
        if idx < len(self._obj_addrs) and self._obj_addrs[idx] < addr + size:
            return self._objects[self._obj_addrs[idx]]
        return None

    # -- verb events ----------------------------------------------------
    def on_issue(self, client: str, op: Verb, now: int) -> _Event:
        event = _Event(client, op, now)
        if isinstance(op, WriteOp):
            self._inflight_writes.append(event)
        elif isinstance(op, ReadOp):
            self._inflight_reads.append(event)
        return event

    def on_apply(self, event: _Event, now: int, result: Any) -> None:
        event.applied = now
        event.result = result
        op = event.op
        self.report.events += 1
        if isinstance(op, ReadOp):
            self.report.reads += 1
            self._apply_read(event)
        elif isinstance(op, WriteOp):
            self.report.writes += 1
            self._apply_write(event)
        else:
            self.report.atomics += 1
            self._apply_atomic(event)

    def on_complete(self, event: _Event, now: int) -> None:
        event.complete = now
        op = event.op
        if isinstance(op, ReadOp):
            self._check_torn(event)
            self._inflight_reads.remove(event)
        elif isinstance(op, WriteOp):
            self._inflight_writes.remove(event)
            self._done_writes.append(event)
            self._prune_done_writes(now)

    # -- analysis: reads ------------------------------------------------
    def _apply_read(self, event: _Event) -> None:
        op = event.op
        obj = self._find_object(op.addr, op.size)
        if obj is None:
            self.report.untracked_accesses += 1
        else:
            if obj.creator is not None and event.client != obj.creator:
                obj.published = True
            if obj.freed:
                self._flag_freed_access(event, obj, op.size, is_write=False)
        self._check_partial_words(event, op.addr, op.size)
        # Record what the client now believes registered words hold (feeds
        # the ABA detector).
        data = event.result
        if isinstance(data, (bytes, bytearray)):
            for word, off in self._covered_words(op.addr, op.size):
                state = self._atomic.get(word)
                if state is not None:
                    value = int.from_bytes(data[off:off + _WORD], "little")
                    state.observations[event.client] = (state.version, value)

    def _check_torn(self, read: _Event) -> None:
        op = read.op
        r_end = op.addr + op.size
        for write in self._inflight_writes + self._done_writes:
            if write.client == read.client:
                continue
            # Strict service-interval overlap; an in-flight write will
            # complete no earlier than "now", i.e. after this read.
            if write.complete is not None and read.issue >= write.complete:
                continue
            if write.issue >= read.complete:
                continue
            lo = max(op.addr, write.op.addr)
            hi = min(r_end, write.op.addr + len(write.op.data))
            if lo >= hi:
                continue
            if lo // _WORD == (hi - 1) // _WORD:
                continue  # confined to one aligned word: NIC-atomic
            obj = self._find_object(op.addr, op.size)
            if obj is not None and \
                    obj.category in self.config.tear_tolerant_categories:
                self.report.torn_tolerated += 1
                continue
            raise_or_record(self.report, self.config, Violation(
                TORN_READ, read.client, op.addr, op.size, read.complete,
                f"read [{read.issue}, {read.complete}] overlaps write of "
                f"{len(write.op.data)} B at {format_addr(write.op.addr)} "
                f"by {write.client} (overlap {hi - lo} B spans words, "
                f"category={obj.category if obj else '?'})"))
            return  # one violation per read is enough

    def _prune_done_writes(self, now: int) -> None:
        horizon = min((e.issue for e in self._inflight_reads), default=now)
        horizon = min(horizon, now)
        if len(self._done_writes) > 64:
            self._done_writes = [w for w in self._done_writes
                                 if w.complete > horizon]

    # -- analysis: writes -----------------------------------------------
    def _apply_write(self, event: _Event) -> None:
        op = event.op
        size = len(op.data)
        obj = self._find_object(op.addr, size)
        if obj is None:
            self.report.untracked_accesses += 1
        else:
            if obj.creator is None:
                obj.creator = event.client
            elif event.client != obj.creator:
                obj.published = True
            if obj.freed:
                self._flag_freed_access(event, obj, size, is_write=True)
            elif obj.published and not self._holds_lock(event.client, obj):
                raise_or_record(self.report, self.config, Violation(
                    UNLOCKED_WRITE, event.client, op.addr, size,
                    event.applied,
                    f"plain write to published {obj.category!r} object "
                    f"{format_addr(obj.addr)}+{obj.size}B without holding "
                    f"a CAS-acquired word in it"))
        self._check_partial_words(event, op.addr, size)
        # Fully covered registered words: bump version, refresh the
        # writer's observation, and detect the unlock pattern (a write
        # that stores something other than what the writer's CAS
        # installed releases ownership).
        owned = self._owned.get(event.client)
        for word, off in self._covered_words(op.addr, size):
            state = self._atomic.get(word)
            if state is None:
                continue
            value = int.from_bytes(op.data[off:off + _WORD], "little")
            state.version += 1
            state.observations[event.client] = (state.version, value)
            if owned is not None and word in owned and value != owned[word]:
                del owned[word]

    def _holds_lock(self, client: str, obj: _Object) -> bool:
        owned = self._owned.get(client)
        if not owned:
            return False
        if obj.category in self.config.external_sync_categories:
            # Lock lives in a different object (e.g. RACE directory writes
            # guarded by the old segment's group locks).
            return True
        return any(obj.addr <= word < obj.end for word in owned)

    # -- analysis: atomics ----------------------------------------------
    def _apply_atomic(self, event: _Event) -> None:
        op = event.op
        if op.addr % _WORD:
            raise_or_record(self.report, self.config, Violation(
                ATOMIC_MIX, event.client, op.addr, _WORD, event.applied,
                f"{type(op).__name__} on unaligned address (atomics act "
                f"on aligned 8-byte words)"))
            return
        state = self._atomic.setdefault(op.addr, _AtomicWord())
        obj = self._find_object(op.addr, _WORD)
        if obj is None:
            self.report.untracked_accesses += 1
        else:
            if obj.creator is None:
                obj.creator = event.client
            elif event.client != obj.creator:
                obj.published = True
            if obj.freed:
                self._flag_freed_access(event, obj, _WORD, is_write=True)
        if isinstance(op, CasOp):
            swapped, old = event.result
            if swapped:
                prior = state.observations.get(event.client)
                if prior is not None and prior[1] == op.expected and \
                        state.version - prior[0] >= 2:
                    warn(self.report, self.config,
                         f"[{ABA}] t={event.applied}ns client="
                         f"{event.client} {format_addr(op.addr)}: CAS "
                         f"succeeded on a value last observed "
                         f"{state.version - prior[0]} mutations ago "
                         f"(value changed and changed back)")
                state.version += 1
                self._owned.setdefault(event.client, {})[op.addr] = \
                    op.desired
                state.observations[event.client] = (state.version,
                                                    op.desired)
            else:
                state.observations[event.client] = (state.version, old)
        else:  # FaaOp - unconditional, grants no ownership
            old = event.result
            state.version += 1
            state.observations[event.client] = \
                (state.version, (old + op.delta) & ((1 << 64) - 1))

    # -- shared helpers --------------------------------------------------
    def _flag_freed_access(self, event: _Event, obj: _Object, size: int,
                           *, is_write: bool) -> None:
        op = event.op
        if obj.category in self.config.checksummed_categories:
            # The shipped protocols free leaves that stale pointers may
            # still reach; readers (and lock CAS) are defended by checksum
            # + key validation, so this is expected traffic, not a bug.
            self.report.stale_reads += 1
            warn(self.report, self.config,
                 f"[{STALE_READ}] t={event.applied}ns client={event.client} "
                 f"{'write' if is_write else 'read'} of freed "
                 f"{obj.category!r} object {format_addr(obj.addr)}"
                 f"+{obj.size}B")
            return
        kind = WRITE_AFTER_FREE if is_write else USE_AFTER_FREE
        raise_or_record(self.report, self.config, Violation(
            kind, event.client, op.addr, size, event.applied,
            f"{type(op).__name__} touches freed {obj.category!r} object "
            f"{format_addr(obj.addr)}+{obj.size}B"))

    def _check_partial_words(self, event: _Event, addr: int,
                             size: int) -> None:
        """Flag plain accesses that partially cover a CAS/FAA word."""
        if size <= 0:
            return
        end = addr + size
        first = addr - (addr % _WORD)
        last = (end - 1) - ((end - 1) % _WORD)
        for word in {first, last}:
            if word not in self._atomic:
                continue
            if word < addr or word + _WORD > end:
                raise_or_record(self.report, self.config, Violation(
                    ATOMIC_MIX, event.client, addr, size, event.applied,
                    f"plain {type(event.op).__name__} partially covers "
                    f"atomic word {format_addr(word)} (bytes "
                    f"[{max(addr, word) - word}, "
                    f"{min(end, word + _WORD) - word}) of 8)"))

    @staticmethod
    def _covered_words(addr: int, size: int):
        """(word global addr, byte offset into the access) for every
        aligned 8-byte word fully inside [addr, addr+size)."""
        first = addr if addr % _WORD == 0 else addr + _WORD - (addr % _WORD)
        end = addr + size
        for word in range(first, end - _WORD + 1, _WORD):
            yield word, word - addr
