"""A cuckoo filter (Fan et al., CoNEXT'14).

The succinct data structure behind Sphinx's filter cache: an approximate
membership set storing a small fingerprint per item in one of two
candidate buckets, located with partial-key cuckoo hashing
(``i2 = i1 XOR hash(fp)``), so relocation needs only the fingerprint.

Properties exercised by the tests:

* no false negatives for inserted-and-not-evicted items,
* false-positive rate ~ ``2 * bucket_size / 2^fp_bits`` (< 1 % with the
  paper's 12-bit fingerprints),
* deletion support (unlike Bloom filters).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..errors import FilterError
from ..util.hashing import fingerprint, hash64

DEFAULT_BUCKET_SLOTS = 4
DEFAULT_FP_BITS = 12
DEFAULT_MAX_KICKS = 500
EMPTY = 0


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class CuckooFilter:
    """Approximate membership over byte strings."""

    def __init__(self, capacity: int, fp_bits: int = DEFAULT_FP_BITS,
                 bucket_slots: int = DEFAULT_BUCKET_SLOTS,
                 max_kicks: int = DEFAULT_MAX_KICKS,
                 rng: random.Random | None = None):
        if capacity <= 0:
            raise FilterError("capacity must be positive")
        if not 2 <= fp_bits <= 32:
            raise FilterError("fp_bits must be in [2, 32]")
        self.fp_bits = fp_bits
        self.bucket_slots = bucket_slots
        self.max_kicks = max_kicks
        # Size for ~95% max load, power-of-two buckets for the XOR trick.
        self.num_buckets = max(2, _next_pow2(
            int(capacity / bucket_slots / 0.95) + 1))
        self._mask = self.num_buckets - 1
        self._table: List[int] = [EMPTY] * (self.num_buckets * bucket_slots)
        self._rng = rng if rng is not None else random.Random(0xF117E5)
        self.count = 0

    # -- hashing ---------------------------------------------------------
    def _fp(self, item: bytes) -> int:
        return fingerprint(item, self.fp_bits)

    def _index1(self, item: bytes) -> int:
        return hash64(item, 0xB0CCE7) & self._mask

    def _alt_index(self, index: int, fp: int) -> int:
        return (index ^ hash64(fp.to_bytes(4, "little"), 0xA17)) & self._mask

    def _candidates(self, item: bytes) -> Tuple[int, int, int]:
        fp = self._fp(item)
        i1 = self._index1(item)
        return fp, i1, self._alt_index(i1, fp)

    # -- bucket access ------------------------------------------------------
    def _slot_range(self, bucket: int) -> range:
        base = bucket * self.bucket_slots
        return range(base, base + self.bucket_slots)

    def _find_in_bucket(self, bucket: int, fp: int) -> int:
        for slot in self._slot_range(bucket):
            if self._table[slot] == fp:
                return slot
        return -1

    def _free_slot(self, bucket: int) -> int:
        return self._find_in_bucket(bucket, EMPTY)

    # -- public API ------------------------------------------------------
    def contains(self, item: bytes) -> bool:
        fp, i1, i2 = self._candidates(item)
        return (self._find_in_bucket(i1, fp) >= 0
                or self._find_in_bucket(i2, fp) >= 0)

    def insert(self, item: bytes) -> bool:
        """Insert ``item``; returns False if the filter is too full.

        Duplicate-looking inserts (same fingerprint, same buckets) are
        stored again, as in the original filter, so delete stays safe.
        """
        fp, i1, i2 = self._candidates(item)
        for bucket in (i1, i2):
            slot = self._free_slot(bucket)
            if slot >= 0:
                self._table[slot] = fp
                self.count += 1
                return True
        # Kick a random resident fingerprint along its alternate path.
        bucket = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = bucket * self.bucket_slots + \
                self._rng.randrange(self.bucket_slots)
            fp, self._table[victim_slot] = self._table[victim_slot], fp
            bucket = self._alt_index(bucket, fp)
            slot = self._free_slot(bucket)
            if slot >= 0:
                self._table[slot] = fp
                self.count += 1
                return True
        # Put the homeless fingerprint back where it came from is not
        # possible in general; report failure (caller may resize).
        self._table[victim_slot] = fp
        return False

    def delete(self, item: bytes) -> bool:
        fp, i1, i2 = self._candidates(item)
        for bucket in (i1, i2):
            slot = self._find_in_bucket(bucket, fp)
            if slot >= 0:
                self._table[slot] = EMPTY
                self.count -= 1
                return True
        return False

    # -- introspection ------------------------------------------------------
    def load_factor(self) -> float:
        return self.count / (self.num_buckets * self.bucket_slots)

    def size_bytes(self) -> int:
        """Memory the filter would occupy packed (fp_bits per slot)."""
        return (self.num_buckets * self.bucket_slots * self.fp_bits + 7) // 8

    def expected_fp_rate(self) -> float:
        """Upper bound on the false-positive probability at current load."""
        return min(1.0, 2.0 * self.bucket_slots / (1 << self.fp_bits))
