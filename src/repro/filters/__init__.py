"""Succinct membership structures: cuckoo filter and the filter cache."""

from .cuckoo import CuckooFilter
from .hotness import SuccinctFilterCache

__all__ = ["CuckooFilter", "SuccinctFilterCache"]
