"""The Succinct Filter Cache (paper Sec. III-B, Fig 2).

A cuckoo filter sized to a CN-side byte budget, tracking the *existence*
of inner-node prefixes rather than node contents.  When the budget cannot
hold every prefix, a second-chance (clock-like) policy keeps hot prefixes:

* every slot carries a **hotness bit**, set on access, cleared on
  insert/relocation;
* when both candidate buckets are full, a random cold entry (hotness 0)
  is replaced;
* if every candidate entry is hot, normal cuckoo relocation runs and all
  relocated entries have their hotness reset;
* if relocation exhausts its kick budget, the homeless fingerprint is
  dropped (an eviction - a tolerable false negative, repaired lazily by
  the search path's cache-refresh rule).

Unlike the plain :class:`~repro.filters.cuckoo.CuckooFilter`, insertion
therefore **never fails**; it may instead evict.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import FilterError
from ..util.hashing import fingerprint, hash64

EMPTY = 0


def _floor_pow2(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p <<= 1
    return p


class SuccinctFilterCache:
    """Budget-bound cuckoo filter with hot-prefix retention."""

    def __init__(self, budget_bytes: int, fp_bits: int = 12,
                 bucket_slots: int = 4, max_kicks: int = 64,
                 rng: random.Random | None = None,
                 second_chance: bool = True):
        if budget_bytes < 16:
            raise FilterError("filter budget unreasonably small")
        if not 2 <= fp_bits <= 32:
            raise FilterError("fp_bits must be in [2, 32]")
        self.fp_bits = fp_bits
        self.bucket_slots = bucket_slots
        self.max_kicks = max_kicks
        bits_per_slot = fp_bits + 1  # fingerprint + hotness bit
        total_slots = max(bucket_slots * 2,
                          budget_bytes * 8 // bits_per_slot)
        self.num_buckets = _floor_pow2(max(2, total_slots // bucket_slots))
        self._mask = self.num_buckets - 1
        n = self.num_buckets * bucket_slots
        self._fps: List[int] = [EMPTY] * n
        self._hot: List[bool] = [False] * n
        self._rng = rng if rng is not None else random.Random(0x5FC)
        # (fp, bucket1, bucket2) per item, and the fp -> alt-xor mask
        # table used during relocation.  Both memoize pure functions of
        # the filter geometry, so cached and computed paths agree bit
        # for bit; probes dominate every search, so the cache matters.
        self._key_memo: dict = {}
        self._alt_memo: dict = {}
        self.second_chance = second_chance
        """False = ablation mode: evict uniformly, ignoring hotness bits."""
        self.count = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def __deepcopy__(self, memo):
        """Snapshot-restore support: copy the filter *state* (slots,
        hotness bits, RNG, counters) but share the probe memos - they
        cache pure functions of the fixed filter geometry, so every copy
        reads identical values, and walking their ~100k tuples dominated
        ``copy.deepcopy`` of a loaded benchmark system."""
        import copy as _copy
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        clone.__dict__.update(self.__dict__)
        clone._fps = list(self._fps)
        clone._hot = list(self._hot)
        clone._rng = _copy.deepcopy(self._rng, memo)
        return clone

    # -- hashing (same scheme as the base filter) -------------------------
    def _fp(self, item: bytes) -> int:
        return fingerprint(item, self.fp_bits)

    def _index1(self, item: bytes) -> int:
        return hash64(item, 0xB0CCE7) & self._mask

    def _alt_index(self, index: int, fp: int) -> int:
        mask = self._alt_memo.get(fp)
        if mask is None:
            mask = self._alt_memo[fp] = hash64(fp.to_bytes(4, "little"),
                                               0xA17)
        return (index ^ mask) & self._mask

    def _slots(self, bucket: int) -> range:
        base = bucket * self.bucket_slots
        return range(base, base + self.bucket_slots)

    def _probe(self, item: bytes):
        """(fp, bucket1, bucket2) for ``item``, memoized."""
        probe = self._key_memo.get(item)
        if probe is None:
            fp = self._fp(item)
            i1 = self._index1(item)
            probe = (fp, i1, self._alt_index(i1, fp))
            self._key_memo[item] = probe
        return probe

    # -- queries ----------------------------------------------------------
    def contains(self, item: bytes) -> bool:
        """Existence check; a hit marks the entry as recently used."""
        probe = self._key_memo.get(item)  # inlined _probe: hottest query
        if probe is None:
            probe = self._probe(item)
        fp, i1, i2 = probe
        fps = self._fps
        slots_per = self.bucket_slots
        for bucket in (i1, i2):
            base = bucket * slots_per
            for slot in range(base, base + slots_per):
                if fps[slot] == fp:
                    self._hot[slot] = True
                    self.hits += 1
                    return True
        self.misses += 1
        return False

    # -- updates -----------------------------------------------------------
    def insert(self, item: bytes) -> None:
        """Insert ``item``; never fails (may evict a cold entry)."""
        fp, i1, i2 = self._probe(item)
        # Already present? Nothing to do (idempotent for a *cache*).
        for bucket in (i1, i2):
            for slot in self._slots(bucket):
                if self._fps[slot] == fp:
                    return
        for bucket in (i1, i2):
            for slot in self._slots(bucket):
                if self._fps[slot] == EMPTY:
                    self._fps[slot] = fp
                    self._hot[slot] = False
                    self.count += 1
                    return
        # Both buckets full: second chance - replace a random cold entry.
        # (In the ablation mode every resident counts as cold.)
        cold = [slot for bucket in (i1, i2) for slot in self._slots(bucket)
                if not (self.second_chance and self._hot[slot])]
        if cold:
            slot = self._rng.choice(cold)
            self._fps[slot] = fp
            self._hot[slot] = False
            self.evictions += 1
            return
        # All hot: cuckoo relocation, resetting hotness along the way.
        bucket = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            slot = bucket * self.bucket_slots + \
                self._rng.randrange(self.bucket_slots)
            fp, self._fps[slot] = self._fps[slot], fp
            self._hot[slot] = False
            bucket = self._alt_index(bucket, fp)
            for target in self._slots(bucket):
                if self._fps[target] == EMPTY:
                    self._fps[target] = fp
                    self._hot[target] = False
                    self.count += 1
                    return
            for target in self._slots(bucket):
                if not self._hot[target]:
                    self._fps[target] = fp
                    self._hot[target] = False
                    self.evictions += 1
                    return
        # Kick budget exhausted: drop the homeless fingerprint.
        self.evictions += 1

    def delete(self, item: bytes) -> bool:
        fp = self._fp(item)
        i1 = self._index1(item)
        for bucket in (i1, self._alt_index(i1, fp)):
            for slot in self._slots(bucket):
                if self._fps[slot] == fp:
                    self._fps[slot] = EMPTY
                    self._hot[slot] = False
                    self.count -= 1
                    return True
        return False

    # -- introspection ------------------------------------------------------
    def load_factor(self) -> float:
        return self.count / len(self._fps)

    def size_bytes(self) -> int:
        """Packed size: (fp_bits + 1 hotness bit) per slot."""
        return (len(self._fps) * (self.fp_bits + 1) + 7) // 8

    def stats(self) -> dict:
        return {
            "count": self.count,
            "buckets": self.num_buckets,
            "load": self.load_factor(),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size_bytes": self.size_bytes(),
        }
