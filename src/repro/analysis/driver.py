"""File discovery, the summary fixpoint, and report assembly.

Per file: parse, build CFGs (module body, class bodies, one per def),
compute the function-local constant environment, and read both pragma
namespaces (``# dmverify: disable=...`` plus the pre-existing
``# lint: disable=...`` for rules with a lint equivalent).

Across files: function summaries (acquire helpers, release helpers,
verb factories) are iterated to a fixpoint - protocol helpers call at
most a couple of levels deep, so the iteration is capped and in
practice converges in two rounds - then a final pass collects flow
findings against the stable table.

Determinism: files are discovered in sorted order, abstract state is
built from sorted tuples, the worklist is FIFO, and findings are
sorted and deduped before reporting, so two runs over the same tree
produce byte-identical JSON regardless of hash seed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from . import model, rules
from .cfg import CFG, build_cfgs, is_generator
from .dataflow import (SEED_SUMMARIES, FlowAnalysis, FuncSummary,
                       RawFinding, Resolver, factory_summary)
from .findings import (Finding, Suppressions, apply_suppressions,
                       dedupe, sort_key)

_MAX_SUMMARY_ROUNDS = 4


@dataclass
class _FileUnit:
    path: Path
    rel: str
    tree: ast.Module
    cfgs: List[CFG]
    tool_sup: Suppressions
    lint_sup: Suppressions
    flow: bool  # S001-S004 apply (not an infrastructure layer)

    def function_cfgs(self) -> List[CFG]:
        return [cfg for cfg in self.cfgs if cfg.func is not None]


class _Summaries:
    """name -> {(rel, cls, qualname): summary} with scoped resolution:
    same class, then same file, then unique global, then seeds."""

    def __init__(self) -> None:
        self._table: Dict[str, Dict[Tuple[str, str, str],
                                    FuncSummary]] = {}

    def set(self, name: str, rel: str, cls: Optional[str],
            qualname: str, summary: FuncSummary) -> bool:
        group = self._table.setdefault(name, {})
        key = (rel, cls or "", qualname)
        changed = group.get(key) != summary
        group[key] = summary
        return changed

    def resolver(self, rel: str, cls: Optional[str]) -> Resolver:
        def resolve(name: str) -> Optional[FuncSummary]:
            group = self._table.get(name)
            if not group:
                return SEED_SUMMARIES.get(name)
            items = sorted(group.items())
            if cls:
                for (item_rel, item_cls, _q), summary in items:
                    if item_rel == rel and item_cls == cls:
                        return summary
            for (item_rel, _item_cls, _q), summary in items:
                if item_rel == rel:
                    return summary
            summaries = {summary for _key, summary in items}
            if len(summaries) == 1:
                return summaries.pop()
            return SEED_SUMMARIES.get(name)
        return resolve


@dataclass
class Report:
    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    functions: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def to_json(self, targets: Sequence[str] = ()) -> Dict[str, object]:
        return {
            "tool": "dmverify",
            "version": 1,
            "targets": list(targets),
            "files": self.files,
            "functions": self.functions,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "clean": self.clean,
        }


def discover(paths: Sequence[Path]) -> List[Tuple[Path, str]]:
    """(path, display-relative-name) pairs, sorted - same convention
    as repro.tools.lint: directories are walked recursively and names
    are relative to the directory's parent."""
    out: List[Tuple[Path, str]] = []
    for base in paths:
        base = base.resolve()
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                out.append((file, str(file.relative_to(base.parent))))
        else:
            out.append((base, str(base.relative_to(base.parent))))
    return out


def _load(path: Path, rel: str) -> "Tuple[Optional[_FileUnit], Optional[Finding]]":
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(rel, exc.lineno or 0, "S000",
                             f"syntax error: {exc.msg}")
    unit = _FileUnit(
        path=path, rel=rel, tree=tree,
        cfgs=build_cfgs(tree, modname=rel),
        tool_sup=Suppressions.for_source("dmverify", source),
        lint_sup=Suppressions.for_source("lint", source),
        flow=not rules.is_exempt(rel, rules.L006_EXEMPT_PARTS))
    return unit, None


def _flow_findings(unit: _FileUnit, table: _Summaries,
                   collect: bool) -> Tuple[List[RawFinding], bool]:
    """Run the dataflow over the unit's generators; update summaries.
    Returns (findings if collect else [], any summary changed)."""
    findings: List[RawFinding] = []
    changed = False
    for cfg in unit.function_cfgs():
        assert cfg.func is not None
        if not is_generator(cfg.func):
            continue
        env = model.local_env(cfg.func.body)
        analysis = FlowAnalysis(cfg, env,
                                table.resolver(unit.rel, cfg.cls))
        outcome = analysis.run()
        changed |= table.set(cfg.func.name, unit.rel, cfg.cls,
                             cfg.name, outcome.summary)
        if collect and not outcome.overflowed:
            findings.extend(outcome.findings)
        if collect and outcome.overflowed:
            findings.append(RawFinding(
                "S000", cfg.func.lineno,
                f"analysis of {cfg.name} exceeded the state budget; "
                f"S001/S003 were not checked here"))
    return findings, changed


def analyze_paths(paths: Sequence[Path]) -> Report:
    report = Report()
    units: List[_FileUnit] = []
    parse_failures: List[Finding] = []
    for path, rel in discover(paths):
        unit, failure = _load(path, rel)
        if failure is not None:
            parse_failures.append(failure)
        if unit is not None:
            units.append(unit)
    report.files = len(units) + len(parse_failures)
    report.functions = sum(len(u.function_cfgs()) for u in units)

    table = _Summaries()
    for unit in units:
        for cfg in unit.function_cfgs():
            assert cfg.func is not None
            factory = factory_summary(cfg.func)
            if factory is not None:
                table.set(cfg.func.name, unit.rel, cfg.cls, cfg.name,
                          factory)
    flow_units = [unit for unit in units if unit.flow]
    for _round in range(_MAX_SUMMARY_ROUNDS):
        changed = False
        for unit in flow_units:
            _ignored, unit_changed = _flow_findings(unit, table,
                                                    collect=False)
            changed = changed or unit_changed
        if not changed:
            break

    findings: List[Finding] = list(parse_failures)
    for unit in units:
        raw: List[RawFinding] = []
        if unit.flow:
            flow_found, _changed = _flow_findings(unit, table,
                                                  collect=True)
            raw.extend(flow_found)
            raw.extend(rules.s002_rules(unit.cfgs))
            raw.extend(rules.s004_rules(unit.cfgs))
        raw.extend(rules.s005_rules(unit.cfgs))
        raw.extend(rules.s006_rules(unit.tree))
        wrapped = [Finding(unit.rel, item.line, item.rule, item.message,
                           witness=item.witness)
                   for item in raw]
        findings.extend(apply_suppressions(wrapped, unit.tool_sup,
                                           unit.lint_sup))
    report.findings = dedupe(sorted(findings, key=sort_key))
    return report
