"""AST-level model of the one-sided verb vocabulary.

Everything dmverify knows about the protocol layer that is not generic
control flow lives here: which calls construct verbs, what a lease tag
looks like, what counts as a lock word, and how to enumerate the verbs
inside a yielded expression (including ``Batch`` literals, list
comprehensions, and ``+``-concatenated verb lists).

Lock-word detection is two-tiered.  A resolved expression containing a
``pack(...)`` call with an explicit ``locked=<constant>`` keyword is
decisive (``locked=1`` -> lock word, ``locked=0`` -> unlock word).
Otherwise identifier heuristics apply: any identifier in the original
or resolved expression matching ``lock``/``locked``/``LOCKED`` word
fragments marks it as a lock word.  Resolution follows function-local
single-assignment names one step at a time (``locked = _Header(1, ...);
yield CasOp(a, idle.pack(), locked.pack())``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

VERB_NAMES = frozenset({"ReadOp", "WriteOp", "CasOp", "FaaOp"})
WRITE_VERBS = frozenset({"WriteOp", "CasOp", "FaaOp"})
BATCH_NAME = "Batch"
LOCAL_COMPUTE_NAME = "LocalCompute"

_LOCKED_IDENT = re.compile(r"(^|_)lock(ed)?($|_)|LOCKED")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def unparse(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed synthetic nodes
        return "<expr>"


def call_name(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def get_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def lease_kind(call: ast.Call) -> str:
    """``"none"`` (absent or ``lease=None``), ``"release"``, or
    ``"acquire"`` (any other non-None tag)."""
    value = get_keyword(call, "lease")
    if value is None:
        return "none"
    if isinstance(value, ast.Constant) and value.value is None:
        return "none"
    if isinstance(value, ast.Tuple) and value.elts:
        head = value.elts[0]
        if isinstance(head, ast.Constant) and head.value == "release":
            return "release"
    return "acquire"


def identifiers(node: ast.AST) -> List[str]:
    out: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
    return out


def key_tokens(key: str) -> List[str]:
    """Identifier tokens of an abstract lock key (an unparsed expr)."""
    return [tok for tok in _IDENT.findall(key)
            if tok not in ("self", "cls")]


# -- function-local constant environment --------------------------------

class _EnvCollector(ast.NodeVisitor):
    """name -> value expr for names assigned exactly once by a plain
    ``name = value`` statement; names assigned any other way (tuple
    unpack, augmented, loop target, with-as) map to None (ambiguous)."""

    def __init__(self) -> None:
        self.env: Dict[str, Optional[ast.expr]] = {}

    def _spoil(self, target: ast.expr) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                self.env[sub.id] = None

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0],
                                                 ast.Name):
            name = node.targets[0].id
            if name in self.env:
                self.env[name] = None
            else:
                self.env[name] = node.value
        else:
            for target in node.targets:
                self._spoil(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._spoil(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._spoil(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._spoil(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._spoil(node.target)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._spoil(item.optional_vars)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def local_env(body: Sequence[ast.stmt]) -> Dict[str, Optional[ast.expr]]:
    collector = _EnvCollector()
    for stmt in body:
        collector.visit(stmt)
    return collector.env


def resolve_expr(expr: ast.expr,
                 env: Dict[str, Optional[ast.expr]],
                 depth: int = 3) -> ast.expr:
    while depth > 0 and isinstance(expr, ast.Name):
        value = env.get(expr.id)
        if value is None:
            break
        expr = value
        depth -= 1
    return expr


# -- lock words ---------------------------------------------------------

def packs_locked_flag(expr: ast.AST) -> Optional[bool]:
    """Decisive verdict from an explicit ``locked=<const>`` keyword on
    any call inside ``expr``; None when no such keyword appears."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            value = get_keyword(sub, "locked")
            if isinstance(value, ast.Constant):
                return bool(value.value)
    return None


def is_locked_word(expr: ast.expr,
                   env: Dict[str, Optional[ast.expr]]) -> bool:
    resolved = resolve_expr(expr, env)
    for candidate in (expr, resolved):
        verdict = packs_locked_flag(candidate)
        if verdict is not None:
            return verdict
    for candidate in (expr, resolved):
        if any(_LOCKED_IDENT.search(name)
               for name in identifiers(candidate)):
            return True
    return False


def is_acquire_cas(call: ast.Call,
                   env: Dict[str, Optional[ast.expr]]) -> bool:
    """A CAS that transitions a word unlocked -> locked.

    Both halves matter: a CAS whose *expected* word is already locked
    (a fencing CAS bumping the version of a word it is about to take
    over, as crash recovery does) is an ownership transfer, not an
    acquisition, and is deliberately excluded - see DESIGN.md sec. 10.
    """
    if call_name(call) != "CasOp" or len(call.args) < 3:
        return False
    expected, desired = call.args[1], call.args[2]
    return is_locked_word(desired, env) and not is_locked_word(expected,
                                                               env)


def release_key(call: ast.Call,
                env: Dict[str, Optional[ast.expr]]) -> Optional[str]:
    """The addr text of a lock this verb construction releases, or
    None.  Strong signal: a ``lease=("release",)`` tag on a write/CAS.
    Weak signal: an untagged WriteOp whose payload packs ``locked=0``
    (matched against held locks by exact key only)."""
    name = call_name(call)
    if name not in WRITE_VERBS:
        return None
    if lease_kind(call) == "release":
        return unparse(call.args[0]) if call.args else "*"
    if name == "WriteOp" and len(call.args) >= 2 \
            and lease_kind(call) == "none":
        payload = resolve_expr(call.args[1], env)
        if packs_locked_flag(payload) is False:
            return unparse(call.args[0])
    return None


def is_strong_release(call: ast.Call) -> bool:
    return lease_kind(call) == "release"


def contains_release_verb(expr: ast.AST,
                          env: Dict[str, Optional[ast.expr]]) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call) and release_key(sub, env) is not None:
            return True
    return False


# -- yielded verb enumeration -------------------------------------------

@dataclass(frozen=True)
class YieldedItem:
    """One item found inside a yielded expression.

    kind is ``"verb"`` (a direct verb constructor call), ``"call"`` (a
    non-verb call - possibly a factory helper), or ``"name"`` (a bare
    name, possibly a previously-built release list).
    """

    kind: str
    call: Optional[ast.Call] = None
    name: Optional[str] = None
    comp: bool = False          # inside a comprehension / unknown arity
    direct: bool = False        # the whole yielded expression
    batch_index: Optional[int] = None  # index in a Batch list literal


def yielded_items(value: ast.expr) -> List[YieldedItem]:
    items: List[YieldedItem] = []

    def add(elt: ast.expr, comp: bool, direct: bool,
            batch_index: Optional[int]) -> None:
        if isinstance(elt, ast.Call):
            name = call_name(elt)
            if name in VERB_NAMES:
                items.append(YieldedItem("verb", call=elt, comp=comp,
                                         direct=direct,
                                         batch_index=batch_index))
            elif name == BATCH_NAME:
                for arg in elt.args:
                    if isinstance(arg, ast.List):
                        for index, sub in enumerate(arg.elts):
                            add(sub, comp, False, index)
                    else:
                        add(arg, comp, False, None)
            elif name == LOCAL_COMPUTE_NAME:
                pass
            else:
                items.append(YieldedItem("call", call=elt, comp=comp,
                                         direct=direct,
                                         batch_index=batch_index))
        elif isinstance(elt, ast.Name):
            items.append(YieldedItem("name", name=elt.id, comp=comp,
                                     direct=direct,
                                     batch_index=batch_index))
        elif isinstance(elt, (ast.List, ast.Tuple)):
            for sub in elt.elts:
                add(sub, comp, False, None)
        elif isinstance(elt, ast.Starred):
            add(elt.value, True, False, None)
        elif isinstance(elt, (ast.ListComp, ast.GeneratorExp,
                              ast.SetComp)):
            add(elt.elt, True, False, None)
        elif isinstance(elt, ast.BinOp) and isinstance(elt.op, ast.Add):
            add(elt.left, comp, False, None)
            add(elt.right, comp, False, None)
        elif isinstance(elt, ast.IfExp):
            add(elt.body, comp, False, None)
            add(elt.orelse, comp, False, None)

    add(value, False, True, None)
    return items


def names_loaded(node: ast.AST) -> Set[str]:
    loaded: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            loaded.add(sub.id)
    return loaded
