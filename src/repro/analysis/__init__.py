"""DMVerify: a path-sensitive static verifier for the one-sided RDMA
protocol layer.

The package builds per-function control-flow graphs from Python AST
(:mod:`repro.analysis.cfg`), runs a worklist dataflow over an abstract
lock/lease state (:mod:`repro.analysis.dataflow`), and checks the
protocol invariants that the runtime layers (DMSan, the recovery
oracle) can only observe on executed paths (:mod:`repro.analysis.rules`).
See DESIGN.md section 10 for the rule catalog and the abstract-state
semantics, and ``python -m repro.tools.dmverify --help`` for the CLI.

The lint rules L001/L002/L006 are implemented on the same CFGs (one
statement per node, every statement of a file covered exactly once) so
:mod:`repro.tools.lint` does not maintain a second AST walker.
"""

from .cfg import CFG, Node, build_cfgs, build_function_cfg
from .driver import Report, analyze_paths
from .findings import Finding, Suppressions

__all__ = [
    "CFG",
    "Finding",
    "Node",
    "Report",
    "Suppressions",
    "analyze_paths",
    "build_cfgs",
    "build_function_cfg",
]
