"""Findings and inline suppressions shared by dmverify and lint.

A :class:`Finding` is one diagnostic anchored to a file/line; dmverify
findings additionally carry a *witness* - the sequence of abstract
events (lock acquired here, CAS flag tested there) along the concrete
CFG path that reaches the violation, so a reader can replay the path
without re-running the analysis.

:class:`Suppressions` implements the pragma convention shared by both
tools, parameterized on the tool name::

    yield CasOp(a, 0, 1)  # dmverify: disable=S002
    # dmverify: disable-file=S001   (first ten lines of the file)

which mirrors the existing ``# lint: disable=L001`` syntax exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line: RULE message`` plus a path witness."""

    path: str
    line: int
    rule: str
    message: str
    witness: Tuple[str, ...] = ()

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def render_witness(self, indent: str = "    ") -> List[str]:
        if not self.witness:
            return []
        lines = [f"{indent}path witness:"]
        lines.extend(f"{indent}  - {step}" for step in self.witness)
        return lines

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }
        if self.witness:
            payload["witness"] = list(self.witness)
        return payload


def sort_key(finding: Finding) -> Tuple[str, int, str, str]:
    return (finding.path, finding.line, finding.rule, finding.message)


def dedupe(findings: List[Finding]) -> List[Finding]:
    """Drop duplicate (path, line, rule, message) findings, keep order.

    The CFG builder duplicates ``finally`` bodies per exit route, so one
    source statement may be analyzed on several routes and report the
    same violation more than once; only the first (with its witness) is
    kept.
    """
    seen: Set[Tuple[str, int, str, str]] = set()
    out: List[Finding] = []
    for finding in findings:
        key = (finding.path, finding.line, finding.rule, finding.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(finding)
    return out


@dataclass
class Suppressions:
    """Line and file pragmas for one tool (``dmverify`` or ``lint``)."""

    tool: str
    lines: List[str] = field(default_factory=list)
    _line_pragma: "re.Pattern[str]" = field(init=False, repr=False)
    _file_disabled: Set[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._line_pragma = re.compile(
            rf"#\s*{self.tool}:\s*disable=([A-Z0-9,\s]+)")
        file_pragma = re.compile(
            rf"#\s*{self.tool}:\s*disable-file=([A-Z0-9,\s]+)")
        disabled: Set[str] = set()
        for line in self.lines[:10]:
            match = file_pragma.search(line)
            if match:
                disabled.update(
                    r.strip() for r in match.group(1).split(","))
        self._file_disabled = disabled

    @classmethod
    def for_source(cls, tool: str, source: str) -> "Suppressions":
        return cls(tool=tool, lines=source.splitlines())

    def suppressed(self, rule: str, lineno: int) -> bool:
        if rule in self._file_disabled:
            return True
        if 1 <= lineno <= len(self.lines):
            match = self._line_pragma.search(self.lines[lineno - 1])
            if match:
                tagged = {r.strip() for r in match.group(1).split(",")}
                if rule in tagged:
                    return True
        return False

    def apply(self, findings: List[Finding]) -> List[Finding]:
        return [f for f in findings
                if not self.suppressed(f.rule, f.line)]


#: dmverify rules that semantically upgrade an existing lint rule: a
#: ``# lint: disable=<old>`` pragma at the same site also silences the
#: upgraded rule, so justifications written once are not demanded twice.
LINT_EQUIVALENTS: Dict[str, str] = {"S004": "L006"}


def apply_suppressions(findings: List[Finding], tool_sup: Suppressions,
                       lint_sup: Suppressions) -> List[Finding]:
    """Filter ``findings`` by the tool's own pragmas and, for rules with
    a lint equivalent, by the pre-existing lint pragma as well."""
    kept: List[Finding] = []
    for finding in findings:
        if tool_sup.suppressed(finding.rule, finding.line):
            continue
        old = LINT_EQUIVALENTS.get(finding.rule)
        if old is not None and lint_sup.suppressed(old, finding.line):
            continue
        kept.append(finding)
    return kept
