"""AST -> control-flow graphs for protocol generators.

One CFG node per statement.  Compound statements contribute a *branch*
node holding the header (the ``if``/``while`` test, the ``for`` iter)
and their bodies are flattened into the same graph; ``try`` blocks
contribute a *dispatch* node that fans out to handler bodies.

Exception edges are explicit-flow only: a statement gets an ``exc``
successor when it can observably raise *and* an enclosing handler or
``finally`` exists in this function - that is, for ``raise`` statements
and for yield points (where the executors deliver injected faults via
``gen.throw``).  Implicit propagation out of a function with no ``try``
in scope is deliberately *not* modeled as an exit: fault delivery at
yield points is the retry harness's and the recovery layer's domain,
and modeling every expression as potentially raising would drown the
dataflow in impossible paths.  ``finally`` bodies are duplicated per
exit route (fallthrough, return, raise, break/continue) so each route's
abstract state flows through the cleanup code it would actually run.

Statements after an unconditional exit still get nodes (with no
incoming edges) so syntactic rules see every statement exactly once;
the dataflow simply never reaches them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# Edge labels.
NEXT = "next"
TRUE = "true"
FALSE = "false"
EXC = "exc"

# Node kinds.
ENTRY = "entry"
STMT = "stmt"
BRANCH = "branch"
DISPATCH = "dispatch"
RETURN = "return"
RAISE = "raise"

#: Dangling out-edges waiting for a target: (source node index, label).
Frontier = List[Tuple[int, str]]

_CTX_LOOP = "loop"
_CTX_FINALLY = "finally"
_CTX_HANDLERS = "handlers"


class _YieldFinder(ast.NodeVisitor):
    def __init__(self) -> None:
        self.found = False

    def visit_Yield(self, node: ast.Yield) -> None:
        self.found = True

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.found = True

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # do not descend into nested scopes

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def contains_yield(node: ast.AST) -> bool:
    """True when ``node`` itself yields (nested scopes excluded)."""
    finder = _YieldFinder()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda)):
        return False
    finder.visit(node)
    return finder.found


def is_generator(func: FuncDef) -> bool:
    return any(contains_yield(stmt) for stmt in func.body)


@dataclass
class Node:
    index: int
    kind: str
    stmt: Optional[ast.stmt] = None
    succ: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    @property
    def test(self) -> Optional[ast.expr]:
        if isinstance(self.stmt, (ast.If, ast.While)):
            return self.stmt.test
        return None


@dataclass
class CFG:
    """A flat statement graph for one function body or block body."""

    name: str
    entry: int
    nodes: List[Node]
    func: Optional[FuncDef] = None
    cls: Optional[str] = None


class _Builder:
    def __init__(self) -> None:
        self.nodes: List[Node] = []
        # Innermost-last enclosing constructs:
        #   (_CTX_LOOP, continue_target: int, break_frontier: Frontier)
        #   (_CTX_FINALLY, finalbody: Sequence[ast.stmt], None)
        #   (_CTX_HANDLERS, dispatch_node: int, None)
        self.ctx: List[Tuple[str, object, object]] = []

    # -- graph plumbing -------------------------------------------------
    def new(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node.index

    def connect(self, frontier: Frontier, target: int) -> None:
        for source, label in frontier:
            self.nodes[source].succ.append((label, target))

    # -- statement sequencing -------------------------------------------
    def body(self, stmts: Sequence[ast.stmt],
             frontier: Frontier) -> Frontier:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new(STMT, stmt)
            self.connect(frontier, node)
            return self.body(stmt.body, [(node, NEXT)])
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier)
        # Simple statement (includes nested def/class headers, whose
        # bodies become their own CFGs elsewhere).
        node = self.new(STMT, stmt)
        self.connect(frontier, node)
        out: Frontier = [(node, NEXT)]
        if contains_yield(stmt) and self._inside_try():
            self._exc_route([(node, EXC)], stmt)
        return out

    # -- compound forms -------------------------------------------------
    def _if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        node = self.new(BRANCH, stmt)
        self.connect(frontier, node)
        taken = self.body(stmt.body, [(node, TRUE)])
        if stmt.orelse:
            skipped = self.body(stmt.orelse, [(node, FALSE)])
        else:
            skipped = [(node, FALSE)]
        return taken + skipped

    def _while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        node = self.new(BRANCH, stmt)
        self.connect(frontier, node)
        break_frontier: Frontier = []
        self.ctx.append((_CTX_LOOP, node, break_frontier))
        body_out = self.body(stmt.body, [(node, TRUE)])
        self.ctx.pop()
        self.connect(body_out, node)  # back edge
        out: Frontier = []
        test = stmt.test
        if not (isinstance(test, ast.Constant) and test.value):
            out = [(node, FALSE)]
        if stmt.orelse:
            out = self.body(stmt.orelse, out)
        return out + break_frontier

    def _for(self, stmt: Union[ast.For, ast.AsyncFor],
             frontier: Frontier) -> Frontier:
        node = self.new(BRANCH, stmt)
        self.connect(frontier, node)
        break_frontier: Frontier = []
        self.ctx.append((_CTX_LOOP, node, break_frontier))
        body_out = self.body(stmt.body, [(node, TRUE)])
        self.ctx.pop()
        self.connect(body_out, node)
        out: Frontier = [(node, FALSE)]
        if stmt.orelse:
            out = self.body(stmt.orelse, out)
        return out + break_frontier

    def _match(self, stmt: ast.Match, frontier: Frontier) -> Frontier:
        node = self.new(BRANCH, stmt)
        self.connect(frontier, node)
        out: Frontier = [(node, NEXT)]  # no case matched
        for case in stmt.cases:
            out += self.body(case.body, [(node, NEXT)])
        return out

    def _try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self.new(DISPATCH, stmt)
        if stmt.finalbody:
            self.ctx.append((_CTX_FINALLY, stmt.finalbody, None))
        if dispatch is not None:
            self.ctx.append((_CTX_HANDLERS, dispatch, None))
        out = self.body(stmt.body, frontier)
        if dispatch is not None:
            self.ctx.pop()
        if stmt.orelse:
            out = self.body(stmt.orelse, out)
        if dispatch is not None:
            for handler in stmt.handlers:
                out = out + self.body(handler.body, [(dispatch, NEXT)])
        if stmt.finalbody:
            self.ctx.pop()
            out = self.body(stmt.finalbody, out)
        return out

    # -- exits ----------------------------------------------------------
    def _inside_try(self) -> bool:
        return any(kind in (_CTX_FINALLY, _CTX_HANDLERS)
                   for kind, _a, _b in self.ctx)

    def _inline_finally(self, frontier: Frontier, depth: int) -> Frontier:
        """Build a copy of the finalbody at ctx[depth], with the context
        stack truncated below it so nested exits resolve correctly."""
        _kind, finalbody, _ = self.ctx[depth]
        assert isinstance(finalbody, list)
        saved = self.ctx
        self.ctx = self.ctx[:depth]
        frontier = self.body(finalbody, frontier)
        self.ctx = saved
        return frontier

    def _exc_route(self, frontier: Frontier,
                   stmt: Optional[ast.stmt]) -> None:
        """Route an exception raised at ``frontier`` to the innermost
        handler, running intervening ``finally`` bodies; if no handler
        encloses it, terminate at a RAISE exit node."""
        for depth in range(len(self.ctx) - 1, -1, -1):
            kind, target, _ = self.ctx[depth]
            if kind == _CTX_HANDLERS:
                assert isinstance(target, int)
                self.connect(frontier, target)
                return
            if kind == _CTX_FINALLY:
                frontier = self._inline_finally(frontier, depth)
        exit_node = self.new(RAISE, stmt)
        self.connect(frontier, exit_node)

    def _unwind_finallies(self, frontier: Frontier,
                          stop_at_loop: bool) -> Tuple[Frontier,
                                                       Optional[int]]:
        for depth in range(len(self.ctx) - 1, -1, -1):
            kind, _target, _extra = self.ctx[depth]
            if kind == _CTX_FINALLY:
                frontier = self._inline_finally(frontier, depth)
            elif kind == _CTX_LOOP and stop_at_loop:
                return frontier, depth
        return frontier, None

    def _return(self, stmt: ast.Return, frontier: Frontier) -> Frontier:
        frontier, _ = self._unwind_finallies(frontier, stop_at_loop=False)
        node = self.new(RETURN, stmt)
        self.connect(frontier, node)
        return []

    def _raise(self, stmt: ast.Raise, frontier: Frontier) -> Frontier:
        node = self.new(STMT, stmt)
        self.connect(frontier, node)
        self._exc_route([(node, NEXT)], stmt)
        return []

    def _break(self, stmt: ast.Break, frontier: Frontier) -> Frontier:
        frontier, depth = self._unwind_finallies(frontier,
                                                 stop_at_loop=True)
        if depth is not None:
            _kind, _target, break_frontier = self.ctx[depth]
            assert isinstance(break_frontier, list)
            break_frontier.extend(frontier)
        return []

    def _continue(self, stmt: ast.Continue,
                  frontier: Frontier) -> Frontier:
        frontier, depth = self._unwind_finallies(frontier,
                                                 stop_at_loop=True)
        if depth is not None:
            _kind, target, _extra = self.ctx[depth]
            assert isinstance(target, int)
            self.connect(frontier, target)
        return []


def build_function_cfg(func: FuncDef, qualname: str,
                       cls: Optional[str] = None) -> CFG:
    builder = _Builder()
    entry = builder.new(ENTRY)
    out = builder.body(func.body, [(entry, NEXT)])
    if out:
        implicit = builder.new(RETURN)
        builder.connect(out, implicit)
    return CFG(qualname, entry, builder.nodes, func=func, cls=cls)


def build_block_cfg(name: str, stmts: Sequence[ast.stmt]) -> CFG:
    builder = _Builder()
    entry = builder.new(ENTRY)
    out = builder.body(stmts, [(entry, NEXT)])
    if out:
        implicit = builder.new(RETURN)
        builder.connect(out, implicit)
    return CFG(name, entry, builder.nodes)


def _child_stmt_lists(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Statement lists nested inside a compound statement (not defs)."""
    lists: List[List[ast.stmt]] = []
    for _name, value in ast.iter_fields(stmt):
        if isinstance(value, list):
            stmts = [item for item in value if isinstance(item, ast.stmt)]
            if stmts:
                lists.append(stmts)
            for item in value:
                if isinstance(item, ast.ExceptHandler):
                    lists.append(list(item.body))
                elif isinstance(item, ast.match_case):
                    lists.append(list(item.body))
    return lists


def build_cfgs(tree: ast.Module, modname: str = "<module>") -> List[CFG]:
    """All CFGs for a module: one block CFG for the module body, one per
    class body, and one function CFG per (possibly nested) def.  Every
    statement of the file belongs to exactly one CFG."""
    cfgs: List[CFG] = [build_block_cfg(modname, tree.body)]

    def scan(stmts: Sequence[ast.stmt], prefix: str,
             cls: Optional[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                cfgs.append(build_function_cfg(stmt, qualname, cls=cls))
                scan(stmt.body, qualname + ".<locals>.", None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = prefix + stmt.name
                cfgs.append(build_block_cfg(qualname + ":<body>",
                                            stmt.body))
                scan(stmt.body, qualname + ".", stmt.name)
            else:
                for child in _child_stmt_lists(stmt):
                    scan(child, prefix, cls)
    scan(tree.body, "", None)
    return cfgs
