"""Path-sensitive lock/lease dataflow over protocol-generator CFGs.

The abstract state tracks, per path:

* **locks** - remote words this generator has CAS-acquired and not yet
  released.  A lock acquired under ``flag`` names (the CAS swapped
  flag, e.g. ``swapped`` or ``res[0]``) is *conditional* until a branch
  tests the flag: the true side holds the lock, the false side dropped
  it.  Locks acquired by a Batch comprehension are *collection* locks:
  ``all(won)``-style tests refine them but can never drop them (a
  partially-won batch must still be rolled back).
* **released** - lock keys released on this path: the close of the
  acquire/release window.  A subsequent remote write through the same
  key is S003.  An acquire (or an alias rename) of the key reopens the
  window.
* **release_vars** - local names bound to verb lists that carry release
  tags (``undo = [CasOp(..., lease=("release",)) ...]``), so that both
  ``yield Batch(undo)`` and the ``if undo:``-guard refinement can apply
  the release they carry.

Traces (path witnesses) ride alongside the state but are not part of
its identity: the worklist memoizes on (node, state) and keeps the
first trace that reaches each pair, so reported witnesses are real
paths and the analysis still terminates on loops.

Function summaries let the analysis cross ``yield from`` calls: a
helper that acquires and escapes the lock through its return flag
(``try_lock_node``) is an *acquire helper*; a helper that releases a
parameter's lock (``_write_and_unlock``) is a *release helper*; a
non-generator returning a release-tagged verb (``unlock_op``) is a
*factory*.  Summaries are computed from the same dataflow and iterated
to a fixpoint by the driver.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from . import model
from .cfg import (BRANCH, CFG, DISPATCH, ENTRY, EXC, FALSE, RAISE,
                  RETURN, STMT, TRUE, FuncDef, Node)

#: Bound on (node, state) pairs explored per function before giving up.
MAX_STEPS = 20000

_ROOT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*")


def _root_of(text: str) -> str:
    match = _ROOT.match(text)
    return match.group(0) if match else text


@dataclass(frozen=True)
class FuncSummary:
    """What a call to this function does to the caller's lock state."""

    acquires: bool = False
    addr_param: Optional[int] = None   # 0-based over non-self params
    release_params: Tuple[int, ...] = ()
    factory: bool = False              # returns a release-tagged verb

    @property
    def balanced(self) -> bool:
        return (not self.acquires and not self.release_params
                and not self.factory)


BALANCED = FuncSummary()

#: Fallback summaries for well-known helpers, used when the definition
#: is outside the analyzed file set (e.g. single-file fixture runs).
SEED_SUMMARIES: Dict[str, FuncSummary] = {
    "try_lock_node": FuncSummary(acquires=True, addr_param=0),
    "unlock_op": FuncSummary(factory=True, release_params=(0,)),
    "invalidate_op": FuncSummary(factory=True, release_params=(0,)),
}

#: Resolves a callee name to a summary, or None when unknown.
Resolver = Callable[[str], Optional[FuncSummary]]


@dataclass(frozen=True)
class Lock:
    key: str                       # unparsed addr expression
    flags: Tuple[str, ...] = ()    # () = held unconditionally
    line: int = 0
    collection: bool = False
    tagged: bool = True            # acquired with a lease keyword

    @property
    def held(self) -> bool:
        return not self.flags

    def flag_roots(self) -> Set[str]:
        return {_root_of(flag) for flag in self.flags}


@dataclass(frozen=True)
class State:
    locks: Tuple[Lock, ...] = ()
    released: Tuple[str, ...] = ()
    release_vars: Tuple[Tuple[str, str], ...] = ()

    def with_locks(self, locks: Sequence[Lock]) -> "State":
        return replace(self, locks=tuple(
            sorted(set(locks),
                   key=lambda lk: (lk.key, lk.flags, lk.line))))

    def add_released(self, key: str) -> "State":
        if key in self.released:
            return self
        return replace(self, released=tuple(
            sorted(self.released + (key,))))

    def drop_released(self, key: str) -> "State":
        if key not in self.released:
            return self
        return replace(self, released=tuple(
            k for k in self.released if k != key))

    def set_release_var(self, name: str, key: str) -> "State":
        kept = tuple(entry for entry in self.release_vars
                     if entry[0] != name)
        return replace(self, release_vars=tuple(
            sorted(kept + ((name, key),))))

    def release_var_key(self, name: str) -> Optional[str]:
        for var, key in self.release_vars:
            if var == name:
                return key
        return None


Trace = Tuple[str, ...]


@dataclass(frozen=True)
class RawFinding:
    rule: str
    line: int
    message: str
    witness: Trace = ()


@dataclass
class FlowOutcome:
    findings: List[RawFinding] = field(default_factory=list)
    summary: FuncSummary = BALANCED
    overflowed: bool = False


class FlowAnalysis:
    """Run the lock/lease dataflow over one function CFG."""

    def __init__(self, cfg: CFG, env: Dict[str, Optional[ast.expr]],
                 resolver: Resolver) -> None:
        assert cfg.func is not None
        self.cfg = cfg
        self.env = env
        self.resolver = resolver
        self.findings: List[RawFinding] = []
        self._finding_keys: Set[Tuple[str, int, str]] = set()
        self.escaped: List[Tuple[Lock, Optional[int]]] = []
        self.ambient_release_params: Set[int] = set()
        args = cfg.func.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        self.params = params

    # -- public entry ---------------------------------------------------
    def run(self) -> FlowOutcome:
        outcome = FlowOutcome()
        seen: Dict[int, Set[State]] = {}
        work: "deque[Tuple[int, State, Trace]]" = deque()
        work.append((self.cfg.entry, State(), ()))
        steps = 0
        while work:
            index, state, trace = work.popleft()
            visited = seen.setdefault(index, set())
            if state in visited:
                continue
            visited.add(state)
            steps += 1
            if steps > MAX_STEPS:
                outcome.overflowed = True
                break
            node = self.cfg.nodes[index]
            for target, succ_state, succ_trace in self._step(node, state,
                                                             trace):
                work.append((target, succ_state, succ_trace))
        outcome.findings = self.findings
        outcome.summary = self._summary()
        return outcome

    def _emit(self, rule: str, line: int, message: str,
              witness: Trace) -> None:
        key = (rule, line, message)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(RawFinding(rule, line, message, witness))

    # -- per-node transfer ----------------------------------------------
    def _step(self, node: Node, state: State,
              trace: Trace) -> List[Tuple[int, State, Trace]]:
        if node.kind in (ENTRY, DISPATCH):
            return [(target, state, trace) for _lbl, target in node.succ]
        if node.kind == STMT:
            assert node.stmt is not None
            post, post_trace = self._stmt_transfer(node.stmt, state,
                                                   trace)
            out: List[Tuple[int, State, Trace]] = []
            for label, target in node.succ:
                if label == EXC:
                    # Faults delivered at a yield leave the verb's
                    # effect unknown; propagate the pre-state so retry
                    # loops do not accumulate ghost locks.
                    out.append((target, state, trace))
                else:
                    out.append((target, post, post_trace))
            return out
        if node.kind == BRANCH:
            return self._branch_step(node, state, trace)
        if node.kind == RETURN:
            self._exit_checks(node, state, trace, exceptional=False)
            return []
        if node.kind == RAISE:
            self._exit_checks(node, state, trace, exceptional=True)
            return []
        raise AssertionError(f"unknown node kind {node.kind}")

    # -- exits ----------------------------------------------------------
    def _exit_checks(self, node: Node, state: State, trace: Trace,
                     exceptional: bool) -> None:
        value: Optional[ast.expr] = None
        if not exceptional and isinstance(node.stmt, ast.Return):
            value = node.stmt.value
        for lock in state.locks:
            if value is not None and self._escapes(value, lock):
                param = (self.params.index(lock.key)
                         if lock.key in self.params else None)
                self.escaped.append((lock, param))
                continue
            line = node.line or lock.line
            if exceptional:
                where = (f"an exception exit (raise or injected fault "
                         f"escaping at line {line})")
            else:
                where = f"the return at line {line}" if node.line else \
                    "the implicit return at the end of the function"
            if lock.held:
                detail = "is not released on " + where
            else:
                flags = ", ".join(f"`{f}`" for f in lock.flags)
                detail = (f"may still be held (CAS flag {flags} "
                          f"untested) on " + where)
            plural = "locks" if lock.collection else "lock"
            message = (f"{plural} on `{lock.key}` acquired at line "
                       f"{lock.line} {detail}")
            witness = trace + (f"line {line}: exit with `{lock.key}` "
                               f"unreleased",)
            self._emit("S001", line, message, witness)

    def _escapes(self, value: ast.expr, lock: Lock) -> bool:
        text = model.unparse(value)
        if text in lock.flags:
            return True
        if isinstance(value, ast.Name) and value.id in lock.flag_roots():
            return True
        return False

    # -- branches -------------------------------------------------------
    def _branch_step(self, node: Node, state: State,
                     trace: Trace) -> List[Tuple[int, State, Trace]]:
        test = node.test
        out: List[Tuple[int, State, Trace]] = []
        for label, target in node.succ:
            if test is None or label not in (TRUE, FALSE):
                out.append((target, state, trace))
                continue
            succ_state, succ_trace = self._refine(test, state, trace,
                                                  node.line,
                                                  taken=(label == TRUE))
            out.append((target, succ_state, succ_trace))
        return out

    def _refine(self, test: ast.expr, state: State, trace: Trace,
                line: int, taken: bool) -> Tuple[State, Trace]:
        events: List[str] = []
        locks: List[Lock] = []
        for lock in state.locks:
            polarity = self._polarity(test, lock)
            if polarity is None:
                locks.append(lock)
                continue
            truthy = polarity if taken else not polarity
            if lock.collection:
                note = "all held" if truthy else "partially held"
                events.append(f"line {line}: batch CAS flags "
                              f"`{lock.flags[0]}` tested -> {note}, "
                              f"release still required")
                locks.append(replace(lock, flags=()))
            elif truthy:
                events.append(f"line {line}: CAS flag "
                              f"`{lock.flags[0]}` tested true -> lock "
                              f"on `{lock.key}` held")
                locks.append(replace(lock, flags=()))
            else:
                events.append(f"line {line}: CAS flag "
                              f"`{lock.flags[0]}` tested false -> "
                              f"acquire of `{lock.key}` failed")
        new_state = state.with_locks(locks)
        # Guard on a release-carrying list (`if undo:`): on the branch
        # where the list is *empty*, the rollback had nothing to undo,
        # which proves the corresponding acquires all failed - drop the
        # conditional/collection locks the list would have released.
        guard = self._guard_release_var(test)
        if guard is not None:
            name, truthy_when_taken = guard
            key = new_state.release_var_key(name)
            if key is not None:
                var_truthy = (truthy_when_taken if taken
                              else not truthy_when_taken)
                if not var_truthy:
                    kept: List[Lock] = []
                    for lock in new_state.locks:
                        dropped = (lock.collection if key == "*"
                                   else lock.key == key)
                        if dropped:
                            events.append(
                                f"line {line}: release list `{name}` "
                                f"empty -> no `{lock.key}` lock was "
                                f"actually won")
                        else:
                            kept.append(lock)
                    new_state = new_state.with_locks(kept)
        return new_state, trace + tuple(events)

    def _guard_release_var(self,
                           test: ast.expr) -> Optional[Tuple[str, bool]]:
        if isinstance(test, ast.Name):
            return test.id, True
        if isinstance(test, ast.UnaryOp) \
                and isinstance(test.op, ast.Not) \
                and isinstance(test.operand, ast.Name):
            return test.operand.id, False
        return None

    def _polarity(self, test: ast.expr, lock: Lock) -> Optional[bool]:
        if not lock.flags:
            return None
        texts = set(lock.flags)
        roots = lock.flag_roots()

        def check(expr: ast.expr) -> Optional[bool]:
            text = model.unparse(expr)
            if text in texts:
                return True
            if isinstance(expr, ast.UnaryOp) \
                    and isinstance(expr.op, ast.Not):
                inner = check(expr.operand)
                return None if inner is None else not inner
            if isinstance(expr, ast.Call) \
                    and isinstance(expr.func, ast.Name) \
                    and expr.func.id in ("all", "any") \
                    and len(expr.args) == 1:
                arg = expr.args[0]
                if model.unparse(arg) in texts:
                    return True
                if isinstance(arg, ast.Name) and arg.id in roots:
                    return True
            return None

        return check(test)

    # -- statements -----------------------------------------------------
    def _stmt_transfer(self, stmt: ast.stmt, state: State,
                       trace: Trace) -> Tuple[State, Trace]:
        yielded = self._yield_parts(stmt)
        if yielded is not None:
            node_value, target = yielded
            if isinstance(node_value, ast.YieldFrom):
                return self._yield_from(stmt, node_value, target, state,
                                        trace)
            if node_value.value is not None:
                return self._yield_transfer(stmt, node_value.value,
                                            target, state, trace)
            return state, trace
        if isinstance(stmt, ast.Assign):
            return self._assign_transfer(stmt, state, trace)
        if isinstance(stmt, ast.AugAssign):
            return self._augassign_transfer(stmt, state, trace)
        if isinstance(stmt, ast.Expr):
            return self._expr_transfer(stmt, state, trace)
        return state, trace

    def _yield_parts(self, stmt: ast.stmt) -> Optional[
            Tuple["ast.Yield | ast.YieldFrom", Optional[ast.expr]]]:
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
            return stmt.value, None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
            return stmt.value, stmt.targets[0]
        return None

    # -- yield transfer -------------------------------------------------
    def _yield_transfer(self, stmt: ast.stmt, value: ast.expr,
                        target: Optional[ast.expr], state: State,
                        trace: Trace) -> Tuple[State, Trace]:
        line = stmt.lineno
        events: List[str] = []
        acquires: List[model.YieldedItem] = []
        for item in model.yielded_items(value):
            if item.kind == "verb":
                assert item.call is not None
                key = model.release_key(item.call, self.env)
                if key is not None:
                    strong = model.is_strong_release(item.call)
                    if item.comp:
                        key = "*"
                    state, released = self._apply_release(
                        state, key, line, strong=strong)
                    events.extend(released)
                elif model.is_acquire_cas(item.call, self.env):
                    acquires.append(item)
                elif model.call_name(item.call) in model.WRITE_VERBS:
                    self._check_s003(item.call, line, state,
                                     trace + tuple(events))
            elif item.kind == "call":
                assert item.call is not None
                state, released = self._apply_call_summary(
                    item.call, line, state)
                events.extend(released)
            elif item.kind == "name":
                assert item.name is not None
                key = state.release_var_key(item.name)
                if key is not None:
                    state, released = self._apply_release(
                        state, key, line, strong=True)
                    events.extend(released)
        for item in acquires:
            assert item.call is not None
            state, acquired = self._apply_acquire(item, target, line,
                                                  state)
            events.extend(acquired)
        return state, trace + tuple(events)

    def _apply_acquire(self, item: model.YieldedItem,
                       target: Optional[ast.expr], line: int,
                       state: State) -> Tuple[State, List[str]]:
        assert item.call is not None
        key = model.unparse(item.call.args[0]) if item.call.args else "*"
        flags = self._acquire_flags(item, target)
        tagged = model.lease_kind(item.call) == "acquire"
        lock = Lock(key=key, flags=flags, line=line,
                    collection=item.comp, tagged=tagged)
        locks = [lk for lk in state.locks if lk.key != key]
        locks.append(lock)
        state = state.with_locks(locks).drop_released(key)
        kind = "batch lock CAS" if item.comp else "lock CAS"
        tag = "" if tagged else " (untagged)"
        return state, [f"line {line}: {kind} on `{key}`{tag}, swapped "
                       f"flag in {flags or ('<unchecked>',)}"]

    def _acquire_flags(self, item: model.YieldedItem,
                       target: Optional[ast.expr]) -> Tuple[str, ...]:
        if target is None:
            return ()
        if item.comp:
            if isinstance(target, ast.Name):
                return (target.id,)
            return ()
        if item.direct:
            if isinstance(target, ast.Name):
                return (f"{target.id}[0]",)
            if isinstance(target, ast.Tuple) and target.elts \
                    and isinstance(target.elts[0], ast.Name):
                return (target.elts[0].id,)
            return ()
        if item.batch_index is not None:
            index = item.batch_index
            if isinstance(target, ast.Name):
                return (f"{target.id}[{index}][0]",)
            if isinstance(target, ast.Tuple) \
                    and index < len(target.elts):
                elt = target.elts[index]
                if isinstance(elt, ast.Name):
                    return (f"{elt.id}[0]",)
                if isinstance(elt, ast.Tuple) and elt.elts \
                        and isinstance(elt.elts[0], ast.Name):
                    return (elt.elts[0].id,)
        return ()

    def _apply_release(self, state: State, key: str, line: int,
                       strong: bool) -> Tuple[State, List[str]]:
        events: List[str] = []
        if key == "*":
            for lock in state.locks:
                events.append(f"line {line}: lock on `{lock.key}` "
                              f"released")
                state = state.add_released(lock.key)
            return state.with_locks([]), events
        matched = [lock for lock in state.locks if lock.key == key]
        if not matched and strong and len(state.locks) == 1:
            matched = list(state.locks)
        if matched:
            kept = [lock for lock in state.locks
                    if lock not in matched]
            for lock in matched:
                events.append(f"line {line}: lock on `{lock.key}` "
                              f"released")
                state = state.add_released(lock.key)
            state = state.with_locks(kept).add_released(key)
        else:
            # Ambient release: nothing held under this key here; still
            # closes the window for S003 and feeds the summary.
            if key in self.params:
                self.ambient_release_params.add(
                    self.params.index(key))
            state = state.add_released(key)
        return state, events

    def _check_s003(self, call: ast.Call, line: int, state: State,
                    witness: Trace) -> None:
        if not call.args:
            return
        addr = call.args[0]
        addr_text = model.unparse(addr)
        addr_ids = set(model.identifiers(addr))
        for key in state.released:
            tokens = model.key_tokens(key)
            root = tokens[0] if tokens else key
            if key == addr_text or root in addr_ids:
                verb = model.call_name(call)
                message = (f"remote {verb} to `{addr_text}` after the "
                           f"lock on `{key}` was released: writes to a "
                           f"locked structure must stay inside the "
                           f"acquire/release window")
                self._emit("S003", line, message, witness + (
                    f"line {line}: {verb} to `{addr_text}` outside "
                    f"the window",))
                return

    def _apply_call_summary(self, call: ast.Call, line: int,
                            state: State) -> Tuple[State, List[str]]:
        name = model.call_name(call)
        if name is None:
            return state, []
        summary = self.resolver(name)
        if summary is None or not summary.factory:
            return state, []
        events: List[str] = []
        for param in summary.release_params:
            if param < len(call.args):
                key = model.unparse(call.args[param])
            else:
                key = "*"
            state, released = self._apply_release(state, key, line,
                                                  strong=True)
            events.extend(released)
        return state, events

    def _yield_from(self, stmt: ast.stmt, node_value: ast.YieldFrom,
                    target: Optional[ast.expr], state: State,
                    trace: Trace) -> Tuple[State, Trace]:
        call = node_value.value
        if not isinstance(call, ast.Call):
            return state, trace
        name = model.call_name(call)
        if name is None:
            return state, trace
        summary = self.resolver(name)
        if summary is None or summary.balanced:
            return state, trace
        line = stmt.lineno
        events: List[str] = []
        args = [arg for arg in call.args
                if not isinstance(arg, ast.Starred)]
        for param in summary.release_params:
            if param < len(args):
                key = model.unparse(args[param])
            else:
                key = "*"
            state, released = self._apply_release(state, key, line,
                                                  strong=True)
            events.extend(released)
        if summary.acquires:
            if summary.addr_param is not None \
                    and summary.addr_param < len(args):
                key = model.unparse(args[summary.addr_param])
            else:
                key = f"<{name}>"
            flags: Tuple[str, ...] = ()
            if isinstance(target, ast.Name):
                flags = (target.id,)
            elif isinstance(target, ast.Tuple) and target.elts \
                    and isinstance(target.elts[0], ast.Name):
                flags = (target.elts[0].id,)
            lock = Lock(key=key, flags=flags, line=line)
            locks = [lk for lk in state.locks if lk.key != key]
            locks.append(lock)
            state = state.with_locks(locks).drop_released(key)
            events.append(f"line {line}: lock on `{key}` acquired via "
                          f"{name}(), flag in {flags or ('<none>',)}")
        return state, trace + tuple(events)

    # -- plain assignments ----------------------------------------------
    def _assign_transfer(self, stmt: ast.Assign, state: State,
                         trace: Trace) -> Tuple[State, Trace]:
        pairs = self._assign_pairs(stmt)
        events: List[str] = []
        for name, value in pairs:
            state, evs = self._apply_assign(name, value, stmt.lineno,
                                            state)
            events.extend(evs)
        return state, trace + tuple(events)

    def _assign_pairs(self, stmt: ast.Assign) -> List[
            Tuple[str, Optional[ast.expr]]]:
        pairs: List[Tuple[str, Optional[ast.expr]]] = []
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, stmt.value))
            elif isinstance(target, ast.Tuple):
                value = stmt.value
                if isinstance(value, ast.Tuple) \
                        and len(value.elts) == len(target.elts):
                    for elt, sub in zip(target.elts, value.elts):
                        if isinstance(elt, ast.Name):
                            pairs.append((elt.id, sub))
                else:
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            pairs.append((elt.id, None))
        return pairs

    def _apply_assign(self, name: str, value: Optional[ast.expr],
                      line: int, state: State) -> Tuple[State,
                                                        List[str]]:
        events: List[str] = []
        value_text = model.unparse(value) if value is not None else ""
        # 1. Release-carrying values: a list/expr containing release
        #    verbs, a factory call, or a copy of another release var.
        if value is not None:
            key = self._release_value_key(value, state)
            if key is not None:
                state = state.set_release_var(name, key)
        # 2. Alias derivation: `won = [s for s, _ in lock_results]`
        #    makes `won` another flag for the lock_results lock.
        if value is not None:
            value_roots = model.names_loaded(value)
            locks: List[Lock] = []
            for lock in state.locks:
                if lock.flags and name not in lock.flag_roots() \
                        and (lock.flag_roots() & value_roots):
                    locks.append(replace(
                        lock, flags=tuple(sorted(
                            set(lock.flags) | {name}))))
                else:
                    locks.append(lock)
            state = state.with_locks(locks)
        # 3. Rename: assigning a held lock's key expression to a new
        #    name re-keys the lock (`cur_addr = cur.link_addr` after
        #    acquiring `cur.link_addr`); the window under the new name
        #    reopens.
        renamed: Set[str] = set()
        if value_text:
            locks = []
            for lock in state.locks:
                if lock.key == value_text:
                    locks.append(replace(lock, key=name))
                    renamed.add(name)
                else:
                    locks.append(lock)
            state = state.with_locks(locks)
        if name in renamed:
            state = state.drop_released(name)
        # 4. Overwrite/staleness: other locks or windows keyed through
        #    `name` now refer to a dead value.  Stale lock keys are
        #    kept (the lock is still held remotely!) under a canonical
        #    `?name`-marked key; stale windows are dropped.
        locks = []
        for lock in state.locks:
            if name in renamed and lock.key == name:
                locks.append(lock)
                continue
            tokens = model.key_tokens(lock.key)
            if tokens and tokens[0] == name and not lock.key.startswith(
                    "?"):
                locks.append(replace(lock, key=f"?{name}"))
            else:
                locks.append(lock)
        state = state.with_locks(locks)
        for key in list(state.released):
            tokens = model.key_tokens(key)
            if tokens and tokens[0] == name and key != name:
                state = state.drop_released(key)
        # 5. Flag overwrite: reassigning a flag name from an unrelated
        #    value promotes conditional locks to held (the stale flag
        #    can no longer be tested meaningfully).
        if value is not None:
            value_roots = model.names_loaded(value)
            locks = []
            for lock in state.locks:
                if lock.flags and name in lock.flag_roots() \
                        and not (lock.flag_roots() & value_roots):
                    locks.append(replace(lock, flags=()))
                else:
                    locks.append(lock)
            state = state.with_locks(locks)
        return state, events

    def _release_value_key(self, value: ast.expr,
                           state: State) -> Optional[str]:
        if isinstance(value, ast.Name):
            return state.release_var_key(value.id)
        if isinstance(value, ast.Call):
            name = model.call_name(value)
            if name is not None:
                summary = self.resolver(name)
                if summary is not None and summary.factory \
                        and summary.release_params:
                    param = summary.release_params[0]
                    if param < len(value.args):
                        return model.unparse(value.args[param])
                    return "*"
        if model.contains_release_verb(value, self.env):
            direct = (isinstance(value, ast.Call)
                      and model.release_key(value, self.env))
            if direct:
                return str(direct)
            return "*"
        return None

    def _augassign_transfer(self, stmt: ast.AugAssign, state: State,
                            trace: Trace) -> Tuple[State, Trace]:
        if isinstance(stmt.target, ast.Name) \
                and model.contains_release_verb(stmt.value, self.env):
            state = state.set_release_var(stmt.target.id, "*")
        return state, trace

    def _expr_transfer(self, stmt: ast.Expr, state: State,
                       trace: Trace) -> Tuple[State, Trace]:
        value = stmt.value
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in ("append", "extend") \
                and isinstance(value.func.value, ast.Name):
            if any(model.contains_release_verb(arg, self.env)
                   for arg in value.args):
                state = state.set_release_var(value.func.value.id, "*")
        return state, trace

    # -- summary extraction ---------------------------------------------
    def _summary(self) -> FuncSummary:
        acquires = bool(self.escaped)
        addr_param: Optional[int] = None
        if acquires:
            params = {param for _lock, param in self.escaped}
            if len(params) == 1:
                addr_param = params.pop()
        return FuncSummary(
            acquires=acquires, addr_param=addr_param,
            release_params=tuple(sorted(self.ambient_release_params)))


def factory_summary(func: FuncDef) -> Optional[FuncSummary]:
    """Syntactic detection of release-verb factories: a non-generator
    whose return value is a release-tagged verb constructor."""
    from .cfg import is_generator
    if is_generator(func):
        return None
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Return) \
                and isinstance(stmt.value, ast.Call) \
                and model.lease_kind(stmt.value) == "release" \
                and model.call_name(stmt.value) in model.WRITE_VERBS:
            call = stmt.value
            args = func.args
            params = [a.arg for a in args.posonlyargs + args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            param = 0
            if call.args:
                addr_text = model.unparse(call.args[0])
                if addr_text in params:
                    param = params.index(addr_text)
            return FuncSummary(factory=True, release_params=(param,))
    return None
